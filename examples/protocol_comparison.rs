//! Comparing the pluggable P2P classification protocols.
//!
//! Trains the same corpus with CEMPaR, PACE, the centralized upper bound and
//! the local-only lower bound, and prints tagging quality next to the
//! communication each protocol spent — the trade-off the paper's §2 discusses.
//!
//! Run with: `cargo run --release --example protocol_comparison`

use p2pdoctagger::prelude::*;

fn main() {
    let corpus = CorpusGenerator::new(CorpusSpec {
        num_tags: 8,
        num_users: 16,
        min_docs_per_user: 15,
        max_docs_per_user: 30,
        ..CorpusSpec::tiny()
    })
    .generate();
    let split = TrainTestSplit::demo_protocol(&corpus, 3);
    println!(
        "corpus: {} documents / {} users / {} tags; {} train, {} test\n",
        corpus.len(),
        corpus.num_users(),
        corpus.num_tags(),
        split.train.len(),
        split.test.len()
    );

    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>14} {:>14} {:>16}",
        "protocol", "micro-F1", "macro-F1", "hamming", "train bytes", "bytes/peer", "hotspot bytes"
    );
    for protocol in [
        ProtocolKind::Cempar(CemparConfig::for_network(16)),
        ProtocolKind::pace(),
        ProtocolKind::centralized(),
        ProtocolKind::local_only(),
    ] {
        let name = protocol.name();
        let mut system = P2PDocTagger::new(DocTaggerConfig {
            protocol,
            ..DocTaggerConfig::default()
        });
        system.ingest(&corpus);
        system.learn(&split).expect("learning succeeds");
        let train_bytes = system.network_stats().total_bytes();
        let outcome = system.auto_tag_all().expect("auto tagging succeeds");
        let stats = system.network_stats();
        println!(
            "{:<14} {:>9.3} {:>9.3} {:>9.3} {:>14} {:>14.0} {:>16}",
            name,
            outcome.metrics.micro_f1(),
            outcome.metrics.macro_f1(),
            outcome.metrics.hamming_loss(),
            train_bytes,
            stats.mean_bytes_sent_per_peer(),
            stats.max_bytes_received_by_any_peer()
        );
    }

    println!(
        "\nExpected shape: CEMPaR/PACE land between the local-only lower bound and the \
         centralized upper bound on accuracy, while the centralized system concentrates \
         all training data and every prediction query on one server (the 'hotspot bytes' \
         column) — the scalability and single-point-of-failure argument of the paper."
    );
}
