//! Personal information management: browsing, searching and the tag cloud.
//!
//! Reproduces the demo's navigation components (Figures 3 and 4): the Library
//! (search / filter by tags), the file-metadata tag store, and the Tag Cloud
//! with co-occurrence edges, clusters and bridge tags.
//!
//! Run with: `cargo run --example personal_library`

use p2pdoctagger::prelude::*;

fn main() {
    // A slightly larger corpus so the tag cloud has interesting structure.
    let corpus = CorpusGenerator::new(CorpusSpec {
        num_tags: 10,
        num_users: 12,
        min_docs_per_user: 20,
        max_docs_per_user: 40,
        ..CorpusSpec::tiny()
    })
    .generate();
    let split = TrainTestSplit::demo_protocol(&corpus, 11);

    let mut system = P2PDocTagger::new(DocTaggerConfig::default());
    system.ingest(&corpus);
    system.learn(&split).expect("learning succeeds");
    let outcome = system.auto_tag_all().expect("auto tagging succeeds");
    println!(
        "library holds {} tagged documents ({} manual, {} automatic), micro-F1 {:.3}\n",
        system.library().len(),
        system.library().len() - system.library().auto_tagged_count(),
        system.library().auto_tagged_count(),
        outcome.metrics.micro_f1()
    );

    // -- Library: search and filter ------------------------------------------------
    let counts = system.library().tag_counts();
    let most_popular = counts
        .iter()
        .max_by_key(|(_, &c)| c)
        .map(|(t, _)| t.clone())
        .expect("at least one tag");
    let hits = system.library().search(&most_popular);
    println!(
        "Library search '{most_popular}': {} documents (first few: {:?})",
        hits.len(),
        &hits[..hits.len().min(5)]
    );

    let tags: Vec<&str> = counts.keys().take(2).map(String::as_str).collect();
    if tags.len() == 2 {
        println!(
            "Filter [{} AND {}]: {} documents; [{} OR {}]: {} documents",
            tags[0],
            tags[1],
            system.library().filter_all(&tags).len(),
            tags[0],
            tags[1],
            system.library().filter_any(&tags).len()
        );
    }

    // -- Tag store: file metadata other PIM tools can read -------------------------
    let export = system.tag_store().export();
    println!("\nFile metadata (first 3 of {} files):", export.len());
    for (path, attr, value) in export.iter().take(3) {
        println!("  {path}  {attr}=\"{value}\"");
    }

    // -- Tag cloud: font sizes, co-occurrence, clusters, bridges -------------------
    let cloud = system.tag_cloud();
    println!(
        "\nTag cloud ({} tags, {} co-occurrence edges):",
        cloud.num_tags(),
        cloud.num_edges()
    );
    for entry in cloud.entries() {
        println!(
            "  {:<18} count={:<4} font-size={}",
            entry.tag, entry.count, entry.font_size
        );
    }

    let clusters = cloud.clusters(2);
    println!(
        "\nClusters (edges seen in ≥ 2 documents): {}",
        clusters.len()
    );
    for (i, cluster) in clusters.iter().take(4).enumerate() {
        println!("  cluster {}: {:?}", i + 1, cluster);
    }
    let bridges = cloud.bridge_tags(2);
    println!("Bridge tags connecting clusters (cf. Figure 4): {bridges:?}");
}
