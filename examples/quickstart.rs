//! Quickstart: automated P2P collaborative tagging end to end.
//!
//! Generates a small synthetic bookmark corpus spread over a handful of
//! users/peers, trains the distributed tagger with the PACE protocol, tags the
//! untagged 80 % of the collection automatically, asks for tag suggestions on
//! one document, and applies a user refinement.
//!
//! Run with: `cargo run --example quickstart`

use p2pdoctagger::prelude::*;

fn main() {
    // 1. A delicious-like corpus: 8 users, each with 12–19 multi-tag documents.
    let corpus = CorpusGenerator::new(CorpusSpec::tiny()).generate();
    println!(
        "corpus: {} documents, {} users, {} tags, {:.2} tags/document",
        corpus.len(),
        corpus.num_users(),
        corpus.num_tags(),
        corpus.mean_tags_per_document()
    );

    // 2. The demo protocol: 20 % of each user's documents are manually tagged.
    let split = TrainTestSplit::demo_protocol(&corpus, 7);
    println!(
        "split: {} manually tagged (training), {} to auto-tag",
        split.train.len(),
        split.test.len()
    );

    // 3. Build the system with the PACE protocol plugged in and learn
    //    collaboratively over the simulated P2P network (one peer per user).
    let mut system = P2PDocTagger::new(DocTaggerConfig {
        protocol: ProtocolKind::pace(),
        ..DocTaggerConfig::default()
    });
    system.ingest(&corpus);
    system
        .learn(&split)
        .expect("collaborative learning succeeds");
    println!(
        "learned with {} over {} peers; training communication: {} bytes",
        system.protocol_name(),
        system.num_peers(),
        system.network_stats().total_bytes()
    );

    // 4. Auto-tag everything and evaluate against the held-out ground truth.
    let outcome = system.auto_tag_all().expect("auto tagging succeeds");
    println!(
        "auto-tagged {} documents ({} failures): micro-F1 {:.3}, macro-F1 {:.3}, hamming loss {:.3}",
        outcome.tagged,
        outcome.failed,
        outcome.metrics.micro_f1(),
        outcome.metrics.macro_f1(),
        outcome.metrics.hamming_loss()
    );

    // 5. "Suggest Tag": the suggestion cloud for one document, with the
    //    confidence slider at 0.5 (low-confidence tags are struck out).
    let doc = split.test[0];
    let cloud = system
        .suggest(doc, Some(0.5))
        .expect("suggestions available");
    println!(
        "suggestion cloud for document {doc}: {}",
        cloud.render_line()
    );

    // 6. The user corrects the tags of that document; the models adapt.
    let mut corrected = system.library().tags_of(doc);
    corrected.insert("reading-list".to_string());
    system.refine(doc, corrected).expect("refinement succeeds");
    println!(
        "after refinement: {:?} (corrections so far: {})",
        system.library().tags_of(doc),
        system.refinements().len()
    );

    // 7. Tags are stored as file metadata for other PIM tools.
    let path = P2PDocTagger::path_of(doc, corpus.document(doc).unwrap().user);
    println!(
        "file metadata: {path} -> {:?}",
        system.tag_store().xattr_value(&path)
    );
}
