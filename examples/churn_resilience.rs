//! Fault tolerance under peer churn.
//!
//! The demo varies "the churn/attrition rate of the P2P network" (§3) and the
//! paper claims that, unlike a centralized tagger, P2PDocTagger has "no single
//! point of failure". This example trains PACE, CEMPaR and the centralized
//! baseline on the same corpus, then spreads the tagging requests over a long
//! period of simulated time while peers churn in and out, and measures how
//! many requests issued by *online* peers could not be served.
//!
//! Run with: `cargo run --release --example churn_resilience`

use p2pdoctagger::prelude::*;

struct ChurnResult {
    name: String,
    served: usize,
    unserved: usize,
    requester_offline: usize,
}

fn run(protocol: ProtocolKind, mean_session_secs: f64) -> ChurnResult {
    let name = protocol.name().to_string();
    let corpus = CorpusGenerator::new(CorpusSpec {
        num_tags: 6,
        num_users: 24,
        min_docs_per_user: 12,
        max_docs_per_user: 20,
        ..CorpusSpec::tiny()
    })
    .generate();
    let split = TrainTestSplit::demo_protocol(&corpus, 5);

    let mut system = P2PDocTagger::new(DocTaggerConfig {
        protocol,
        network: Some(SimConfig {
            num_peers: corpus.num_users(),
            churn: ChurnModel::Exponential {
                mean_session_secs,
                mean_offline_secs: mean_session_secs / 2.0,
            },
            horizon_secs: 2_000_000,
            ..SimConfig::default()
        }),
        ..DocTaggerConfig::default()
    });
    system.ingest(&corpus);
    system.learn(&split).expect("learning succeeds");

    // Tagging requests arrive over time: every few documents the clock
    // advances and a different subset of peers is online.
    let mut result = ChurnResult {
        name,
        served: 0,
        unserved: 0,
        requester_offline: 0,
    };
    for (i, &doc) in split.test.iter().enumerate() {
        if i % 5 == 0 {
            system.advance_time(SimTime::from_secs(2_000));
        }
        match system.auto_tag(doc) {
            Ok(_) => result.served += 1,
            Err(ProtocolError::PeerOffline) => result.requester_offline += 1,
            Err(_) => result.unserved += 1,
        }
    }
    result
}

fn main() {
    for session in [3_000.0, 1_000.0] {
        println!(
            "-- exponential churn, mean session {session:.0}s, mean downtime {:.0}s --",
            session / 2.0
        );
        println!(
            "{:<14} {:>9} {:>11} {:>19} {:>20}",
            "protocol", "served", "unserved", "requester offline", "service failure rate"
        );
        for protocol in [
            ProtocolKind::pace(),
            ProtocolKind::Cempar(CemparConfig::for_network(24)),
            ProtocolKind::centralized(),
        ] {
            let r = run(protocol, session);
            let rate = r.unserved as f64 / (r.served + r.unserved).max(1) as f64;
            println!(
                "{:<14} {:>9} {:>11} {:>19} {:>19.1}%",
                r.name,
                r.served,
                r.unserved,
                r.requester_offline,
                rate * 100.0
            );
        }
        println!();
    }
    println!(
        "Expected shape: the centralized tagger cannot serve any request issued while \
         its server is offline, while PACE (fully local predictions) never fails and \
         CEMPaR (any reachable super-peer answers) degrades far more gracefully."
    );
}
