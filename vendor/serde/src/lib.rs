//! Offline drop-in subset of the [`serde`](https://serde.rs) API surface used
//! by this workspace.
//!
//! The build environment has no crates.io access, so this shim provides the
//! `Serialize` / `Deserialize` traits and their derive macros with the same
//! import paths as upstream serde. The traits carry no methods yet: the
//! workspace marks its wire/persistence types as serializable but never
//! serializes (there is no format crate in the graph). The derives emit
//! empty marker impls, so downstream bounds like `T: Serialize` hold for
//! derived types; trait methods will be grown here — or replaced by upstream
//! serde — when a real format lands.

#![warn(missing_docs)]

// Let the `::serde::...` paths emitted by the derive macros resolve even
// inside this crate's own tests.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    // Derived types must actually implement the marker traits, including
    // generic items (bounds repeated, defaults stripped) — this is what lets
    // downstream `T: Serialize` bounds hold.
    #[derive(Serialize, Deserialize)]
    struct Plain {
        _x: u32,
    }

    #[derive(Serialize, Deserialize)]
    struct Generic<A, B: Clone = u8> {
        _a: A,
        _b: B,
    }

    #[derive(Serialize, Deserialize)]
    enum Mixed<T> {
        _One(T),
        _Two { _n: usize },
    }

    fn assert_serialize<T: serde::Serialize>() {}
    fn assert_deserialize<T: for<'de> serde::Deserialize<'de>>() {}

    #[test]
    fn derives_emit_marker_impls() {
        assert_serialize::<Plain>();
        assert_deserialize::<Plain>();
        assert_serialize::<Generic<String, u8>>();
        assert_deserialize::<Generic<String, u8>>();
        assert_serialize::<Mixed<u32>>();
        assert_deserialize::<Mixed<u32>>();
    }
}
