//! Offline drop-in subset of the [`rand`](https://crates.io/crates/rand) 0.8
//! API surface used by this workspace.
//!
//! The build environment for this repository has no access to crates.io, so
//! instead of the real `rand` crate the workspace vendors this shim. It
//! implements exactly the calls the codebase makes — `StdRng::seed_from_u64`,
//! `Rng::{gen_range, gen_bool}` over integer/float ranges, and
//! `seq::SliceRandom::{shuffle, choose}` — on top of a deterministic
//! xoshiro256++ generator. It is **not** cryptographically secure and makes
//! no attempt to match upstream `rand`'s value streams; all uses in this
//! workspace only require a seeded, deterministic, well-mixed source.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed (mixed through SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing random value generation, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Generates a value uniformly distributed over `range`.
    ///
    /// Panics if the range is empty, matching upstream behaviour.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }

    /// Generates a uniform `f64` in `[0, 1)`.
    fn gen_unit_f64(&mut self) -> f64 {
        unit_f64(self.next_u64())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 significant bits, the standard conversion.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that a uniform value of type `T` can be drawn from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                start + (end - start) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors for state initialization.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }
}

/// Sequence-related helpers (`shuffle`, `choose`).
pub mod seq {
    use super::Rng;

    /// Extension trait over slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.gen_range(1..=4);
            assert!((1..=4).contains(&y));
            let f: f64 = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
            let s: usize = rng.gen_range(50..200);
            assert!((50..200).contains(&s));
        }
    }

    #[test]
    fn gen_bool_probability_is_plausible() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes_and_choose_picks_members() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
