//! Offline drop-in subset of the [`proptest`](https://proptest-rs.github.io/)
//! API surface used by this workspace.
//!
//! The build environment has no crates.io access, so `tests/proptests.rs`
//! runs against this shim. It keeps proptest's source-level API — the
//! [`Strategy`] trait with `prop_map`, range / tuple / regex-string
//! strategies, `prop::collection::{vec, btree_set}`, [`any`], and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros — on top of
//! a deterministic seeded generator. Deliberate simplifications versus
//! upstream: no shrinking of failing cases, no persisted failure seeds, and
//! string strategies support only the regex subset the workspace uses
//! (literal chars, `.`, `[...]` classes with ranges, `{m,n}` repetition).

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::marker::PhantomData;
use std::ops::Range;

/// The deterministic generator threaded through all strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A fixed-seed generator, so test runs are reproducible.
    pub fn deterministic() -> Self {
        TestRng(StdRng::seed_from_u64(0x9E37_79B9_7F4A_7C15))
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// Run-time configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of type `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking; a strategy
/// is just a deterministic function of the [`TestRng`] stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`, mirroring `Strategy::prop_map`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

// ---------------------------------------------------------------------------
// `any::<T>()`
// ---------------------------------------------------------------------------

/// Strategy for the full value range of a primitive, from [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

/// Types with a canonical "anything goes" strategy, mirroring
/// `proptest::arbitrary::Arbitrary` for the primitives the workspace needs.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.rng().next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.rng().next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// Strategy producing any value of `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------------
// Regex-subset string strategies
// ---------------------------------------------------------------------------

/// `&str` patterns are strategies generating matching `String`s, as in
/// upstream proptest. Supported syntax: literal characters, `.`,
/// `[...]` classes with `a-z` ranges, and `{m,n}` / `{n}` repetition.
impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

#[derive(Debug, Clone)]
enum PatternAtom {
    /// A fixed set of candidate characters.
    Class(Vec<char>),
    /// `.`: any printable character.
    AnyChar,
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut class = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        Some(']') => break,
                        Some('-') if prev.is_some() && chars.peek().is_some_and(|&c| c != ']') => {
                            let lo = prev.take().unwrap();
                            let hi = chars.next().unwrap();
                            class.extend((lo..=hi).filter(|c| c.is_ascii()));
                        }
                        Some(other) => {
                            if let Some(p) = prev.replace(other) {
                                class.push(p);
                            }
                        }
                        None => panic!("unterminated character class in pattern {pattern:?}"),
                    }
                }
                if let Some(p) = prev {
                    class.push(p);
                }
                assert!(
                    !class.is_empty(),
                    "empty character class in pattern {pattern:?}"
                );
                PatternAtom::Class(class)
            }
            '.' => PatternAtom::AnyChar,
            '\\' => PatternAtom::Class(vec![chars
                .next()
                .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"))]),
            other => PatternAtom::Class(vec![other]),
        };
        // Optional {m,n} / {n} repetition.
        let (lo, hi) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            loop {
                match chars.next() {
                    Some('}') => break,
                    Some(c) => spec.push(c),
                    None => panic!("unterminated repetition in pattern {pattern:?}"),
                }
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim()
                        .parse::<usize>()
                        .expect("bad repetition lower bound"),
                    hi.trim()
                        .parse::<usize>()
                        .expect("bad repetition upper bound"),
                ),
                None => {
                    let n = spec.trim().parse::<usize>().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let count = if lo == hi {
            lo
        } else {
            rng.rng().gen_range(lo..=hi)
        };
        for _ in 0..count {
            out.push(match &atom {
                PatternAtom::Class(class) => class[rng.rng().gen_range(0..class.len())],
                PatternAtom::AnyChar => random_printable_char(rng),
            });
        }
    }
    out
}

/// A printable character: mostly ASCII, with occasional non-ASCII letters so
/// `.` exercises multi-byte handling.
fn random_printable_char(rng: &mut TestRng) -> char {
    const EXOTIC: &[char] = &['é', 'ß', 'λ', '中', '𝕏', 'ж', 'ñ', '٣'];
    if rng.rng().gen_bool(0.1) {
        EXOTIC[rng.rng().gen_range(0..EXOTIC.len())]
    } else {
        char::from(rng.rng().gen_range(0x20u8..0x7f))
    }
}

// ---------------------------------------------------------------------------
// Collection strategies
// ---------------------------------------------------------------------------

/// Collection strategies (`prop::collection::vec` and friends).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec`s with sizes drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec<S::Value>` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng().gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s with target sizes drawn from a range.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `BTreeSet<S::Value>` aiming for a size in `size` (duplicate
    /// draws may make the set smaller, as with a saturated upstream domain).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let len = rng.rng().gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop` namespace re-export, so `prop::collection::vec` resolves after
/// `use proptest::prelude::*`.
pub mod prop {
    pub use crate::collection;
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, ProptestConfig,
        Strategy,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Asserts a property inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// Declares property tests, mirroring `proptest::proptest!`.
///
/// Each `fn name(arg in strategy, ...)` becomes a `#[test]` that draws
/// `config.cases` inputs from the strategies and runs the body on each. On
/// failure the panic message reports the case number (there is no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $( $(#[$attr:meta])* fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic();
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::Strategy::generate(&{ $strategy }, &mut rng);
                    )+
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest case {}/{} failed in `{}`",
                            case + 1,
                            config.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = crate::TestRng::deterministic();
        for _ in 0..200 {
            let x = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let f = (-1.0f64..1.0).generate(&mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn string_pattern_strategies_match_their_own_shape() {
        let mut rng = crate::TestRng::deterministic();
        for _ in 0..100 {
            let s = "[a-z]{1,20}".generate(&mut rng);
            assert!((1..=20).contains(&s.chars().count()));
            assert!(s.bytes().all(|b| b.is_ascii_lowercase()));

            let t = "[a-z ]{10,80}".generate(&mut rng);
            assert!((10..=80).contains(&t.chars().count()));
            assert!(t.bytes().all(|b| b.is_ascii_lowercase() || b == b' '));

            let d = ".{0,200}".generate(&mut rng);
            assert!(d.chars().count() <= 200);
        }
    }

    #[test]
    fn collection_strategies_respect_sizes() {
        let mut rng = crate::TestRng::deterministic();
        for _ in 0..100 {
            let v = prop::collection::vec((0u32..50, -1.0f64..1.0), 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            let s: BTreeSet<u32> = prop::collection::btree_set(0u32..8, 0..4).generate(&mut rng);
            assert!(s.len() < 4);
            assert!(s.iter().all(|&x| x < 8));
        }
    }

    #[test]
    fn prop_map_composes() {
        let mut rng = crate::TestRng::deterministic();
        let strategy = prop::collection::vec(0u32..10, 1..5).prop_map(|v| v.len());
        for _ in 0..50 {
            let n = strategy.generate(&mut rng);
            assert!((1..5).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(x in 0u64..100, y in any::<u64>()) {
            prop_assert!(x < 100);
            prop_assert_eq!(y.wrapping_add(0), y);
        }
    }
}
