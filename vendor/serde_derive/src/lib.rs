//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as markers (no
//! code actually serializes anything yet — there is no `serde_json`/`bincode`
//! in the dependency graph), so these derives emit *empty* trait impls: just
//! enough that downstream bounds like `T: Serialize` hold for derived types,
//! with no serialization logic behind them. When real wire/persistence
//! formats land, this shim is the single place to grow real implementations,
//! or to swap back to upstream serde once the build environment has registry
//! access.
//!
//! Without `syn`, generics support is intentionally modest: plain lifetime /
//! type / const parameters with optional bounds and defaults are handled
//! (bounds are repeated on the impl, defaults stripped); exotic shapes like
//! `where` clauses on the item are not.

#![warn(missing_docs)]

use proc_macro::{TokenStream, TokenTree};

/// `#[derive(Serialize)]` — emits `impl serde::Serialize for T {}`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize")
}

/// `#[derive(Deserialize)]` — emits `impl<'de> serde::Deserialize<'de> for T {}`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize")
}

/// Builds the empty marker impl for the item in `input`.
fn marker_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    let Some((name, params)) = parse_item(input) else {
        // Unparseable item shape: emit nothing rather than a broken impl.
        return TokenStream::new();
    };

    // Split the raw generics text into `impl<...>` parameters (bounds kept,
    // defaults stripped) and bare argument names for the type position.
    let mut impl_params: Vec<String> = Vec::new();
    let mut type_args: Vec<String> = Vec::new();
    for param in split_top_level(&params) {
        let no_default = param
            .split_once('=')
            .map(|(head, _)| head.trim().to_string())
            .unwrap_or_else(|| param.trim().to_string());
        if no_default.is_empty() {
            continue;
        }
        let name_part = no_default
            .split_once(':')
            .map(|(head, _)| head.trim().to_string())
            .unwrap_or_else(|| no_default.clone());
        let arg = name_part
            .strip_prefix("const")
            .map(|rest| rest.trim().to_string())
            .unwrap_or(name_part);
        impl_params.push(no_default);
        type_args.push(arg);
    }

    let (de_lifetime, de_args) = if trait_name == "Deserialize" {
        ("'de", "<'de>")
    } else {
        ("", "")
    };
    let mut all_impl_params: Vec<String> = Vec::new();
    if !de_lifetime.is_empty() {
        all_impl_params.push(de_lifetime.to_string());
    }
    all_impl_params.extend(impl_params);

    let impl_generics = if all_impl_params.is_empty() {
        String::new()
    } else {
        format!("<{}>", all_impl_params.join(", "))
    };
    let type_generics = if type_args.is_empty() {
        String::new()
    } else {
        format!("<{}>", type_args.join(", "))
    };

    format!("impl{impl_generics} ::serde::{trait_name}{de_args} for {name}{type_generics} {{}}")
        .parse()
        .expect("generated marker impl must be valid Rust")
}

/// Extracts `(item_name, raw_generics_text)` from a struct/enum/union
/// definition, where the generics text is the contents of the `<...>` that
/// directly follows the name (empty if the item is not generic).
fn parse_item(input: TokenStream) -> Option<(String, String)> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let name = loop {
        match tokens.get(i)? {
            TokenTree::Ident(id)
                if matches!(id.to_string().as_str(), "struct" | "enum" | "union") =>
            {
                match tokens.get(i + 1)? {
                    TokenTree::Ident(name) => break name.to_string(),
                    _ => return None,
                }
            }
            _ => i += 1,
        }
    };
    i += 2;

    // Optional `<...>` generics directly after the name. `<`/`>` arrive as
    // individual `Punct` tokens, so track nesting depth manually.
    let mut generics = String::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            let mut depth = 1usize;
            i += 1;
            while depth > 0 {
                let token = tokens.get(i)?;
                if let TokenTree::Punct(p) = token {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                // No space after a lifetime tick, so `'de` survives the
                // round-trip through text.
                if !generics.is_empty() && !generics.ends_with('\'') {
                    generics.push(' ');
                }
                generics.push_str(&token.to_string());
                i += 1;
            }
        }
    }
    Some((name, generics))
}

/// Splits generics text at top-level commas (commas nested inside `<>`, `()`
/// or `[]` stay within their parameter).
fn split_top_level(params: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut depth = 0i32;
    for c in params.chars() {
        match c {
            '<' | '(' | '[' => depth += 1,
            '>' | ')' | ']' => depth -= 1,
            ',' if depth == 0 => {
                out.push(current.trim().to_string());
                current.clear();
                continue;
            }
            _ => {}
        }
        current.push(c);
    }
    if !current.trim().is_empty() {
        out.push(current.trim().to_string());
    }
    out
}
