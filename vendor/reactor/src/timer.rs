//! A monotonic-clock timer wheel (binary-heap flavoured).

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};
use std::time::{Duration, Instant};

/// Orders wall-clock deadlines for an event loop.
///
/// Entries are identified by the caller's `id` (the sans-io cores' `TimerId`
/// maps here directly). Arming an id that is already armed re-arms it:
/// the newest deadline wins, matching the cores' own deadline ledgers.
/// Cancellation is lazy — a tombstone marks the id dead and the stale heap
/// entry is skipped when it surfaces — so both `cancel` and `insert` are
/// `O(log n)` with no heap surgery.
#[derive(Debug, Default)]
pub struct TimerWheel {
    heap: BinaryHeap<Reverse<(Instant, u64)>>,
    /// The armed ids with their live deadline; heap entries not matching
    /// this map are stale.
    armed: BTreeSet<(u64, Instant)>,
}

impl TimerWheel {
    /// An empty wheel.
    pub fn new() -> TimerWheel {
        TimerWheel::default()
    }

    /// Arms (or re-arms) timer `id` to fire at `deadline`.
    pub fn insert(&mut self, id: u64, deadline: Instant) {
        // Exactly one live deadline per id, newest wins.
        self.cancel(id);
        self.armed.insert((id, deadline));
        self.heap.push(Reverse((deadline, id)));
    }

    /// Disarms timer `id` (a no-op when it is not armed).
    pub fn cancel(&mut self, id: u64) {
        let stale: Vec<(u64, Instant)> = self
            .armed
            .iter()
            .filter(|&&(armed_id, _)| armed_id == id)
            .copied()
            .collect();
        for entry in stale {
            self.armed.remove(&entry);
        }
    }

    /// The earliest live deadline, if any timer is armed.
    pub fn next_deadline(&mut self) -> Option<Instant> {
        self.compact();
        self.heap.peek().map(|Reverse((at, _))| *at)
    }

    /// How long an event loop should block before the next timer fires:
    /// `None` when nothing is armed (block forever), `Some(ZERO)` when a
    /// timer is already due at `now`.
    pub fn timeout_from(&mut self, now: Instant) -> Option<Duration> {
        self.next_deadline()
            .map(|at| at.saturating_duration_since(now))
    }

    /// Pops every timer due at `now`, earliest first.
    pub fn pop_due(&mut self, now: Instant) -> Vec<u64> {
        let mut due = Vec::new();
        loop {
            self.compact();
            match self.heap.peek() {
                Some(&Reverse((at, id))) if at <= now => {
                    self.heap.pop();
                    self.armed.remove(&(id, at));
                    due.push(id);
                }
                _ => return due,
            }
        }
    }

    /// Number of live (armed) timers.
    pub fn len(&self) -> usize {
        self.armed.len()
    }

    /// Whether no timer is armed.
    pub fn is_empty(&self) -> bool {
        self.armed.is_empty()
    }

    /// Discards stale heap entries (cancelled or re-armed ids) from the top.
    fn compact(&mut self) {
        while let Some(&Reverse((at, id))) = self.heap.peek() {
            if self.armed.contains(&(id, at)) {
                return;
            }
            self.heap.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_deadline_order() {
        let mut wheel = TimerWheel::new();
        let base = Instant::now();
        wheel.insert(3, base + Duration::from_millis(30));
        wheel.insert(1, base + Duration::from_millis(10));
        wheel.insert(2, base + Duration::from_millis(20));
        assert_eq!(wheel.len(), 3);
        assert_eq!(
            wheel.next_deadline(),
            Some(base + Duration::from_millis(10))
        );
        assert_eq!(wheel.pop_due(base + Duration::from_millis(5)), vec![]);
        assert_eq!(wheel.pop_due(base + Duration::from_millis(25)), vec![1, 2]);
        assert_eq!(wheel.pop_due(base + Duration::from_millis(100)), vec![3]);
        assert!(wheel.is_empty());
        assert_eq!(wheel.next_deadline(), None);
    }

    #[test]
    fn cancel_and_rearm_leave_only_the_newest_deadline() {
        let mut wheel = TimerWheel::new();
        let base = Instant::now();
        wheel.insert(1, base + Duration::from_millis(10));
        wheel.insert(2, base + Duration::from_millis(20));
        wheel.cancel(1);
        assert_eq!(wheel.len(), 1);
        // Re-arming 2 moves it: the old deadline must not fire.
        wheel.insert(2, base + Duration::from_millis(50));
        assert_eq!(wheel.pop_due(base + Duration::from_millis(30)), vec![]);
        assert_eq!(wheel.pop_due(base + Duration::from_millis(60)), vec![2]);
        assert!(wheel.is_empty());
        // Cancelling an unknown id is a no-op.
        wheel.cancel(99);
    }

    #[test]
    fn timeout_from_clamps_to_zero_when_overdue() {
        let mut wheel = TimerWheel::new();
        let base = Instant::now();
        assert_eq!(wheel.timeout_from(base), None);
        wheel.insert(1, base + Duration::from_millis(40));
        assert_eq!(
            wheel.timeout_from(base + Duration::from_millis(15)),
            Some(Duration::from_millis(25))
        );
        assert_eq!(
            wheel.timeout_from(base + Duration::from_millis(100)),
            Some(Duration::ZERO)
        );
    }
}
