//! Level-triggered `epoll` readiness polling.

use std::io;
use std::os::fd::RawFd;
use std::os::raw::c_int;
use std::time::Duration;

// The slice of the libc ABI this crate needs. Every Rust binary on Linux
// already links libc, so declaring these avoids any crates.io dependency.
extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
}

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

/// The kernel's `struct epoll_event`. On x86-64 the kernel ABI packs it so
/// the 64-bit data field sits at offset 4; other architectures use natural
/// C layout.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// Caller-chosen identifier attached to a registration and echoed back on
/// its [`Event`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Which readiness directions a registration listens for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    readable: bool,
    writable: bool,
}

impl Interest {
    /// Readable readiness only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable readiness only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn mask(self) -> u32 {
        let mut m = EPOLLRDHUP;
        if self.readable {
            m |= EPOLLIN;
        }
        if self.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the source was registered with.
    pub token: Token,
    /// Readable (or peer-closed: errors/hang-ups surface as readable so the
    /// owner's read path observes the failure).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
}

/// A level-triggered `epoll` instance.
///
/// Registrations are identified by fd; the kernel echoes back the [`Token`]
/// supplied at registration. Dropping the poller closes the epoll fd (the
/// registered sources are untouched — they are borrowed, not owned).
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// A fresh epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poller> {
        // SAFETY: epoll_create1 has no pointer arguments; the flag is one of
        // its documented values. A negative return is reported via errno.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, event: Option<EpollEvent>) -> io::Result<()> {
        let mut event = event;
        let ptr = event
            .as_mut()
            .map(|e| e as *mut EpollEvent)
            .unwrap_or(std::ptr::null_mut());
        // SAFETY: `ptr` is either null (EPOLL_CTL_DEL, which ignores it on
        // any kernel this crate targets) or points at a live stack-local
        // EpollEvent that outlives the call; epfd/fd are caller-supplied
        // open descriptors and the kernel rejects stale ones with EBADF.
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, ptr) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Starts watching `fd` for `interest`, tagging its events with `token`.
    pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        let event = EpollEvent {
            events: interest.mask(),
            data: token.0 as u64,
        };
        self.ctl(EPOLL_CTL_ADD, fd, Some(event))
    }

    /// Replaces the interest/token of an existing registration.
    pub fn modify(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        let event = EpollEvent {
            events: interest.mask(),
            data: token.0 as u64,
        };
        self.ctl(EPOLL_CTL_MOD, fd, Some(event))
    }

    /// Stops watching `fd`.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None)
    }

    /// Blocks until at least one registered source is ready or `timeout`
    /// elapses (`None` = wait forever), appending the ready set to `events`.
    /// Returns the number of events appended (0 = timed out).
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        // epoll_wait takes whole milliseconds; round sub-millisecond waits
        // up so a 100µs deadline never degenerates into a busy loop.
        let timeout_ms: c_int = match timeout {
            None => -1,
            Some(d) => {
                let ms = d.as_millis() + u128::from(d.as_nanos() % 1_000_000 != 0);
                ms.min(c_int::MAX as u128) as c_int
            }
        };
        let mut buf = [EpollEvent { events: 0, data: 0 }; 64];
        let cap = buf.len() as c_int;
        let n = loop {
            // SAFETY: the buffer pointer and capacity describe a live,
            // properly aligned (packed layouts only lower alignment) local
            // array the kernel writes at most `maxevents` entries into.
            let rc = unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), cap, timeout_ms) };
            if rc >= 0 {
                break rc as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
            // EINTR: retry. (The timeout restarts in full — acceptable
            // imprecision for a shim whose callers re-derive deadlines from
            // the timer wheel on every loop iteration.)
        };
        for raw in &buf[..n] {
            let (bits, data) = (raw.events, raw.data);
            events.push(Event {
                token: Token(data as usize),
                readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                writable: bits & EPOLLOUT != 0,
            });
        }
        Ok(n)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: epfd came from a successful epoll_create1 and is closed
        // exactly once, here.
        unsafe {
            close(self.epfd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let a = TcpStream::connect(addr).expect("connect");
        let (b, _) = listener.accept().expect("accept");
        (a, b)
    }

    #[test]
    fn readable_after_peer_writes() {
        let (mut a, b) = pair();
        let poller = Poller::new().expect("poller");
        poller
            .register(b.as_raw_fd(), Token(7), Interest::READABLE)
            .expect("register");

        // Nothing buffered yet: a zero timeout reports no events.
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::ZERO))
            .expect("wait");
        assert_eq!((n, events.len()), (0, 0));

        a.write_all(b"ping").expect("write");
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert_eq!(n, 1);
        assert_eq!(events[0].token, Token(7));
        assert!(events[0].readable);

        let mut buf = [0u8; 4];
        let mut b = b;
        b.read_exact(&mut buf).expect("read");
        assert_eq!(&buf, b"ping");
    }

    #[test]
    fn peer_close_surfaces_as_readable() {
        let (a, b) = pair();
        let poller = Poller::new().expect("poller");
        poller
            .register(b.as_raw_fd(), Token(1), Interest::READABLE)
            .expect("register");
        drop(a);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert!(events.iter().any(|e| e.token == Token(1) && e.readable));
    }

    #[test]
    fn modify_and_deregister_change_the_ready_set() {
        let (a, b) = pair();
        let poller = Poller::new().expect("poller");
        // A fresh socket with room in its send buffer is writable.
        poller
            .register(b.as_raw_fd(), Token(2), Interest::WRITABLE)
            .expect("register");
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert!(events.iter().any(|e| e.token == Token(2) && e.writable));

        // Swap to readable-only: with nothing buffered, nothing is ready.
        poller
            .modify(b.as_raw_fd(), Token(2), Interest::READABLE)
            .expect("modify");
        events.clear();
        let n = poller
            .wait(&mut events, Some(Duration::ZERO))
            .expect("wait");
        assert_eq!(n, 0);

        poller.deregister(b.as_raw_fd()).expect("deregister");
        drop(a);
        // Deregistered: even the peer closing produces no event.
        events.clear();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .expect("wait");
        assert_eq!(n, 0);
        drop(b);
    }
}
