//! # reactor — minimal epoll readiness loop + monotonic timer wheel
//!
//! The offline stand-in for the event-loop slice of `mio`/`polling` that the
//! [`peerd`] daemon drives its sockets with: a [`Poller`] wrapping a Linux
//! `epoll` instance (level-triggered, `FFI` against the libc already linked
//! into every Rust binary — no crates.io), and a [`TimerWheel`] ordering
//! wall-clock deadlines for the sans-io cores' `SetTimer` outputs.
//!
//! This crate is one of the two audited wall-clock/thread boundaries in the
//! workspace (the other is `crates/peerd`): simulation and protocol crates
//! must stay virtual-time and single-threaded, while the real-socket driver
//! below necessarily blocks on `epoll_wait` with real timeouts. The xtask
//! `wall-clock` lint encodes that scoping.
//!
//! Deliberate gaps versus the upstream crates it stands in for: Linux only
//! (`epoll`), level-triggered only, no edge-triggered or oneshot modes, no
//! waker/eventfd, and the timer wheel is a binary heap rather than a
//! hierarchical wheel — at loopback-harness scale none of that matters.
//!
//! [`peerd`]: ../peerd/index.html

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![cfg(target_os = "linux")]

mod poll;
mod timer;

pub use poll::{Event, Interest, Poller, Token};
pub use timer::TimerWheel;
