//! Scheduler-permutation stress: the index-deterministic-reduction claim
//! under adversarial orderings.
//!
//! `par_map`/`par_chunks`/`par_fold` promise output bit-identical to their
//! sequential equivalents regardless of thread scheduling. An ordinary test
//! run only sees whatever interleavings the OS happens to produce, so this
//! suite forces the issue: every workload is replayed under every
//! combination of adversarial [`Schedule`] (reverse, interleaving strides,
//! seeded shuffles) and pinned worker count, and every output is compared
//! **bit for bit** against a sequential reference computed once up front.
//!
//! The schedule/thread hooks are process-global, so the whole suite is one
//! `#[test]` function — two tests mutating the hooks concurrently would
//! race each other, not the code under test.
//!
//! Sizes are kept small for the CI quick pass (`cargo run -p xtask --
//! stress-parallel --quick`); setting `P2PDT_STRESS_FULL` (the default for
//! `stress-parallel` without `--quick`) enlarges the inputs and the
//! worker-count grid.

use parallel::schedule::{self, Schedule};
use parallel::{par_chunks, par_fold, par_map};

/// A numerically non-trivial per-item kernel with value-dependent cost, so
/// work stealing under permutation actually desynchronizes the workers.
fn heavy(x: &f64) -> f64 {
    let iters = 4 + ((x.to_bits() >> 17) % 48) as usize;
    let mut a = *x;
    for _ in 0..iters {
        a = (a.sin() * 1.7 + a.cos()).mul_add(0.9, 0.01);
    }
    a
}

fn assert_bits_eq(got: &[f64], want: &[f64], what: &str, s: Schedule, w: usize) {
    assert_eq!(
        got.len(),
        want.len(),
        "{what} length under {s:?} × {w} workers"
    );
    for (i, (g, e)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            e.to_bits(),
            "{what}[{i}] diverged under {s:?} × {w} workers: {g} != {e}"
        );
    }
}

#[test]
fn outputs_are_bit_identical_under_adversarial_schedules() {
    let full = std::env::var("P2PDT_STRESS_FULL").is_ok();
    let n: usize = if full { 6144 } else { 768 };

    // Inputs deliberately include negatives, tiny offsets and irregular
    // magnitudes — anything that would expose a reassociated float sum.
    let floats: Vec<f64> = (0..n)
        .map(|i| (i as f64) * 0.37 - (n as f64) / 3.0 + 1e-9)
        .collect();
    let ints: Vec<u64> = (0..n as u64).collect();

    // Sequential references, computed once, no parallel machinery involved.
    let ref_map: Vec<f64> = floats.iter().map(heavy).collect();
    let ref_strings: Vec<String> = ints.iter().map(|&i| format!("item-{i:04x}")).collect();
    let ref_sum: f64 = floats.iter().map(heavy).fold(0.0f64, |a, b| a + b);
    let ref_chunks: Vec<f64> = floats
        .chunks(7)
        .enumerate()
        .map(|(idx, c)| c.iter().fold(0.0f64, |a, &b| a + b) * (idx + 1) as f64)
        .collect();
    let ref_nested: Vec<Vec<f64>> = floats
        .chunks(32)
        .map(|c| c.iter().map(heavy).collect())
        .collect();
    let nested_inputs: Vec<&[f64]> = floats.chunks(32).collect();

    // ≥ 8 adversarial (non-identity) orderings, per the acceptance bar.
    let schedules = [
        Schedule::Reverse,
        Schedule::Stride(2),
        Schedule::Stride(3),
        Schedule::Stride(5),
        Schedule::Stride(64),
        Schedule::Shuffle(1),
        Schedule::Shuffle(42),
        Schedule::Shuffle(0xDEC0DE),
        Schedule::Shuffle(987_654_321),
    ];
    let workers: &[usize] = if full {
        &[1, 2, 3, 4, 8, 16]
    } else {
        &[2, 3, 8]
    };

    let mut combos = 0usize;
    for &s in &schedules {
        for &w in workers {
            schedule::set_schedule(s);
            schedule::set_thread_override(Some(w));

            let got_map = par_map(&floats, heavy);
            assert_bits_eq(&got_map, &ref_map, "par_map", s, w);

            let got_strings = par_map(&ints, |&i| format!("item-{i:04x}"));
            assert_eq!(
                got_strings, ref_strings,
                "string par_map reordered under {s:?} × {w} workers"
            );

            let got_sum = par_fold(&floats, heavy, 0.0f64, |a, b| a + b);
            assert_eq!(
                got_sum.to_bits(),
                ref_sum.to_bits(),
                "par_fold sum diverged under {s:?} × {w} workers: {got_sum} != {ref_sum}"
            );

            let got_chunks = par_chunks(&floats, 7, |idx, c| {
                c.iter().fold(0.0f64, |a, &b| a + b) * (idx + 1) as f64
            });
            assert_bits_eq(&got_chunks, &ref_chunks, "par_chunks", s, w);

            // Nested call: the inner par_map must run inline in the worker
            // and still honor input order, permutation or not.
            let got_nested = par_map(&nested_inputs, |c| par_map(c, heavy));
            assert_eq!(got_nested.len(), ref_nested.len());
            for (g, e) in got_nested.iter().zip(&ref_nested) {
                assert_bits_eq(g, e, "nested par_map", s, w);
            }

            combos += 1;
        }
    }
    assert!(
        combos >= 8,
        "stress must cover at least 8 adversarial orderings, ran {combos}"
    );

    // Leave the process-global hooks the way production code expects them.
    schedule::set_schedule(Schedule::Identity);
    schedule::set_thread_override(None);
    let sanity = par_map(&floats, heavy);
    assert_bits_eq(
        &sanity,
        &ref_map,
        "post-reset par_map",
        Schedule::Identity,
        0,
    );
}
