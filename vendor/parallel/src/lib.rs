//! Dependency-free data-parallelism shim: the execution layer of the
//! workspace's batched/parallel scoring substrate.
//!
//! The build environment has no crates.io access, so instead of `rayon` this
//! tiny crate provides the three primitives the workspace actually uses, built
//! on `std::thread::scope`:
//!
//! * [`par_map`] — map a function over a slice, returning results **in input
//!   order** (index-deterministic reduction);
//! * [`par_chunks`] — map a function over contiguous chunks, again in order;
//! * [`par_fold`] — [`par_map`] followed by a **sequential, left-to-right**
//!   fold over the ordered results.
//!
//! # Determinism contract
//!
//! Output order never depends on thread scheduling: workers steal *indices*
//! from a shared atomic counter, tag every result with its input index, and
//! the caller-visible `Vec` is assembled by index. A fold over `par_map`
//! output therefore performs its floating-point additions in exactly the same
//! order as the sequential `items.iter().map(f).fold(...)` would, which is
//! what lets the batched scoring paths promise bit-for-bit identical results
//! to their scalar counterparts. Closures must not share mutable state (the
//! `Fn + Sync` bounds enforce this) and must not share RNGs — seed one RNG
//! per item instead.
//!
//! The contract is a *tested* property, not just a design note: the
//! [`schedule`] module lets the stress suite
//! (`vendor/parallel/tests/stress.rs`, run via
//! `cargo run -p xtask -- stress-parallel`) replay every primitive under
//! adversarial index permutations and forced worker counts and assert
//! bit-identical outputs against the sequential reference.
//!
//! # Deliberate gaps versus `rayon`
//!
//! * no work-stealing deques — load balancing is a single atomic index
//!   counter, which is plenty for the coarse-grained tasks here (per-peer
//!   training, per-document scoring);
//! * no nested parallelism — a parallel call issued from inside a worker
//!   runs sequentially (there is no shared pool to borrow from, so the
//!   outermost fan-out owns the cores; rayon would instead cooperatively
//!   schedule the nested work);
//! * no persistent global pool — threads are scoped per call (spawn cost is
//!   irrelevant next to SVM training; zero threads are spawned when the
//!   machine has one core or the input has one element, so single-core CI
//!   boxes run the exact sequential code path);
//! * no `ParallelIterator` adaptor zoo — only slices in, `Vec` out;
//! * a panicking closure aborts the whole call (the panic is resumed on the
//!   caller thread once every worker has stopped), with no partial results.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod schedule;

pub use schedule::Schedule;

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// Set while the current thread is a [`par_map`] worker. Nested parallel
    /// calls (e.g. per-tag training inside per-peer training) run
    /// sequentially instead of spawning cores² threads — there is no shared
    /// pool to borrow workers from, so the outer fan-out owns the cores.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Environment variable overriding the worker count (`0` or unset means
/// "use every available core").
pub const THREADS_ENV: &str = "P2PDT_THREADS";

/// Number of worker threads a parallel call may use for `n_items` items:
/// `min(available cores, n_items)`, overridable via [`THREADS_ENV`] and —
/// with higher precedence, for the stress suite — via
/// [`schedule::set_thread_override`].
pub fn effective_threads(n_items: usize) -> usize {
    let cores = schedule::thread_override()
        .or_else(|| {
            std::env::var(THREADS_ENV)
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
    cores.min(n_items).max(1)
}

/// Maps `f` over `items` in parallel, returning results in input order.
///
/// Equivalent to `items.iter().map(f).collect()` — including the order of the
/// output — but evaluated by up to [`effective_threads`] scoped workers. With
/// one worker (single-core machine, single item, or `P2PDT_THREADS=1`) the
/// sequential path runs inline with no thread spawned at all.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = effective_threads(items.len());
    if threads <= 1 || IN_WORKER.with(Cell::get) {
        // Single worker, or already inside another par_map's worker: run
        // inline (nested parallelism would oversubscribe the machine).
        return items.iter().map(f).collect();
    }
    // Visitation order: `None` (the production default) means workers
    // consume indices in natural order straight off the counter; the stress
    // suite installs permutations here to prove the output does not depend
    // on which worker sees which index when.
    let order = schedule::current().order(items.len());
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            handles.push(scope.spawn(|| {
                IN_WORKER.with(|flag| flag.set(true));
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let slot = next.fetch_add(1, Ordering::Relaxed);
                    if slot >= items.len() {
                        break;
                    }
                    let i = order.as_ref().map_or(slot, |o| o[slot]);
                    local.push((i, f(&items[i])));
                }
                local
            }));
        }
        for handle in handles {
            match handle.join() {
                Ok(local) => tagged.extend(local),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    // Index-deterministic reduction: place every result in its input slot.
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    for (i, r) in tagged {
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|r| r.expect("every index was processed exactly once"))
        .collect()
}

/// Maps `f` over contiguous chunks of at most `chunk_size` items, in
/// parallel, returning one result per chunk in chunk order.
///
/// `f` receives `(chunk_index, chunk)`. Equivalent to
/// `items.chunks(chunk_size).enumerate().map(...).collect()`.
///
/// # Panics
/// Panics when `chunk_size` is 0.
pub fn par_chunks<T, R, F>(items: &[T], chunk_size: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let chunks: Vec<(usize, &[T])> = items.chunks(chunk_size).enumerate().collect();
    par_map(&chunks, |&(i, chunk)| f(i, chunk))
}

/// Parallel map followed by a sequential, left-to-right fold in input order.
///
/// Because the fold runs on the ordered [`par_map`] output, the reduction is
/// index-deterministic: floating-point accumulation order matches the
/// sequential `items.iter().map(f).fold(init, fold)` exactly.
pub fn par_fold<T, R, A, F, G>(items: &[T], f: F, init: A, fold: G) -> A
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
    G: FnMut(A, R) -> A,
{
    par_map(items, f).into_iter().fold(init, fold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert!(par_map(&[] as &[u32], |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_matches_sequential_map_on_uneven_work() {
        // Work items of wildly different cost must still come back in order.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, |&x| {
            let spin = if x % 7 == 0 { 20_000 } else { 10 };
            let mut acc = x;
            for i in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn par_chunks_covers_every_item_in_order() {
        let items: Vec<u32> = (0..103).collect();
        let sums = par_chunks(&items, 10, |idx, chunk| {
            (idx, chunk.iter().sum::<u32>(), chunk.len())
        });
        assert_eq!(sums.len(), 11);
        for (i, (idx, _, len)) in sums.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*len, if i < 10 { 10 } else { 3 });
        }
        let total: u32 = sums.iter().map(|(_, s, _)| s).sum();
        assert_eq!(total, items.iter().sum::<u32>());
    }

    #[test]
    fn par_fold_is_bitwise_identical_to_sequential_fold() {
        // Floating-point accumulation: the ordered reduction must add in the
        // same order as the sequential fold, so the bits agree exactly.
        let items: Vec<f64> = (0..1000).map(|i| (i as f64) * 0.1 + 1e-9).collect();
        let seq = items.iter().map(|x| x.sin()).fold(0.0f64, |a, b| a + b);
        let par = par_fold(&items, |x| x.sin(), 0.0f64, |a, b| a + b);
        assert_eq!(seq.to_bits(), par.to_bits());
    }

    #[test]
    fn nested_par_map_runs_inline_and_stays_ordered() {
        let outer: Vec<u32> = (0..16).collect();
        let out = par_map(&outer, |&x| {
            let inner: Vec<u32> = (0..8).map(|i| x * 8 + i).collect();
            // This nested call must not spawn (and must still be ordered).
            par_map(&inner, |&y| y + 1)
        });
        for (x, inner) in out.iter().enumerate() {
            let expect: Vec<u32> = (0..8).map(|i| (x as u32) * 8 + i + 1).collect();
            assert_eq!(inner, &expect);
        }
    }

    #[test]
    fn effective_threads_is_bounded() {
        assert_eq!(effective_threads(0), 1);
        assert_eq!(effective_threads(1), 1);
        assert!(effective_threads(1_000_000) >= 1);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..32).collect();
        par_map(&items, |&x| {
            if x == 13 {
                panic!("boom");
            }
            x
        });
    }
}
