//! Adversarial index scheduling for the determinism stress suite.
//!
//! [`crate::par_map`]'s contract is that the caller-visible output never
//! depends on *which* worker computes *which* index in *what* order. A
//! normal run only explores the interleavings the OS scheduler happens to
//! produce — a vanishingly small corner of the possible orderings, and a
//! different corner on every machine. This module turns the claim into a
//! testable property: a [`Schedule`] is a **bijective permutation** of the
//! index space that the worker loop consumes instead of the natural
//! `0..n` order, and [`set_thread_override`] pins the worker count. The
//! stress suite (`vendor/parallel/tests/stress.rs`, driven by
//! `cargo run -p xtask -- stress-parallel`) re-runs every workload under
//! many (schedule × worker-count) combinations and asserts bit-identical
//! outputs against the sequential reference.
//!
//! Both hooks are process-global, so tests that mutate them must run from
//! a single `#[test]` entry point (the stress suite is one test function
//! for exactly this reason). Production code never touches them: the
//! default is [`Schedule::Identity`] unless the [`SCHEDULE_ENV`]
//! environment variable selects another schedule at process start
//! (`identity`, `reverse`, `stride:K`, `shuffle:SEED`), which makes it
//! possible to smoke an arbitrary binary under an adversarial order
//! without recompiling.
//!
//! Permutations are generated from explicit integer seeds with a local
//! splitmix64 — no RNG crate, no entropy source, same order on every
//! platform.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Environment variable selecting the process-default [`Schedule`]:
/// `identity`, `reverse`, `stride:K`, or `shuffle:SEED`. Unset or
/// unparsable values mean [`Schedule::Identity`]. Read once, at the first
/// parallel call.
pub const SCHEDULE_ENV: &str = "P2PDT_SCHEDULE";

/// The order in which a parallel call's workers consume input indices.
///
/// Every variant is a bijection over `0..n`, so each index is still
/// processed exactly once; only the *visitation order* (and therefore the
/// worker→index assignment under work stealing) changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Natural `0, 1, 2, …` order — the production default.
    Identity,
    /// `n-1, n-2, …, 0`: every item meets a maximally different prefix of
    /// completed work.
    Reverse,
    /// Column-major over a virtual `K`-column matrix: `0, K, 2K, …, 1,
    /// K+1, …` — adjacent inputs land on different workers, which is the
    /// adversarial case for any accidental reliance on chunk locality.
    Stride(
        /// Number of interleaved streams (clamped to at least 1).
        usize,
    ),
    /// Seeded Fisher–Yates shuffle (splitmix64): a reproducible
    /// arbitrary permutation; different seeds explore different orders.
    Shuffle(
        /// Shuffle seed — same seed, same permutation, on every platform.
        u64,
    ),
}

impl Schedule {
    /// Parses the [`SCHEDULE_ENV`] syntax: `identity`, `reverse`,
    /// `stride:K`, `shuffle:SEED`.
    pub fn parse(s: &str) -> Option<Schedule> {
        let s = s.trim();
        match s {
            "identity" => return Some(Schedule::Identity),
            "reverse" => return Some(Schedule::Reverse),
            _ => {}
        }
        if let Some(k) = s.strip_prefix("stride:") {
            return k.trim().parse::<usize>().ok().map(Schedule::Stride);
        }
        if let Some(seed) = s.strip_prefix("shuffle:") {
            return seed.trim().parse::<u64>().ok().map(Schedule::Shuffle);
        }
        None
    }

    /// The visitation order for `n` items: `None` means "natural order"
    /// (no permutation array is allocated on the production path), `Some(p)`
    /// is a permutation of `0..n` — slot `s` of the shared counter maps to
    /// input index `p[s]`.
    pub fn order(self, n: usize) -> Option<Vec<usize>> {
        match self {
            Schedule::Identity => None,
            Schedule::Reverse => Some((0..n).rev().collect()),
            Schedule::Stride(k) => {
                let k = k.max(1);
                let mut p: Vec<usize> = (0..n).collect();
                // Column-major visit of the virtual n/k × k layout: stable
                // sort by (column, row) is a bijection for every k, including
                // k = 1 (identity) and k >= n (also identity).
                p.sort_by_key(|&i| (i % k, i / k));
                Some(p)
            }
            Schedule::Shuffle(seed) => {
                let mut p: Vec<usize> = (0..n).collect();
                let mut state = seed;
                for i in (1..n).rev() {
                    let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
                    p.swap(i, j);
                }
                Some(p)
            }
        }
    }
}

/// splitmix64 step — the standard 64-bit mixer, used here only to derive
/// reproducible permutations from explicit seeds.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Explicitly-set schedule, overriding the environment default.
static OVERRIDE: Mutex<Option<Schedule>> = Mutex::new(None);

/// Worker-count override; `0` means "no override".
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// The schedule parsed from [`SCHEDULE_ENV`] at first use.
fn env_default() -> Schedule {
    static ENV: OnceLock<Schedule> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var(SCHEDULE_ENV)
            .ok()
            .and_then(|v| Schedule::parse(&v))
            .unwrap_or(Schedule::Identity)
    })
}

/// Installs `s` as the schedule every subsequent parallel call uses.
/// Process-global — intended for single-threaded test drivers only.
pub fn set_schedule(s: Schedule) {
    *OVERRIDE.lock().expect("schedule lock poisoned") = Some(s);
}

/// The schedule in effect: the last [`set_schedule`] value, else the
/// [`SCHEDULE_ENV`] default, else [`Schedule::Identity`].
pub fn current() -> Schedule {
    OVERRIDE
        .lock()
        .expect("schedule lock poisoned")
        .unwrap_or_else(env_default)
}

/// Forces the worker count of subsequent parallel calls (`None` or
/// `Some(0)` restores the normal cores/[`crate::THREADS_ENV`] logic).
/// Process-global — intended for single-threaded test drivers only.
pub fn set_thread_override(n: Option<usize>) {
    THREADS.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// The active worker-count override, if any.
pub(crate) fn thread_override() -> Option<usize> {
    match THREADS.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_bijection(p: &[usize], n: usize) {
        assert_eq!(p.len(), n);
        let mut seen = vec![false; n];
        for &i in p {
            assert!(i < n, "index {i} out of range {n}");
            assert!(!seen[i], "index {i} visited twice");
            seen[i] = true;
        }
    }

    #[test]
    fn every_schedule_is_a_bijection() {
        let schedules = [
            Schedule::Identity,
            Schedule::Reverse,
            Schedule::Stride(0),
            Schedule::Stride(1),
            Schedule::Stride(3),
            Schedule::Stride(7),
            Schedule::Stride(1000),
            Schedule::Shuffle(0),
            Schedule::Shuffle(42),
            Schedule::Shuffle(u64::MAX),
        ];
        for s in schedules {
            for n in [0usize, 1, 2, 3, 17, 64, 257] {
                match s.order(n) {
                    None => assert_eq!(s, Schedule::Identity),
                    Some(p) => assert_bijection(&p, n),
                }
            }
        }
    }

    #[test]
    fn reverse_and_stride_orders_are_exactly_as_documented() {
        assert_eq!(Schedule::Reverse.order(4), Some(vec![3, 2, 1, 0]));
        // 2-column layout of 0..6: columns are {0,2,4} and {1,3,5}.
        assert_eq!(Schedule::Stride(2).order(6), Some(vec![0, 2, 4, 1, 3, 5]));
        // k >= n degenerates to identity (each item is its own column).
        assert_eq!(Schedule::Stride(9).order(3), Some(vec![0, 1, 2]));
    }

    #[test]
    fn shuffle_is_seed_deterministic_and_seed_sensitive() {
        let a = Schedule::Shuffle(7).order(100).unwrap();
        let b = Schedule::Shuffle(7).order(100).unwrap();
        let c = Schedule::Shuffle(8).order(100).unwrap();
        assert_eq!(a, b, "same seed must give the same permutation");
        assert_ne!(a, c, "different seeds should give different permutations");
        // Pin a few positions so a silent splitmix64 change is caught.
        assert_bijection(&a, 100);
    }

    #[test]
    fn parse_accepts_the_env_syntax() {
        assert_eq!(Schedule::parse("identity"), Some(Schedule::Identity));
        assert_eq!(Schedule::parse(" reverse "), Some(Schedule::Reverse));
        assert_eq!(Schedule::parse("stride:4"), Some(Schedule::Stride(4)));
        assert_eq!(Schedule::parse("shuffle:99"), Some(Schedule::Shuffle(99)));
        assert_eq!(Schedule::parse("stride:x"), None);
        assert_eq!(Schedule::parse("bogus"), None);
        assert_eq!(Schedule::parse(""), None);
    }
}
