//! Offline drop-in subset of the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking API used by this workspace.
//!
//! The build environment has no crates.io access, so the benches in
//! `crates/bench/benches/` run against this shim instead of real criterion.
//! It keeps the same source-level API (`Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `iter`, `iter_batched`,
//! `criterion_group!`, `criterion_main!`) and implements an honest but
//! deliberately small wall-clock runner: a warm-up call followed by
//! `sample_size` timed samples, reporting min / mean / max per benchmark.
//! There is no statistical analysis, outlier rejection, or HTML report —
//! swap back to upstream criterion for publishable numbers.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Applies command-line configuration. The shim accepts and ignores all
    /// flags cargo passes to bench binaries (`--bench`, `--test`, filters).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n# group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside of any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into_benchmark_id().label, 10, None, f);
        self
    }

    /// Prints the final summary (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the amount of work per iteration, echoed in the report line.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_benchmark(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_benchmark(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The per-benchmark timing handle passed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` calls of `routine` after one warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        // Keep shim bench wall time bounded; upstream criterion's adaptive
        // sampling is out of scope here.
        sample_size: sample_size.min(10),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        eprintln!("{label:<60} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().unwrap();
    let max = bencher.samples.iter().max().unwrap();
    let tp = match throughput {
        Some(Throughput::Elements(n)) => format!("  ({n} elems/iter)"),
        Some(Throughput::Bytes(n)) => format!("  ({n} bytes/iter)"),
        None => String::new(),
    };
    eprintln!("{label:<60} min {min:>10.2?}  mean {mean:>10.2?}  max {max:>10.2?}{tp}");
}

/// How `iter_batched` amortizes setup cost (accepted, ignored by the shim).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One fresh input per iteration.
    PerIteration,
}

/// Work-per-iteration declaration for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into [`BenchmarkId`], so `&str` and `String` work directly.
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Defines a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines the bench binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs harness-less bench targets too; keep that a
            // cheap compile-and-link check instead of a full timing run.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures_and_records_samples() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        {
            let mut group = c.benchmark_group("shim");
            group.sample_size(3);
            group.bench_function("counter", |b| b.iter(|| calls += 1));
            group.finish();
        }
        // one warm-up + min(3, 10) samples
        assert_eq!(calls, 4);
    }

    #[test]
    fn bench_with_input_passes_input_through() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("double", 21), &21u32, |b, &n| {
            b.iter(|| assert_eq!(n * 2, 42))
        });
        group.finish();
    }

    #[test]
    fn iter_batched_rebuilds_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
