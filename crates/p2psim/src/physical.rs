//! Physical-network model: per-link latency and bandwidth.
//!
//! P2PDMT "allows setting parameters like physical connection of peers" (§2);
//! this module models the underlay as a full mesh with heterogeneous link
//! latencies (a fixed per-pair base latency drawn deterministically from the
//! peer pair, plus optional jitter) and a per-peer uplink bandwidth that turns
//! message size into transmission delay.

use crate::peer::{mix64, PeerId};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Parameters of the physical network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhysicalConfig {
    /// Minimum one-way propagation latency between two peers, in milliseconds.
    pub min_latency_ms: f64,
    /// Maximum one-way propagation latency between two peers, in milliseconds.
    pub max_latency_ms: f64,
    /// Uplink bandwidth per peer in bytes per second (0 = infinite).
    pub bandwidth_bytes_per_sec: u64,
    /// Seed for the deterministic per-pair latency draw.
    pub seed: u64,
}

impl Default for PhysicalConfig {
    fn default() -> Self {
        Self {
            // Typical wide-area RTTs of 20–300 ms one way ≈ residential peers.
            min_latency_ms: 10.0,
            max_latency_ms: 150.0,
            bandwidth_bytes_per_sec: 1_000_000, // ~8 Mbit/s uplink
            seed: 99,
        }
    }
}

/// Deterministic latency/bandwidth model over a full-mesh underlay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhysicalNetwork {
    config: PhysicalConfig,
}

impl PhysicalNetwork {
    /// Creates a physical network with the given configuration.
    pub fn new(config: PhysicalConfig) -> Self {
        assert!(
            config.max_latency_ms >= config.min_latency_ms,
            "max latency must not be below min latency"
        );
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PhysicalConfig {
        &self.config
    }

    /// One-way propagation latency between two peers.
    ///
    /// Symmetric (`latency(a, b) == latency(b, a)`) and deterministic for a
    /// given seed, so repeated runs of an experiment see the same underlay.
    pub fn latency(&self, a: PeerId, b: PeerId) -> SimTime {
        if a == b {
            return SimTime::ZERO;
        }
        let (lo, hi) = (a.0.min(b.0), a.0.max(b.0));
        let h = mix64(self.config.seed ^ mix64(lo).wrapping_add(mix64(hi).rotate_left(17)));
        let frac = (h >> 11) as f64 / (1u64 << 53) as f64; // uniform in [0,1)
        let ms = self.config.min_latency_ms
            + frac * (self.config.max_latency_ms - self.config.min_latency_ms);
        SimTime::from_secs_f64(ms / 1e3)
    }

    /// Transmission delay for `size_bytes` on the sender's uplink.
    pub fn transmission_delay(&self, size_bytes: usize) -> SimTime {
        if self.config.bandwidth_bytes_per_sec == 0 {
            return SimTime::ZERO;
        }
        SimTime::from_secs_f64(size_bytes as f64 / self.config.bandwidth_bytes_per_sec as f64)
    }

    /// Total one-way delivery delay for a message of `size_bytes` from `a` to `b`.
    pub fn delivery_delay(&self, a: PeerId, b: PeerId, size_bytes: usize) -> SimTime {
        self.latency(a, b) + self.transmission_delay(size_bytes)
    }
}

impl Default for PhysicalNetwork {
    fn default() -> Self {
        Self::new(PhysicalConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_symmetric_and_deterministic() {
        let net = PhysicalNetwork::default();
        let a = PeerId(3);
        let b = PeerId(9);
        assert_eq!(net.latency(a, b), net.latency(b, a));
        assert_eq!(net.latency(a, b), net.latency(a, b));
    }

    #[test]
    fn latency_respects_bounds() {
        let net = PhysicalNetwork::new(PhysicalConfig {
            min_latency_ms: 5.0,
            max_latency_ms: 50.0,
            ..Default::default()
        });
        for i in 0..50u64 {
            for j in (i + 1)..50u64 {
                let l = net.latency(PeerId(i), PeerId(j)).as_secs_f64() * 1e3;
                assert!((5.0..=50.0).contains(&l), "latency {l} out of bounds");
            }
        }
    }

    #[test]
    fn self_latency_is_zero() {
        let net = PhysicalNetwork::default();
        assert_eq!(net.latency(PeerId(4), PeerId(4)), SimTime::ZERO);
    }

    #[test]
    fn transmission_delay_scales_with_size() {
        let net = PhysicalNetwork::new(PhysicalConfig {
            bandwidth_bytes_per_sec: 1_000,
            ..Default::default()
        });
        assert_eq!(net.transmission_delay(1_000), SimTime::from_secs(1));
        assert_eq!(net.transmission_delay(500), SimTime::from_millis(500));
    }

    #[test]
    fn infinite_bandwidth_has_no_transmission_delay() {
        let net = PhysicalNetwork::new(PhysicalConfig {
            bandwidth_bytes_per_sec: 0,
            ..Default::default()
        });
        assert_eq!(net.transmission_delay(1 << 30), SimTime::ZERO);
    }

    #[test]
    fn delivery_delay_combines_both_components() {
        let net = PhysicalNetwork::new(PhysicalConfig {
            min_latency_ms: 10.0,
            max_latency_ms: 10.0,
            bandwidth_bytes_per_sec: 1_000,
            seed: 1,
        });
        let d = net.delivery_delay(PeerId(0), PeerId(1), 1_000);
        assert_eq!(d, SimTime::from_millis(1_010));
    }

    #[test]
    #[should_panic(expected = "max latency")]
    fn invalid_config_panics() {
        PhysicalNetwork::new(PhysicalConfig {
            min_latency_ms: 10.0,
            max_latency_ms: 5.0,
            ..Default::default()
        });
    }
}
