//! Deterministic fault injection: message loss, burst loss, latency spikes,
//! frame corruption, partitions and crash-restarts.
//!
//! The polite simulator drops a message only when its target is offline;
//! every real P2P deployment also lives with lossy links, congestion bursts,
//! bisected networks and processes that die mid-protocol. A [`FaultPlan`]
//! describes those hazards declaratively; a [`FaultState`] executes it from
//! its **own** seeded RNG stream, so
//!
//! * replays are bit-identical (same seed ⇒ same faults at the same sends),
//! * enabling faults never perturbs the protocol/overlay RNG streams, and
//! * a fully disabled plan (the default) consumes **zero** RNG draws and
//!   takes an early-return path — runs with `FaultPlan::default()` are
//!   bit-identical to runs built before this module existed.
//!
//! Partition windows are purely schedule-driven (no randomness at all):
//! a window names a time span and a peer-set bisection, either by raw index
//! or — overlay-aware — by DHT ring key, so a chord network can be split at
//! a ring pivot exactly like a real backbone cut would.
//!
//! Crash-restarts are distinct from churn: a churned peer leaves gracefully
//! and returns with its state intact, while a crashed peer stays online but
//! loses its in-memory protocol state and must recover (see the
//! `p2pclassify` anti-entropy layer). The fault layer only *schedules*
//! crashes; wiping state is the protocol layer's job.

use crate::peer::PeerId;
use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Salt xored into the simulation seed so the fault stream is independent of
/// every other consumer of the seed (overlay, churn, protocols).
const FAULT_SEED_SALT: u64 = 0xF_A170_CA5C;

/// Gilbert–Elliott two-state burst-loss channel: the link oscillates between
/// a good state (no extra loss) and a bad state dropping `loss` of messages.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstLoss {
    /// Per-send probability of entering the bad state from the good state.
    pub enter: f64,
    /// Per-send probability of leaving the bad state back to good.
    pub exit: f64,
    /// Loss probability while in the bad state.
    pub loss: f64,
}

/// Latency degradation: occasional spikes plus uniform jitter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyFaults {
    /// Per-send probability of a latency spike.
    pub spike_probability: f64,
    /// Extra one-way delay added by a spike, in milliseconds.
    pub spike_ms: f64,
    /// Uniform jitter in `[0, jitter_ms)` added to every delivery.
    pub jitter_ms: f64,
}

/// Bit-level frame damage applied to delivered byte frames.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorruptionFaults {
    /// Per-frame probability of corruption.
    pub probability: f64,
    /// Given corruption, probability the frame is truncated instead of
    /// bit-flipped.
    pub truncation: f64,
}

/// How a partition window splits the peer set in two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionScope {
    /// Peers with index `< pivot` on one side, the rest on the other.
    Index {
        /// First peer index of the second side.
        pivot: usize,
    },
    /// Overlay-aware bisection: peers whose DHT ring key is `< pivot_key` on
    /// one side — a cut through the chord ring rather than the id space.
    Ring {
        /// First ring key of the second side.
        pivot_key: u64,
    },
}

impl PartitionScope {
    /// Which side of the bisection `peer` falls on.
    pub fn side(&self, peer: PeerId) -> bool {
        match *self {
            PartitionScope::Index { pivot } => peer.index() < pivot,
            PartitionScope::Ring { pivot_key } => peer.ring_key() < pivot_key,
        }
    }
}

/// A network partition over a closed-open time window `[start, end)`:
/// messages crossing the bisection during the window are dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionWindow {
    /// Window start, in simulated seconds.
    pub start_secs: u64,
    /// Window end (heal time), in simulated seconds.
    pub end_secs: u64,
    /// The bisection.
    pub scope: PartitionScope,
}

impl PartitionWindow {
    /// Whether the window is active at `now`.
    pub fn active_at(&self, now: SimTime) -> bool {
        let s = now.as_secs_f64();
        s >= self.start_secs as f64 && s < self.end_secs as f64
    }

    /// Whether `from → to` crosses the bisection.
    pub fn severs(&self, from: PeerId, to: PeerId) -> bool {
        self.scope.side(from) != self.scope.side(to)
    }
}

/// Crash-restart schedule: exponential inter-arrival times with a bound on
/// the total number of crashes (so a long horizon cannot melt the network).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashSchedule {
    /// Mean seconds between crash events.
    pub mean_interval_secs: f64,
    /// Maximum number of crash events over the whole run.
    pub max_crashes: u64,
}

/// A declarative fault scenario. The default is **everything off** — and a
/// disabled plan is guaranteed RNG-neutral, so it cannot perturb a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Independent per-send loss probability (0.0 = off).
    pub loss: f64,
    /// Gilbert–Elliott burst-loss channel.
    pub burst: Option<BurstLoss>,
    /// Latency spikes and jitter.
    pub latency: Option<LatencyFaults>,
    /// Frame corruption (applies to byte-frame sends only).
    pub corruption: Option<CorruptionFaults>,
    /// Scheduled partition windows (deterministic, no RNG draws).
    pub partitions: Vec<PartitionWindow>,
    /// Crash-restart schedule.
    pub crashes: Option<CrashSchedule>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            loss: 0.0,
            burst: None,
            latency: None,
            corruption: None,
            partitions: Vec::new(),
            crashes: None,
        }
    }
}

impl FaultPlan {
    /// Whether any knob is enabled. A plan that is not active takes the
    /// early-return path on every hook and consumes no randomness.
    pub fn is_active(&self) -> bool {
        self.loss > 0.0
            || self.burst.is_some()
            || self.latency.is_some()
            || self.corruption.is_some()
            || !self.partitions.is_empty()
            || self.crashes.is_some()
    }

    /// A moderate all-hazards plan used by tests and the chaos bench grid.
    pub fn chaos(loss: f64, partition: Option<PartitionWindow>, crashes: bool) -> Self {
        Self {
            loss,
            burst: (loss > 0.0).then_some(BurstLoss {
                enter: 0.05,
                exit: 0.5,
                loss: (3.0 * loss).min(0.9),
            }),
            latency: Some(LatencyFaults {
                spike_probability: 0.02,
                spike_ms: 400.0,
                jitter_ms: 5.0,
            }),
            corruption: (loss > 0.0).then_some(CorruptionFaults {
                probability: loss / 4.0,
                truncation: 0.3,
            }),
            partitions: partition.into_iter().collect(),
            crashes: crashes.then_some(CrashSchedule {
                mean_interval_secs: 600.0,
                max_crashes: 8,
            }),
        }
    }
}

/// Why the fault layer dropped a send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDrop {
    /// Independent (or burst-state) random loss.
    Loss {
        /// Whether the Gilbert–Elliott chain was in its bad state.
        burst: bool,
    },
    /// The send crossed an active partition bisection.
    Partitioned,
}

/// The fault layer's verdict on one send.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SendFault {
    /// Deliver, with extra delay from spikes/jitter (zero when latency
    /// faults are off).
    Deliver {
        /// Additional one-way delay.
        extra_latency: SimTime,
        /// Whether a latency spike fired (for stats).
        spiked: bool,
    },
    /// Drop the message.
    Drop(FaultDrop),
}

/// Executes a [`FaultPlan`] from a dedicated seeded RNG stream.
#[derive(Debug, Clone)]
pub struct FaultState {
    plan: FaultPlan,
    rng: StdRng,
    /// Gilbert–Elliott chain state: `true` = bad (bursting).
    burst_bad: bool,
    /// Next scheduled crash time (lazily drawn).
    next_crash: Option<SimTime>,
    crashes_emitted: u64,
}

impl FaultState {
    /// Builds the executor for `plan`, deriving its RNG from the simulation
    /// seed (salted, so it is independent of every other seed consumer).
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        Self {
            plan,
            rng: StdRng::seed_from_u64(seed ^ FAULT_SEED_SALT),
            burst_bad: false,
            next_crash: None,
            crashes_emitted: 0,
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether any fault knob is enabled.
    pub fn is_active(&self) -> bool {
        self.plan.is_active()
    }

    /// Adjudicates one send at time `now`. Partition checks draw no
    /// randomness; loss/burst/latency draw from the fault stream in a fixed
    /// order so replays agree.
    pub fn on_send(&mut self, now: SimTime, from: PeerId, to: PeerId) -> SendFault {
        if !self.plan.is_active() {
            return SendFault::Deliver {
                extra_latency: SimTime::ZERO,
                spiked: false,
            };
        }
        for w in &self.plan.partitions {
            if w.active_at(now) && w.severs(from, to) {
                return SendFault::Drop(FaultDrop::Partitioned);
            }
        }
        if let Some(b) = self.plan.burst {
            // Advance the chain once per send, then apply the state's loss.
            let flip = if self.burst_bad { b.exit } else { b.enter };
            if self.rng.gen_bool(flip.clamp(0.0, 1.0)) {
                self.burst_bad = !self.burst_bad;
            }
            if self.burst_bad && self.rng.gen_bool(b.loss.clamp(0.0, 1.0)) {
                return SendFault::Drop(FaultDrop::Loss { burst: true });
            }
        }
        if self.plan.loss > 0.0 && self.rng.gen_bool(self.plan.loss.clamp(0.0, 1.0)) {
            return SendFault::Drop(FaultDrop::Loss { burst: false });
        }
        let mut extra_ms = 0.0;
        let mut spiked = false;
        if let Some(l) = self.plan.latency {
            if l.spike_probability > 0.0 && self.rng.gen_bool(l.spike_probability.clamp(0.0, 1.0)) {
                extra_ms += l.spike_ms.max(0.0);
                spiked = true;
            }
            if l.jitter_ms > 0.0 {
                extra_ms += self.rng.gen_unit_f64() * l.jitter_ms;
            }
        }
        SendFault::Deliver {
            extra_latency: SimTime::from_secs_f64(extra_ms / 1e3),
            spiked,
        }
    }

    /// Possibly damages a delivered byte frame. `None` means intact;
    /// `Some((bytes, truncated))` is the frame as the receiver sees it.
    /// Damage is guaranteed to change the bytes (a "corruption" that leaves
    /// the frame identical would silently under-count).
    pub fn corrupt_frame(&mut self, frame: &[u8]) -> Option<(Vec<u8>, bool)> {
        let c = self.plan.corruption?;
        if frame.is_empty() || c.probability <= 0.0 {
            return None;
        }
        if !self.rng.gen_bool(c.probability.clamp(0.0, 1.0)) {
            return None;
        }
        if self.rng.gen_bool(c.truncation.clamp(0.0, 1.0)) {
            let keep = self.rng.gen_range(0..frame.len());
            Some((frame[..keep].to_vec(), true))
        } else {
            let mut out = frame.to_vec();
            let flips = self.rng.gen_range(1..=3usize);
            let mut done: [usize; 3] = [usize::MAX; 3];
            let mut n = 0;
            while n < flips {
                // Distinct bit positions, so flips can never cancel out and
                // restore the original frame.
                let bit = self.rng.gen_range(0..out.len() * 8);
                if done[..n].contains(&bit) {
                    continue;
                }
                done[n] = bit;
                n += 1;
                out[bit / 8] ^= 1 << (bit % 8);
            }
            Some((out, false))
        }
    }

    /// Emits every crash event scheduled in `(from, to]` into `out`.
    /// Victims are drawn uniformly over the peer set; the caller decides
    /// what a crash of an offline peer means (typically a no-op).
    pub fn crashes_between(
        &mut self,
        from: SimTime,
        to: SimTime,
        num_peers: usize,
        out: &mut Vec<PeerId>,
    ) {
        let Some(c) = self.plan.crashes else {
            return;
        };
        if num_peers == 0 || c.mean_interval_secs <= 0.0 {
            return;
        }
        if self.next_crash.is_none() {
            let gap = self.draw_exponential(c.mean_interval_secs);
            self.next_crash = Some(from + gap);
        }
        while self.crashes_emitted < c.max_crashes {
            let at = self.next_crash.expect("initialized above");
            if at > to {
                break;
            }
            out.push(PeerId::from(self.rng.gen_range(0..num_peers)));
            self.crashes_emitted += 1;
            let gap = self.draw_exponential(c.mean_interval_secs);
            self.next_crash = Some(at + gap);
        }
    }

    /// Partition windows that healed (ended) in `(from, to]`.
    pub fn healed_between(&self, from: SimTime, to: SimTime) -> Vec<PartitionWindow> {
        self.plan
            .partitions
            .iter()
            .filter(|w| {
                let end = w.end_secs as f64;
                end > from.as_secs_f64() && end <= to.as_secs_f64()
            })
            .copied()
            .collect()
    }

    /// Exponential draw with the given mean, as a [`SimTime`] gap of at
    /// least one millisecond (so schedules always advance).
    fn draw_exponential(&mut self, mean_secs: f64) -> SimTime {
        let u = self.rng.gen_unit_f64();
        let secs = -mean_secs * (1.0_f64 - u).max(f64::MIN_POSITIVE).ln();
        SimTime::from_secs_f64(secs.max(1e-3))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    fn active_plan() -> FaultPlan {
        FaultPlan {
            loss: 0.2,
            burst: Some(BurstLoss {
                enter: 0.1,
                exit: 0.4,
                loss: 0.8,
            }),
            latency: Some(LatencyFaults {
                spike_probability: 0.1,
                spike_ms: 200.0,
                jitter_ms: 10.0,
            }),
            corruption: Some(CorruptionFaults {
                probability: 0.5,
                truncation: 0.4,
            }),
            partitions: vec![PartitionWindow {
                start_secs: 100,
                end_secs: 200,
                scope: PartitionScope::Index { pivot: 4 },
            }],
            crashes: Some(CrashSchedule {
                mean_interval_secs: 50.0,
                max_crashes: 5,
            }),
        }
    }

    #[test]
    fn default_plan_is_inactive() {
        assert!(!FaultPlan::default().is_active());
        assert!(active_plan().is_active());
    }

    #[test]
    fn disabled_plan_draws_no_randomness() {
        let mut a = FaultState::new(FaultPlan::default(), 7);
        let mut b = StdRng::seed_from_u64(7 ^ FAULT_SEED_SALT);
        for i in 0..100usize {
            let v = a.on_send(SimTime::from_secs(i as u64), PeerId(0), PeerId(1));
            assert_eq!(
                v,
                SendFault::Deliver {
                    extra_latency: SimTime::ZERO,
                    spiked: false
                }
            );
            assert!(a.corrupt_frame(&[1, 2, 3]).is_none());
            let mut crashed = Vec::new();
            a.crashes_between(SimTime::ZERO, SimTime::from_secs(3_600), 10, &mut crashed);
            assert!(crashed.is_empty());
        }
        // The internal stream was never advanced.
        assert_eq!(a.rng.next_u64(), b.next_u64());
    }

    #[test]
    fn replays_are_bit_identical() {
        let run = || {
            let mut s = FaultState::new(active_plan(), 42);
            let mut verdicts = Vec::new();
            let mut crashed = Vec::new();
            for i in 0..500u64 {
                let now = SimTime::from_millis(i * 500);
                verdicts.push(s.on_send(now, PeerId(i % 8), PeerId((i + 3) % 8)));
                if let Some((bytes, trunc)) = s.corrupt_frame(&[0xD7, 1, 2, 3, 4, 5, 6, 7]) {
                    verdicts.push(SendFault::Deliver {
                        extra_latency: SimTime::from_millis(bytes.len() as u64),
                        spiked: trunc,
                    });
                }
            }
            s.crashes_between(SimTime::ZERO, SimTime::from_secs(3_600), 8, &mut crashed);
            (verdicts, crashed)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn partition_severs_only_cross_side_sends_during_window() {
        let mut s = FaultState::new(
            FaultPlan {
                partitions: vec![PartitionWindow {
                    start_secs: 10,
                    end_secs: 20,
                    scope: PartitionScope::Index { pivot: 4 },
                }],
                ..FaultPlan::default()
            },
            1,
        );
        let during = SimTime::from_secs(15);
        let after = SimTime::from_secs(25);
        assert_eq!(
            s.on_send(during, PeerId(0), PeerId(5)),
            SendFault::Drop(FaultDrop::Partitioned)
        );
        // Same side: unaffected.
        assert!(matches!(
            s.on_send(during, PeerId(0), PeerId(1)),
            SendFault::Deliver { .. }
        ));
        // Healed: unaffected.
        assert!(matches!(
            s.on_send(after, PeerId(0), PeerId(5)),
            SendFault::Deliver { .. }
        ));
    }

    #[test]
    fn ring_scope_is_overlay_aware() {
        let scope = PartitionScope::Ring {
            pivot_key: u64::MAX / 2,
        };
        let mut low = 0;
        for i in 0..64u64 {
            if scope.side(PeerId(i)) {
                low += 1;
            }
        }
        // Ring keys are well spread, so the bisection is non-trivial.
        assert!(low > 8 && low < 56, "ring bisection degenerate: {low}/64");
    }

    #[test]
    fn corruption_always_changes_the_frame() {
        let mut s = FaultState::new(
            FaultPlan {
                corruption: Some(CorruptionFaults {
                    probability: 1.0,
                    truncation: 0.5,
                }),
                ..FaultPlan::default()
            },
            3,
        );
        let frame = vec![0xD7u8, 1, 3, 9, 9, 9, 9, 9];
        for _ in 0..200 {
            let (damaged, truncated) = s.corrupt_frame(&frame).expect("probability 1.0");
            assert_ne!(damaged, frame, "corruption must change the bytes");
            if truncated {
                assert!(damaged.len() < frame.len());
            } else {
                assert_eq!(damaged.len(), frame.len());
            }
        }
        assert!(s.corrupt_frame(&[]).is_none(), "empty frames are immune");
    }

    #[test]
    fn crash_schedule_respects_bound_and_window() {
        let mut s = FaultState::new(active_plan(), 9);
        let mut all = Vec::new();
        // Sweep in small increments: events land in exactly one window.
        let mut prev = SimTime::ZERO;
        for step in 1..=360u64 {
            let now = SimTime::from_secs(step * 10);
            let before = all.len();
            s.crashes_between(prev, now, 16, &mut all);
            let _ = before;
            prev = now;
        }
        assert!(all.len() <= 5, "max_crashes exceeded: {}", all.len());
        assert!(
            !all.is_empty(),
            "mean 50s over an hour should crash someone"
        );
        assert!(all.iter().all(|p| p.index() < 16));
    }

    #[test]
    fn healed_between_reports_window_ends_once() {
        let s = FaultState::new(active_plan(), 2);
        assert!(s
            .healed_between(SimTime::ZERO, SimTime::from_secs(150))
            .is_empty());
        let healed = s.healed_between(SimTime::from_secs(150), SimTime::from_secs(250));
        assert_eq!(healed.len(), 1);
        assert_eq!(healed[0].end_secs, 200);
        assert!(s
            .healed_between(SimTime::from_secs(250), SimTime::from_secs(350))
            .is_empty());
    }
}
