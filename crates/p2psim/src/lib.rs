//! # p2psim — P2PDMT, the P2P data-mining simulation toolkit
//!
//! The paper introduces P2PDMT, "a realistic and flexible simulation toolkit
//! to facilitate the development and testing of P2P data mining algorithms",
//! built on top of the OverSim overlay simulator. Reproducing it from scratch,
//! this crate provides the features of Figure 2:
//!
//! * **P2P network layer** — generation of structured (Chord-style DHT,
//!   [`overlay::ChordOverlay`]) and unstructured (random-graph gossip,
//!   [`overlay::UnstructuredOverlay`]) overlays, plus deterministic super-peer
//!   election over the DHT ([`overlay::SuperPeerDirectory`]).
//! * **Physical network layer** — configurable per-link latency and bandwidth
//!   ([`physical::PhysicalNetwork`]), node failures and churn models
//!   ([`churn`]).
//! * **Data-mining layer** — distributing training data over peers with
//!   configurable size and class distributions ([`datadist`]), activity
//!   logging ([`logging::ActivityLog`]) and statistics collection
//!   ([`stats::SimStats`]).
//!
//! Two execution styles are offered:
//!
//! * a **discrete-event engine** ([`engine::Engine`]) where node behaviours
//!   implement [`engine::Application`] and react to messages and timers — used
//!   for protocol-level experiments (routing, lookup latency, churn dynamics);
//! * a **round-based network facade** ([`network::P2PNetwork`]) that exposes
//!   `send` / `dht_lookup` / `broadcast` primitives with full cost accounting —
//!   this is the substrate the P2P classification protocols (CEMPaR, PACE) run
//!   on, mirroring how the original P2PDMT hosts data-mining tasks.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bitset;
pub mod churn;
pub mod config;
pub mod datadist;
pub mod engine;
pub mod faults;
pub mod logging;
pub mod message;
pub mod network;
pub mod overlay;
pub mod peer;
pub mod physical;
pub mod stats;
pub mod time;

/// Common re-exports.
pub mod prelude {
    pub use crate::bitset::PeerBitset;
    pub use crate::churn::{ChurnEvent, ChurnModel, ChurnTimeline};
    pub use crate::config::{OverlayKind, SimConfig};
    pub use crate::datadist::{ClassDistribution, DataDistributor, SizeDistribution};
    pub use crate::engine::{Application, Context, Engine};
    pub use crate::faults::{
        BurstLoss, CorruptionFaults, CrashSchedule, FaultPlan, FaultState, LatencyFaults,
        PartitionScope, PartitionWindow,
    };
    pub use crate::logging::{ActivityLog, LogEntry};
    pub use crate::message::{Envelope, MessageKind};
    pub use crate::network::{DeliveryError, FrameDelivery, P2PNetwork};
    pub use crate::overlay::{ChordOverlay, Overlay, SuperPeerDirectory, UnstructuredOverlay};
    pub use crate::peer::PeerId;
    pub use crate::physical::PhysicalNetwork;
    pub use crate::stats::SimStats;
    pub use crate::time::SimTime;
}

pub use bitset::PeerBitset;
pub use config::{OverlayKind, SimConfig};
pub use faults::{FaultPlan, FaultState, PartitionScope, PartitionWindow};
pub use network::P2PNetwork;
pub use peer::PeerId;
pub use stats::SimStats;
pub use time::SimTime;
