//! Simulation configuration.
//!
//! Mirrors the parameter surface the paper lists for P2PDMT: "physical
//! connection of peers, total number of peers in the network, churn model(s),
//! P2P overlay network, … frequency and timings of evaluations" (§2).

use crate::churn::ChurnModel;
use crate::faults::FaultPlan;
use crate::overlay::UnstructuredOverlay;
use crate::overlay::{AnyOverlay, ChordOverlay};
use crate::physical::PhysicalConfig;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Which overlay family to generate.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum OverlayKind {
    /// Structured, DHT-based (Chord-style) overlay.
    #[default]
    Chord,
    /// Unstructured random graph with flooding search.
    Unstructured {
        /// Neighbours per peer.
        degree: usize,
        /// Flooding TTL.
        ttl: usize,
    },
}

/// Full configuration of a simulated P2P environment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Total number of peers in the network.
    pub num_peers: usize,
    /// Overlay family.
    pub overlay: OverlayKind,
    /// Physical-network (underlay) parameters.
    pub physical: PhysicalConfig,
    /// Churn model.
    pub churn: ChurnModel,
    /// Simulation horizon in seconds (used to pre-compute the churn timeline).
    pub horizon_secs: u64,
    /// Master RNG seed.
    pub seed: u64,
    /// Fault-injection scenario. The default plan is fully disabled and
    /// RNG-neutral: it changes nothing about a run.
    pub faults: FaultPlan,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            // The demo runs "DHT-based P2P network with more than 500 peers".
            num_peers: 512,
            overlay: OverlayKind::Chord,
            physical: PhysicalConfig::default(),
            churn: ChurnModel::None,
            horizon_secs: 3_600,
            seed: 2010,
            faults: FaultPlan::default(),
        }
    }
}

impl SimConfig {
    /// Convenience constructor for a network of `num_peers` with defaults.
    pub fn with_peers(num_peers: usize) -> Self {
        Self {
            num_peers,
            ..Self::default()
        }
    }

    /// The simulation horizon as a [`SimTime`].
    pub fn horizon(&self) -> SimTime {
        SimTime::from_secs(self.horizon_secs)
    }

    /// Builds the configured overlay over all peers.
    pub fn build_overlay(&self) -> AnyOverlay {
        let peers = (0..self.num_peers as u64).map(crate::peer::PeerId);
        match self.overlay {
            OverlayKind::Chord => AnyOverlay::Chord(ChordOverlay::with_peers(peers)),
            OverlayKind::Unstructured { degree, ttl } => {
                AnyOverlay::Unstructured(UnstructuredOverlay::with_peers(
                    crate::overlay::UnstructuredConfig {
                        degree,
                        ttl,
                        seed: self.seed,
                    },
                    peers,
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlay::Overlay;

    #[test]
    fn default_matches_demo_scale() {
        let c = SimConfig::default();
        assert!(c.num_peers > 500, "demo uses more than 500 peers");
        assert_eq!(c.overlay, OverlayKind::Chord);
    }

    #[test]
    fn builds_requested_overlay() {
        let chord = SimConfig::with_peers(32).build_overlay();
        assert_eq!(chord.len(), 32);
        assert!(matches!(chord, AnyOverlay::Chord(_)));

        let unstructured = SimConfig {
            num_peers: 16,
            overlay: OverlayKind::Unstructured { degree: 4, ttl: 3 },
            ..Default::default()
        }
        .build_overlay();
        assert_eq!(unstructured.len(), 16);
        assert!(matches!(unstructured, AnyOverlay::Unstructured(_)));
    }

    #[test]
    fn horizon_conversion() {
        let c = SimConfig {
            horizon_secs: 60,
            ..Default::default()
        };
        assert_eq!(c.horizon(), SimTime::from_secs(60));
    }
}
