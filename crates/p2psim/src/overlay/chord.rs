//! Chord-style structured DHT overlay.
//!
//! Peers are placed on a 64-bit identifier ring at [`PeerId::ring_key`]; the
//! peer responsible for a key is the key's *successor* (first peer clockwise).
//! Routing is greedy finger routing: at each hop the current peer forwards to
//! the finger that most closely precedes the key, giving `O(log N)` hops.

use super::{LookupResult, Overlay};
use crate::peer::PeerId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Number of finger entries (the full 64-bit ring is covered with 64 fingers,
/// but beyond ~40 the targets wrap for realistic network sizes; we keep 64 for
/// faithfulness).
const FINGER_BITS: u32 = 64;

/// A Chord-like DHT over the peers' ring keys.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ChordOverlay {
    /// Ring position → peer, kept sorted by the BTreeMap.
    ring: BTreeMap<u64, PeerId>,
    /// Reverse map for membership checks.
    keys: BTreeMap<PeerId, u64>,
}

impl ChordOverlay {
    /// Creates an empty overlay.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an overlay containing `peers`.
    pub fn with_peers<I: IntoIterator<Item = PeerId>>(peers: I) -> Self {
        let mut o = Self::new();
        for p in peers {
            o.add_peer(p);
        }
        o
    }

    /// The peer responsible for `key` (its successor on the ring).
    pub fn owner_of(&self, key: u64) -> Option<PeerId> {
        if self.ring.is_empty() {
            return None;
        }
        self.ring
            .range(key..)
            .next()
            .or_else(|| self.ring.iter().next())
            .map(|(_, &p)| p)
    }

    /// The ring key of a member peer.
    pub fn ring_key_of(&self, peer: PeerId) -> Option<u64> {
        self.keys.get(&peer).copied()
    }

    /// The successor of a member peer on the ring.
    pub fn successor(&self, peer: PeerId) -> Option<PeerId> {
        let key = self.ring_key_of(peer)?;
        self.ring
            .range(key.wrapping_add(1)..)
            .next()
            .or_else(|| self.ring.iter().next())
            .map(|(_, &p)| p)
    }

    /// The finger table of a member peer: for each finger `i`, the peer
    /// responsible for `key + 2^i`. Duplicate entries are collapsed.
    pub fn finger_table(&self, peer: PeerId) -> Vec<PeerId> {
        let Some(key) = self.ring_key_of(peer) else {
            return Vec::new();
        };
        let mut fingers = Vec::new();
        for i in 0..FINGER_BITS {
            let target = key.wrapping_add(1u64.wrapping_shl(i));
            if let Some(owner) = self.owner_of(target) {
                if owner != peer && fingers.last() != Some(&owner) {
                    fingers.push(owner);
                }
            }
        }
        fingers.dedup();
        fingers
    }

    /// True when `x` lies on the clockwise arc `(a, b]` of the ring.
    fn in_arc(a: u64, b: u64, x: u64) -> bool {
        if a < b {
            x > a && x <= b
        } else if a > b {
            x > a || x <= b
        } else {
            // a == b: the arc covers the whole ring.
            true
        }
    }
}

impl Overlay for ChordOverlay {
    fn members(&self) -> Vec<PeerId> {
        self.keys.keys().copied().collect()
    }

    fn contains(&self, peer: PeerId) -> bool {
        self.keys.contains_key(&peer)
    }

    fn len(&self) -> usize {
        self.keys.len()
    }

    fn lookup(&self, from: PeerId, key: u64) -> Option<LookupResult> {
        if !self.contains(from) || self.ring.is_empty() {
            return None;
        }
        let owner = self.owner_of(key)?;
        let mut path = Vec::new();
        let mut current = from;
        // Greedy finger routing; bounded by the ring size to guarantee
        // termination even in degenerate cases.
        for _ in 0..=self.len() {
            if current == owner {
                break;
            }
            let cur_key = self.ring_key_of(current)?;
            // If the key lies between us and our successor, the successor owns it.
            let succ = self.successor(current)?;
            let succ_key = self.ring_key_of(succ)?;
            if Self::in_arc(cur_key, succ_key, key) {
                path.push(succ);
                current = succ;
                continue;
            }
            // Otherwise forward to the closest preceding finger.
            let fingers = self.finger_table(current);
            let mut next = succ;
            let mut best_dist = key.wrapping_sub(self.ring_key_of(succ)?);
            for f in fingers {
                let fk = self.ring_key_of(f)?;
                // Distance from finger to key going clockwise; smaller = closer
                // predecessor of the key.
                let dist = key.wrapping_sub(fk);
                if dist < best_dist && f != current {
                    best_dist = dist;
                    next = f;
                }
            }
            if next == current {
                next = succ;
            }
            path.push(next);
            current = next;
        }
        if current != owner {
            return None;
        }
        if path.is_empty() {
            // The source itself owns the key.
            path.push(owner);
        }
        let messages = path.len();
        Some(LookupResult {
            owner,
            path,
            messages,
        })
    }

    fn neighbors(&self, peer: PeerId) -> Vec<PeerId> {
        let mut n = self.finger_table(peer);
        if let Some(succ) = self.successor(peer) {
            if succ != peer && !n.contains(&succ) {
                n.push(succ);
            }
        }
        n
    }

    fn add_peer(&mut self, peer: PeerId) {
        let key = peer.ring_key();
        self.ring.insert(key, peer);
        self.keys.insert(peer, key);
    }

    fn remove_peer(&mut self, peer: PeerId) {
        if let Some(key) = self.keys.remove(&peer) {
            self.ring.remove(&key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peer::mix64;

    fn overlay(n: u64) -> ChordOverlay {
        ChordOverlay::with_peers((0..n).map(PeerId))
    }

    /// Brute-force owner: the member with the smallest ring key ≥ key, else the
    /// globally smallest ring key.
    fn brute_force_owner(o: &ChordOverlay, key: u64) -> PeerId {
        let mut members: Vec<(u64, PeerId)> = o
            .members()
            .into_iter()
            .map(|p| (o.ring_key_of(p).unwrap(), p))
            .collect();
        members.sort_unstable();
        members
            .iter()
            .find(|&&(k, _)| k >= key)
            .or_else(|| members.first())
            .map(|&(_, p)| p)
            .unwrap()
    }

    #[test]
    fn owner_matches_brute_force() {
        let o = overlay(64);
        for i in 0..500u64 {
            let key = mix64(i);
            assert_eq!(
                o.owner_of(key),
                Some(brute_force_owner(&o, key)),
                "key {key}"
            );
        }
    }

    #[test]
    fn lookup_finds_the_owner_from_any_source() {
        let o = overlay(128);
        for i in 0..200u64 {
            let key = mix64(i * 7 + 1);
            let from = PeerId(i % 128);
            let r = o.lookup(from, key).expect("lookup succeeds");
            assert_eq!(Some(r.owner), o.owner_of(key));
            assert_eq!(*r.path.last().unwrap(), r.owner);
        }
    }

    #[test]
    fn lookup_hops_are_logarithmic() {
        let o = overlay(512);
        let mut total_hops = 0usize;
        let n_lookups = 300;
        for i in 0..n_lookups as u64 {
            let key = mix64(i + 9_999);
            let from = PeerId(mix64(i) % 512);
            total_hops += o.lookup(from, key).unwrap().hops();
        }
        let mean = total_hops as f64 / n_lookups as f64;
        // log2(512) = 9; greedy finger routing should average well below that
        // and must not degenerate towards O(N).
        assert!(mean < 12.0, "mean hops {mean}");
        assert!(mean >= 1.0);
    }

    #[test]
    fn lookup_from_owner_is_single_hop_to_self() {
        let o = overlay(16);
        // Pick a key owned by peer 3.
        let key = o.ring_key_of(PeerId(3)).unwrap();
        let r = o.lookup(PeerId(3), key).unwrap();
        assert_eq!(r.owner, PeerId(3));
        assert_eq!(r.hops(), 1);
    }

    #[test]
    fn removing_a_peer_transfers_its_keys_to_the_successor() {
        let mut o = overlay(32);
        let victim = PeerId(5);
        let key = o.ring_key_of(victim).unwrap();
        assert_eq!(o.owner_of(key), Some(victim));
        let succ = o.successor(victim).unwrap();
        o.remove_peer(victim);
        assert_eq!(o.owner_of(key), Some(succ));
        assert!(!o.contains(victim));
        assert_eq!(o.len(), 31);
    }

    #[test]
    fn lookup_fails_for_non_member_source() {
        let o = overlay(8);
        assert!(o.lookup(PeerId(99), 42).is_none());
    }

    #[test]
    fn empty_overlay_has_no_owner() {
        let o = ChordOverlay::new();
        assert!(o.owner_of(1).is_none());
        assert!(o.is_empty());
    }

    #[test]
    fn neighbors_are_bounded_by_log_n() {
        let o = overlay(256);
        for i in 0..256u64 {
            let n = o.neighbors(PeerId(i)).len();
            assert!(n <= 66, "peer {i} has {n} neighbors");
            assert!(n >= 1);
        }
    }

    #[test]
    fn in_arc_wraparound() {
        assert!(ChordOverlay::in_arc(10, 20, 15));
        assert!(!ChordOverlay::in_arc(10, 20, 25));
        assert!(ChordOverlay::in_arc(u64::MAX - 5, 5, 2));
        assert!(ChordOverlay::in_arc(u64::MAX - 5, 5, u64::MAX));
        assert!(!ChordOverlay::in_arc(u64::MAX - 5, 5, 100));
    }
}
