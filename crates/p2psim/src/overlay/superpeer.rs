//! Deterministic super-peer election over the DHT.
//!
//! CEMPaR propagates local models "once to one of the super-peers in the P2P
//! network. The super-peers are automatically elected from the P2P network and
//! are located in a deterministic manner, made possible through the use of the
//! DHT-based P2P network" (§2). The election works by dividing the identifier
//! ring into `R` equal regions; the super-peer of region `r` is simply the
//! overlay owner of the region's anchor key `r * (2^64 / R)`. Every peer can
//! compute this locally, and when a super-peer churns out the DHT transparently
//! re-elects its successor — the fault-tolerance property the paper claims.

use super::Overlay;
use crate::peer::PeerId;
use serde::{Deserialize, Serialize};

/// The deterministic super-peer directory for a fixed number of regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuperPeerDirectory {
    regions: usize,
}

impl SuperPeerDirectory {
    /// Creates a directory with `regions` super-peer regions (at least 1).
    pub fn new(regions: usize) -> Self {
        Self {
            regions: regions.max(1),
        }
    }

    /// Number of regions.
    pub fn regions(&self) -> usize {
        self.regions
    }

    /// The anchor key of a region.
    pub fn anchor_key(&self, region: usize) -> u64 {
        let step = u64::MAX / self.regions as u64;
        (region as u64 % self.regions as u64).wrapping_mul(step)
    }

    /// The region a content key belongs to.
    pub fn region_of_key(&self, key: u64) -> usize {
        let step = u64::MAX / self.regions as u64;
        ((key / step) as usize).min(self.regions - 1)
    }

    /// The currently elected super-peer of a region, according to the overlay.
    pub fn super_peer_of_region<O: Overlay>(&self, overlay: &O, region: usize) -> Option<PeerId> {
        let anchor = self.anchor_key(region);
        // Any member can resolve the anchor; use the first member as the vantage
        // point (the result does not depend on the source).
        let from = overlay.members().into_iter().next()?;
        overlay.lookup(from, anchor).map(|r| r.owner)
    }

    /// The super-peer responsible for a content key (e.g. a tag's hash).
    pub fn super_peer_for_key<O: Overlay>(&self, overlay: &O, key: u64) -> Option<PeerId> {
        self.super_peer_of_region(overlay, self.region_of_key(key))
    }

    /// All currently elected super-peers (one per region; regions may share a
    /// peer when the network is small).
    pub fn elect<O: Overlay>(&self, overlay: &O) -> Vec<PeerId> {
        (0..self.regions)
            .filter_map(|r| self.super_peer_of_region(overlay, r))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::super::ChordOverlay;
    use super::*;
    use crate::peer::content_key;

    fn overlay(n: u64) -> ChordOverlay {
        ChordOverlay::with_peers((0..n).map(PeerId))
    }

    #[test]
    fn election_is_deterministic() {
        let o = overlay(100);
        let dir = SuperPeerDirectory::new(8);
        assert_eq!(dir.elect(&o), dir.elect(&o));
        assert_eq!(dir.elect(&o).len(), 8);
    }

    #[test]
    fn every_key_maps_to_an_elected_super_peer() {
        let o = overlay(64);
        let dir = SuperPeerDirectory::new(4);
        let elected = dir.elect(&o);
        for tag in ["rust", "database", "p2p", "svm", "tagging"] {
            let sp = dir
                .super_peer_for_key(&o, content_key(tag.as_bytes()))
                .unwrap();
            assert!(elected.contains(&sp), "{tag} maps to non-elected {sp}");
        }
    }

    #[test]
    fn failed_super_peer_is_replaced_deterministically() {
        let mut o = overlay(64);
        let dir = SuperPeerDirectory::new(4);
        let before = dir.super_peer_of_region(&o, 2).unwrap();
        o.remove_peer(before);
        let after = dir.super_peer_of_region(&o, 2).unwrap();
        assert_ne!(before, after);
        assert!(o.contains(after));
        // Other regions whose super-peer did not fail stay stable unless they
        // were the same peer.
        for r in 0..4 {
            let sp = dir.super_peer_of_region(&o, r).unwrap();
            assert!(o.contains(sp));
        }
    }

    #[test]
    fn region_of_key_covers_all_regions() {
        let dir = SuperPeerDirectory::new(5);
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..1000u64 {
            seen.insert(dir.region_of_key(crate::peer::mix64(i)));
        }
        assert_eq!(seen.len(), 5);
        assert!(seen.iter().all(|&r| r < 5));
    }

    #[test]
    fn at_least_one_region() {
        let dir = SuperPeerDirectory::new(0);
        assert_eq!(dir.regions(), 1);
        assert_eq!(dir.region_of_key(u64::MAX), 0);
    }

    #[test]
    fn small_network_shares_super_peers() {
        let o = overlay(2);
        let dir = SuperPeerDirectory::new(8);
        let elected = dir.elect(&o);
        assert_eq!(elected.len(), 8);
        let unique: std::collections::BTreeSet<_> = elected.into_iter().collect();
        assert!(unique.len() <= 2);
    }
}
