//! Overlay-network generation and routing.
//!
//! P2PDMT can "generate structured P2P network\[s\]" and "generate unstructured
//! P2P network\[s\]" (Figure 2). Two overlay families are provided:
//!
//! * [`ChordOverlay`] — a Chord-style DHT over a 64-bit identifier ring with
//!   finger-table greedy routing; this is the "DHT-based P2P network" CEMPaR
//!   relies on to locate super-peers deterministically.
//! * [`UnstructuredOverlay`] — a random regular graph with TTL-bounded
//!   flooding search, the classic Gnutella-style alternative used by the
//!   topology experiment (E5).
//!
//! [`SuperPeerDirectory`] implements the deterministic super-peer election the
//! paper describes ("super-peers are automatically elected from the P2P
//! network and are located in a deterministic manner, made possible through
//! the use of the DHT-based P2P network").

mod chord;
mod superpeer;
mod unstructured;

pub use chord::ChordOverlay;
pub use superpeer::SuperPeerDirectory;
pub use unstructured::{UnstructuredConfig, UnstructuredOverlay};

use crate::peer::PeerId;
use serde::{Deserialize, Serialize};

/// Result of routing a key through an overlay.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LookupResult {
    /// The peer responsible for the key (structured overlays) or the target
    /// peer that was found (unstructured search).
    pub owner: PeerId,
    /// The routing path, excluding the source, including the owner.
    pub path: Vec<PeerId>,
    /// Total overlay messages expended by the lookup (= hops for structured
    /// routing; ≥ hops for flooding search).
    pub messages: usize,
}

impl LookupResult {
    /// Number of overlay hops from the source to the owner.
    pub fn hops(&self) -> usize {
        self.path.len()
    }
}

/// Common interface of the overlay implementations.
pub trait Overlay {
    /// Peers currently part of the overlay.
    fn members(&self) -> Vec<PeerId>;

    /// Whether `peer` is currently a member.
    fn contains(&self, peer: PeerId) -> bool;

    /// Number of current members.
    fn len(&self) -> usize;

    /// Whether the overlay has no members.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Routes `key` starting from `from`; `None` when routing fails (source not
    /// a member, empty overlay, or TTL exhausted for unstructured search).
    fn lookup(&self, from: PeerId, key: u64) -> Option<LookupResult>;

    /// The overlay neighbours of `peer` (finger/successor entries or graph
    /// adjacency), used for gossip and maintenance-cost accounting.
    fn neighbors(&self, peer: PeerId) -> Vec<PeerId>;

    /// Adds a peer to the overlay (join).
    fn add_peer(&mut self, peer: PeerId);

    /// Removes a peer from the overlay (leave/failure).
    fn remove_peer(&mut self, peer: PeerId);
}

/// An overlay chosen at runtime (used by the network facade and `SimConfig`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum AnyOverlay {
    /// Structured Chord-style DHT.
    Chord(ChordOverlay),
    /// Unstructured random graph with flooding search.
    Unstructured(UnstructuredOverlay),
}

impl Overlay for AnyOverlay {
    fn members(&self) -> Vec<PeerId> {
        match self {
            AnyOverlay::Chord(o) => o.members(),
            AnyOverlay::Unstructured(o) => o.members(),
        }
    }

    fn contains(&self, peer: PeerId) -> bool {
        match self {
            AnyOverlay::Chord(o) => o.contains(peer),
            AnyOverlay::Unstructured(o) => o.contains(peer),
        }
    }

    fn len(&self) -> usize {
        match self {
            AnyOverlay::Chord(o) => o.len(),
            AnyOverlay::Unstructured(o) => o.len(),
        }
    }

    fn lookup(&self, from: PeerId, key: u64) -> Option<LookupResult> {
        match self {
            AnyOverlay::Chord(o) => o.lookup(from, key),
            AnyOverlay::Unstructured(o) => o.lookup(from, key),
        }
    }

    fn neighbors(&self, peer: PeerId) -> Vec<PeerId> {
        match self {
            AnyOverlay::Chord(o) => o.neighbors(peer),
            AnyOverlay::Unstructured(o) => o.neighbors(peer),
        }
    }

    fn add_peer(&mut self, peer: PeerId) {
        match self {
            AnyOverlay::Chord(o) => o.add_peer(peer),
            AnyOverlay::Unstructured(o) => o.add_peer(peer),
        }
    }

    fn remove_peer(&mut self, peer: PeerId) {
        match self {
            AnyOverlay::Chord(o) => o.remove_peer(peer),
            AnyOverlay::Unstructured(o) => o.remove_peer(peer),
        }
    }
}
