//! Unstructured random-graph overlay with TTL-bounded flooding search.
//!
//! The classic Gnutella-style alternative to a DHT: peers connect to a few
//! random neighbours and locate content by flooding queries up to a TTL.
//! There is no key ownership, so for comparability with the structured
//! overlay the "owner" of a key is defined as the member whose ring position
//! is closest to it; a lookup succeeds only if flooding reaches that peer
//! within the TTL. This makes the topology experiment (E5) meaningful: the
//! unstructured overlay spends many more messages per lookup and may fail,
//! while Chord routes in `O(log N)` hops deterministically.

use super::{LookupResult, Overlay};
use crate::peer::{mix64, PeerId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Configuration of the unstructured overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnstructuredConfig {
    /// Target number of neighbours per peer.
    pub degree: usize,
    /// Flooding TTL (maximum number of hops a query travels).
    pub ttl: usize,
    /// Seed controlling the random graph wiring.
    pub seed: u64,
}

impl Default for UnstructuredConfig {
    fn default() -> Self {
        Self {
            degree: 6,
            ttl: 5,
            seed: 77,
        }
    }
}

/// A random (roughly `degree`-regular) graph overlay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UnstructuredOverlay {
    config: UnstructuredConfig,
    adjacency: BTreeMap<PeerId, BTreeSet<PeerId>>,
}

impl UnstructuredOverlay {
    /// Creates an empty overlay.
    pub fn new(config: UnstructuredConfig) -> Self {
        Self {
            config,
            adjacency: BTreeMap::new(),
        }
    }

    /// Builds an overlay over `peers` with default wiring.
    pub fn with_peers<I: IntoIterator<Item = PeerId>>(
        config: UnstructuredConfig,
        peers: I,
    ) -> Self {
        let mut o = Self::new(config);
        for p in peers {
            o.add_peer(p);
        }
        o
    }

    /// The configuration in use.
    pub fn config(&self) -> &UnstructuredConfig {
        &self.config
    }

    /// The member whose ring key is numerically closest to `key` (the
    /// "owner" for comparability with structured overlays).
    pub fn closest_member(&self, key: u64) -> Option<PeerId> {
        self.adjacency
            .keys()
            .min_by_key(|p| {
                let k = p.ring_key();
                k.abs_diff(key)
            })
            .copied()
    }

    /// Deterministic pseudo-random neighbour choice for a joining peer.
    fn pick_neighbors(&self, peer: PeerId) -> Vec<PeerId> {
        let mut existing: Vec<PeerId> = self.adjacency.keys().copied().collect();
        if existing.is_empty() {
            return Vec::new();
        }
        let want = self.config.degree.min(existing.len());
        let mut chosen = Vec::with_capacity(want);
        let mut salt = 0u64;
        while chosen.len() < want && !existing.is_empty() {
            let idx =
                (mix64(self.config.seed ^ peer.0.wrapping_mul(0x517C_C1B7).wrapping_add(salt))
                    % existing.len() as u64) as usize;
            chosen.push(existing.swap_remove(idx));
            salt += 1;
        }
        chosen
    }
}

impl Overlay for UnstructuredOverlay {
    fn members(&self) -> Vec<PeerId> {
        self.adjacency.keys().copied().collect()
    }

    fn contains(&self, peer: PeerId) -> bool {
        self.adjacency.contains_key(&peer)
    }

    fn len(&self) -> usize {
        self.adjacency.len()
    }

    fn lookup(&self, from: PeerId, key: u64) -> Option<LookupResult> {
        if !self.contains(from) {
            return None;
        }
        let target = self.closest_member(key)?;
        if target == from {
            return Some(LookupResult {
                owner: target,
                path: vec![target],
                messages: 1,
            });
        }
        // Breadth-first flooding up to the TTL, counting every forwarded copy
        // of the query as one overlay message.
        let mut visited: BTreeSet<PeerId> = BTreeSet::from([from]);
        let mut parent: BTreeMap<PeerId, PeerId> = BTreeMap::new();
        let mut frontier = VecDeque::from([(from, 0usize)]);
        let mut messages = 0usize;
        let mut found = false;
        while let Some((node, depth)) = frontier.pop_front() {
            if depth >= self.config.ttl {
                continue;
            }
            for &next in self.adjacency.get(&node).into_iter().flatten() {
                if visited.contains(&next) {
                    continue;
                }
                messages += 1;
                visited.insert(next);
                parent.insert(next, node);
                if next == target {
                    found = true;
                    frontier.clear();
                    break;
                }
                frontier.push_back((next, depth + 1));
            }
            if found {
                break;
            }
        }
        if !found {
            return None;
        }
        // Reconstruct the hop path from the parent pointers.
        let mut path = vec![target];
        let mut cur = target;
        while let Some(&p) = parent.get(&cur) {
            if p == from {
                break;
            }
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(LookupResult {
            owner: target,
            path,
            messages,
        })
    }

    fn neighbors(&self, peer: PeerId) -> Vec<PeerId> {
        self.adjacency
            .get(&peer)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    fn add_peer(&mut self, peer: PeerId) {
        if self.adjacency.contains_key(&peer) {
            return;
        }
        let neighbors = self.pick_neighbors(peer);
        self.adjacency.insert(peer, BTreeSet::new());
        for n in neighbors {
            self.adjacency
                .get_mut(&peer)
                .expect("just inserted")
                .insert(n);
            self.adjacency.entry(n).or_default().insert(peer);
        }
    }

    fn remove_peer(&mut self, peer: PeerId) {
        if let Some(neighbors) = self.adjacency.remove(&peer) {
            for n in neighbors {
                if let Some(adj) = self.adjacency.get_mut(&n) {
                    adj.remove(&peer);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peer::mix64;

    fn overlay(n: u64) -> UnstructuredOverlay {
        UnstructuredOverlay::with_peers(UnstructuredConfig::default(), (0..n).map(PeerId))
    }

    #[test]
    fn graph_is_connected_enough_for_lookups() {
        let o = overlay(128);
        let mut found = 0;
        let total = 100;
        for i in 0..total as u64 {
            let key = mix64(i);
            if o.lookup(PeerId(i % 128), key).is_some() {
                found += 1;
            }
        }
        // With degree 6 and TTL 5 almost all lookups should succeed on 128 peers.
        assert!(found >= 90, "only {found}/{total} lookups succeeded");
    }

    #[test]
    fn flooding_costs_more_messages_than_hops() {
        let o = overlay(128);
        for i in 0..50u64 {
            if let Some(r) = o.lookup(PeerId(i % 128), mix64(i + 500)) {
                assert!(r.messages >= r.hops());
            }
        }
    }

    #[test]
    fn degrees_are_close_to_target() {
        let o = overlay(200);
        let mean_degree: f64 = (0..200u64)
            .map(|i| o.neighbors(PeerId(i)).len() as f64)
            .sum::<f64>()
            / 200.0;
        assert!(mean_degree >= 5.0, "mean degree {mean_degree}");
    }

    #[test]
    fn edges_are_symmetric() {
        let o = overlay(100);
        for p in o.members() {
            for n in o.neighbors(p) {
                assert!(o.neighbors(n).contains(&p), "{p} -> {n} not symmetric");
            }
        }
    }

    #[test]
    fn remove_peer_cleans_up_edges() {
        let mut o = overlay(50);
        let victim = PeerId(10);
        let neighbors = o.neighbors(victim);
        assert!(!neighbors.is_empty());
        o.remove_peer(victim);
        assert!(!o.contains(victim));
        for n in neighbors {
            assert!(!o.neighbors(n).contains(&victim));
        }
    }

    #[test]
    fn low_ttl_limits_reachability() {
        let short = UnstructuredOverlay::with_peers(
            UnstructuredConfig {
                ttl: 1,
                ..Default::default()
            },
            (0..256).map(PeerId),
        );
        let long = overlay(256);
        let mut short_found = 0;
        let mut long_found = 0;
        for i in 0..100u64 {
            let key = mix64(i + 77);
            let from = PeerId(i % 256);
            if short.lookup(from, key).is_some() {
                short_found += 1;
            }
            if long.lookup(from, key).is_some() {
                long_found += 1;
            }
        }
        assert!(short_found < long_found);
    }

    #[test]
    fn self_lookup_when_source_is_closest() {
        let o = overlay(4);
        let p = PeerId(2);
        let key = p.ring_key();
        let r = o.lookup(p, key).unwrap();
        assert_eq!(r.owner, p);
        assert_eq!(r.messages, 1);
    }

    #[test]
    fn non_member_source_fails() {
        let o = overlay(10);
        assert!(o.lookup(PeerId(999), 5).is_none());
    }
}
