//! Activity logging ("log activities" in Figure 2 of the paper).
//!
//! A bounded, in-memory log of notable simulation events. Experiments and
//! examples use it to narrate what the protocols did (model propagated, lookup
//! failed, peer churned out, …) without polluting stdout.

use crate::peer::PeerId;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One logged event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogEntry {
    /// Simulation time of the event.
    pub time: SimTime,
    /// Peer the event concerns (if any).
    pub peer: Option<PeerId>,
    /// Short category string, e.g. `"join"`, `"model-propagation"`.
    pub category: String,
    /// Human-readable description.
    pub message: String,
}

/// Bounded in-memory activity log.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActivityLog {
    entries: VecDeque<LogEntry>,
    capacity: usize,
    total_logged: u64,
}

impl Default for ActivityLog {
    fn default() -> Self {
        Self::with_capacity(10_000)
    }
}

impl ActivityLog {
    /// Creates a log retaining at most `capacity` recent entries.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            entries: VecDeque::with_capacity(capacity.min(1024)),
            capacity: capacity.max(1),
            total_logged: 0,
        }
    }

    /// Appends an entry, evicting the oldest one if the log is full.
    pub fn log(
        &mut self,
        time: SimTime,
        peer: Option<PeerId>,
        category: impl Into<String>,
        message: impl Into<String>,
    ) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(LogEntry {
            time,
            peer,
            category: category.into(),
            message: message.into(),
        });
        self.total_logged += 1;
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of entries ever logged (including evicted ones).
    pub fn total_logged(&self) -> u64 {
        self.total_logged
    }

    /// Iterates over retained entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &LogEntry> {
        self.entries.iter()
    }

    /// Entries matching a category.
    pub fn by_category<'a>(&'a self, category: &'a str) -> impl Iterator<Item = &'a LogEntry> {
        self.entries.iter().filter(move |e| e.category == category)
    }

    /// Clears the log (the total count is preserved).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logs_and_iterates_in_order() {
        let mut log = ActivityLog::with_capacity(10);
        log.log(
            SimTime::from_secs(1),
            Some(PeerId(1)),
            "join",
            "peer 1 joined",
        );
        log.log(SimTime::from_secs(2), None, "lookup", "lookup for tag rust");
        assert_eq!(log.len(), 2);
        let cats: Vec<&str> = log.iter().map(|e| e.category.as_str()).collect();
        assert_eq!(cats, vec!["join", "lookup"]);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut log = ActivityLog::with_capacity(3);
        for i in 0..5u64 {
            log.log(SimTime::from_secs(i), None, "tick", format!("tick {i}"));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.total_logged(), 5);
        assert_eq!(log.iter().next().unwrap().time, SimTime::from_secs(2));
    }

    #[test]
    fn filter_by_category() {
        let mut log = ActivityLog::default();
        log.log(SimTime::ZERO, None, "a", "1");
        log.log(SimTime::ZERO, None, "b", "2");
        log.log(SimTime::ZERO, None, "a", "3");
        assert_eq!(log.by_category("a").count(), 2);
        assert_eq!(log.by_category("c").count(), 0);
    }

    #[test]
    fn clear_retains_total() {
        let mut log = ActivityLog::default();
        log.log(SimTime::ZERO, None, "x", "y");
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.total_logged(), 1);
    }
}
