//! Distributing training data across peers.
//!
//! P2PDMT exposes "training data, size distribution of training data, class
//! distribution of training data" as simulation parameters (§2), and the
//! demonstration varies "the size and class distributions" of the per-peer
//! data (§3). This module turns a corpus (a list of item indices with a
//! primary label each) into a per-peer assignment under configurable size
//! skew (how unequal peer collections are) and class skew (how label-biased
//! each peer's collection is).

use crate::peer::mix64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How many documents each peer holds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SizeDistribution {
    /// Every peer holds roughly the same number of documents.
    Uniform,
    /// Peer collection sizes follow a Zipf law with the given exponent
    /// (1.0 ≈ classic power law; larger = more skewed).
    Zipf {
        /// Zipf exponent (s > 0).
        exponent: f64,
    },
}

/// How labels are spread over peers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ClassDistribution {
    /// Documents are assigned to peers independently of their label.
    Iid,
    /// Each label has a set of "home" peers; a document lands on one of its
    /// label's home peers with probability `concentration`, otherwise it is
    /// placed like in the IID case. `concentration = 0` is IID,
    /// `concentration = 1` is fully label-partitioned (strongly non-IID).
    LabelSkewed {
        /// Probability mass routed to the label's home peers.
        concentration: f64,
        /// Number of home peers per label.
        home_peers: usize,
    },
}

/// Configuration for distributing a corpus over peers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataDistributor {
    /// Per-peer collection-size skew.
    pub size: SizeDistribution,
    /// Per-peer label skew.
    pub class: ClassDistribution,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DataDistributor {
    fn default() -> Self {
        Self {
            size: SizeDistribution::Uniform,
            class: ClassDistribution::Iid,
            seed: 1234,
        }
    }
}

impl DataDistributor {
    /// Distributes `labels.len()` items over `num_peers` peers.
    ///
    /// `labels[i]` is the primary label of item `i`, used only by label-skewed
    /// class distributions. Returns, for every peer, the indices of the items
    /// it holds. Every item is assigned to exactly one peer.
    ///
    /// # Panics
    /// Panics when `num_peers == 0`.
    pub fn distribute(&self, labels: &[u64], num_peers: usize) -> Vec<Vec<usize>> {
        assert!(num_peers > 0, "need at least one peer");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let weights = self.peer_weights(num_peers);
        let cumulative = cumulative(&weights);
        let mut assignment = vec![Vec::new(); num_peers];
        for (item, &label) in labels.iter().enumerate() {
            let peer = match self.class {
                ClassDistribution::Iid => sample_weighted(&cumulative, &mut rng),
                ClassDistribution::LabelSkewed {
                    concentration,
                    home_peers,
                } => {
                    let go_home = rng.gen_bool(concentration.clamp(0.0, 1.0));
                    if go_home {
                        let homes = home_peers.max(1);
                        let slot = rng.gen_range(0..homes) as u64;
                        (mix64(label.wrapping_add(self.seed).wrapping_add(slot * 0x9E37))
                            % num_peers as u64) as usize
                    } else {
                        sample_weighted(&cumulative, &mut rng)
                    }
                }
            };
            assignment[peer].push(item);
        }
        assignment
    }

    /// Relative amount of data each peer attracts under the size distribution.
    fn peer_weights(&self, num_peers: usize) -> Vec<f64> {
        match self.size {
            SizeDistribution::Uniform => vec![1.0; num_peers],
            SizeDistribution::Zipf { exponent } => {
                // Rank order is itself randomized by peer index mixing so that
                // peer 0 is not always the largest collection.
                (0..num_peers)
                    .map(|i| {
                        let rank = (mix64(self.seed ^ i as u64) % num_peers as u64) + 1;
                        1.0 / (rank as f64).powf(exponent.max(0.01))
                    })
                    .collect()
            }
        }
    }
}

fn cumulative(weights: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for &w in weights {
        acc += w.max(0.0);
        out.push(acc);
    }
    out
}

fn sample_weighted(cumulative: &[f64], rng: &mut StdRng) -> usize {
    let total = *cumulative.last().expect("non-empty weights");
    let x = rng.gen_range(0.0..total);
    match cumulative.binary_search_by(|c| c.partial_cmp(&x).expect("finite weights")) {
        Ok(i) | Err(i) => i.min(cumulative.len() - 1),
    }
}

/// Gini coefficient of per-peer collection sizes — 0.0 is perfectly even,
/// values near 1.0 are extremely skewed. Used to verify size distributions in
/// tests and reported by the data-distribution experiment (E6).
pub fn size_gini(assignment: &[Vec<usize>]) -> f64 {
    let mut sizes: Vec<f64> = assignment.iter().map(|a| a.len() as f64).collect();
    sizes.sort_by(|a, b| a.partial_cmp(b).expect("sizes are finite"));
    let n = sizes.len() as f64;
    let total: f64 = sizes.iter().sum();
    if total == 0.0 || n < 2.0 {
        return 0.0;
    }
    let mut weighted = 0.0;
    for (i, s) in sizes.iter().enumerate() {
        weighted += (i as f64 + 1.0) * s;
    }
    (2.0 * weighted) / (n * total) - (n + 1.0) / n
}

/// Average per-peer label entropy (in bits), normalized by the entropy of the
/// overall label distribution. 1.0 ≈ peers see the global mix (IID), values
/// near 0.0 mean each peer only holds a few labels (non-IID).
pub fn label_entropy_ratio(assignment: &[Vec<usize>], labels: &[u64]) -> f64 {
    // BTreeMap, not HashMap: the probability terms accumulate in ascending
    // label order, so the ratio is bit-identical across runs and platforms
    // (float addition is not associative; hash order would leak into it).
    fn entropy(counts: &std::collections::BTreeMap<u64, usize>) -> f64 {
        let total: usize = counts.values().sum();
        if total == 0 {
            return 0.0;
        }
        counts
            .values()
            .map(|&c| {
                let p = c as f64 / total as f64;
                -p * p.log2()
            })
            .sum()
    }
    let mut global = std::collections::BTreeMap::new();
    for &l in labels {
        *global.entry(l).or_insert(0) += 1;
    }
    let global_h = entropy(&global);
    if global_h == 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut peers_with_data = 0;
    for peer_items in assignment {
        if peer_items.is_empty() {
            continue;
        }
        let mut counts = std::collections::BTreeMap::new();
        for &i in peer_items {
            *counts.entry(labels[i]).or_insert(0) += 1;
        }
        sum += entropy(&counts) / global_h;
        peers_with_data += 1;
    }
    if peers_with_data == 0 {
        0.0
    } else {
        sum / peers_with_data as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize, num_classes: u64) -> Vec<u64> {
        (0..n).map(|i| (i as u64) % num_classes).collect()
    }

    #[test]
    fn every_item_is_assigned_exactly_once() {
        let labels = labels(500, 10);
        let d = DataDistributor::default();
        let assignment = d.distribute(&labels, 16);
        let mut seen = vec![false; labels.len()];
        for peer_items in &assignment {
            for &i in peer_items {
                assert!(!seen[i], "item {i} assigned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_distribution_is_roughly_even() {
        let labels = labels(3200, 8);
        let d = DataDistributor::default();
        let assignment = d.distribute(&labels, 32);
        assert!(size_gini(&assignment) < 0.2);
    }

    #[test]
    fn zipf_distribution_is_skewed() {
        let labels = labels(3200, 8);
        let uniform = DataDistributor::default().distribute(&labels, 32);
        let zipf = DataDistributor {
            size: SizeDistribution::Zipf { exponent: 1.2 },
            ..Default::default()
        }
        .distribute(&labels, 32);
        assert!(size_gini(&zipf) > size_gini(&uniform) + 0.2);
    }

    #[test]
    fn label_skew_reduces_per_peer_entropy() {
        let labels = labels(4000, 20);
        let iid = DataDistributor::default().distribute(&labels, 20);
        let skewed = DataDistributor {
            class: ClassDistribution::LabelSkewed {
                concentration: 0.9,
                home_peers: 1,
            },
            ..Default::default()
        }
        .distribute(&labels, 20);
        let iid_ratio = label_entropy_ratio(&iid, &labels);
        let skew_ratio = label_entropy_ratio(&skewed, &labels);
        assert!(iid_ratio > 0.8, "iid ratio {iid_ratio}");
        assert!(
            skew_ratio < iid_ratio - 0.2,
            "skew {skew_ratio} vs iid {iid_ratio}"
        );
    }

    #[test]
    fn zero_concentration_behaves_like_iid() {
        let labels = labels(2000, 10);
        let skew0 = DataDistributor {
            class: ClassDistribution::LabelSkewed {
                concentration: 0.0,
                home_peers: 1,
            },
            ..Default::default()
        }
        .distribute(&labels, 10);
        assert!(label_entropy_ratio(&skew0, &labels) > 0.8);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let labels = labels(300, 5);
        let d = DataDistributor::default();
        assert_eq!(d.distribute(&labels, 7), d.distribute(&labels, 7));
    }

    #[test]
    fn single_peer_gets_everything() {
        let labels = labels(50, 3);
        let assignment = DataDistributor::default().distribute(&labels, 1);
        assert_eq!(assignment.len(), 1);
        assert_eq!(assignment[0].len(), 50);
    }

    #[test]
    #[should_panic(expected = "at least one peer")]
    fn zero_peers_panics() {
        DataDistributor::default().distribute(&[1, 2, 3], 0);
    }

    #[test]
    fn gini_edge_cases() {
        assert_eq!(size_gini(&[vec![], vec![]]), 0.0);
        assert_eq!(size_gini(&[vec![1, 2, 3]]), 0.0);
        let even = vec![vec![0; 10], vec![0; 10]];
        assert!(size_gini(&even) < 1e-9);
    }
}
