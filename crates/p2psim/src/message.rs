//! Message envelopes and message-kind tagging for cost accounting.

use crate::peer::PeerId;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Categories of protocol traffic tracked separately by the statistics layer.
///
/// The communication-cost experiment (E3) reports bytes broken down by these
/// categories, matching the phases of the CEMPaR and PACE protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MessageKind {
    /// Overlay maintenance traffic (joins, stabilization, finger updates).
    OverlayMaintenance,
    /// DHT lookup / routing hops.
    DhtLookup,
    /// Propagation of a trained model (support vectors or weight vector).
    ModelPropagation,
    /// Propagation of cluster centroids (PACE).
    CentroidPropagation,
    /// Raw training-data transfer (only the Centralized baseline does this).
    TrainingData,
    /// An untagged document vector sent for prediction (CEMPaR query).
    PredictionQuery,
    /// A prediction / tag assignment sent back to the requester.
    PredictionResponse,
    /// Tag-refinement updates propagated after user corrections.
    RefinementUpdate,
    /// Reliability-layer acknowledgements for sequence-numbered sends.
    Ack,
    /// Anti-entropy digests and re-sync payloads exchanged after a crash
    /// restart or partition heal.
    AntiEntropy,
    /// Anything else (tests, custom applications).
    Other,
}

impl MessageKind {
    /// Stable display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            MessageKind::OverlayMaintenance => "overlay-maintenance",
            MessageKind::DhtLookup => "dht-lookup",
            MessageKind::ModelPropagation => "model-propagation",
            MessageKind::CentroidPropagation => "centroid-propagation",
            MessageKind::TrainingData => "training-data",
            MessageKind::PredictionQuery => "prediction-query",
            MessageKind::PredictionResponse => "prediction-response",
            MessageKind::RefinementUpdate => "refinement-update",
            MessageKind::Ack => "ack",
            MessageKind::AntiEntropy => "anti-entropy",
            MessageKind::Other => "other",
        }
    }

    /// All kinds, in display order.
    pub fn all() -> &'static [MessageKind] {
        &[
            MessageKind::OverlayMaintenance,
            MessageKind::DhtLookup,
            MessageKind::ModelPropagation,
            MessageKind::CentroidPropagation,
            MessageKind::TrainingData,
            MessageKind::PredictionQuery,
            MessageKind::PredictionResponse,
            MessageKind::RefinementUpdate,
            MessageKind::Ack,
            MessageKind::AntiEntropy,
            MessageKind::Other,
        ]
    }
}

/// A message in flight inside the discrete-event engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Envelope<P> {
    /// Sending peer.
    pub from: PeerId,
    /// Destination peer.
    pub to: PeerId,
    /// Traffic category for accounting.
    pub kind: MessageKind,
    /// Payload size in bytes charged to the physical network.
    pub size_bytes: usize,
    /// Time the message was sent.
    pub sent_at: SimTime,
    /// Application payload.
    pub payload: P,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_unique() {
        let mut names: Vec<&str> = MessageKind::all().iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), MessageKind::all().len());
    }

    #[test]
    fn envelope_roundtrip() {
        let e = Envelope {
            from: PeerId(1),
            to: PeerId(2),
            kind: MessageKind::Other,
            size_bytes: 128,
            sent_at: SimTime::from_millis(3),
            payload: "hello".to_string(),
        };
        assert_eq!(e.from, PeerId(1));
        assert_eq!(e.size_bytes, 128);
        assert_eq!(e.payload, "hello");
    }
}
