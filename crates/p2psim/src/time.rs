//! Simulated time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in microseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Builds a time from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds a time from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds a time from fractional seconds (values < 0 clamp to zero).
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime((secs.max(0.0) * 1e6).round() as u64)
    }

    /// Microseconds since simulation start.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start.
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference between two times.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_micros(7).as_micros(), 7);
        assert!((SimTime::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-9);
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(4);
        assert_eq!(a + b, SimTime::from_millis(14));
        assert_eq!(a - b, SimTime::from_millis(6));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert!(a > b);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_millis(14));
    }

    #[test]
    fn display_format() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500s");
    }
}
