//! Dense peer-set bitset.
//!
//! Peers are numbered densely from 0 ([`PeerId::index`]), so "a set of peers"
//! is one bit per peer: 10 000 peers fit in 1.25 kB instead of a
//! `BTreeSet<PeerId>`'s ~50 heap nodes per thousand members. [`PeerBitset`]
//! is the SoA building block used for the engine's online set, the network
//! facade's cached churn view, per-peer delivery matrices (who received whose
//! model) and the statistics collector's participating-sender set. Membership
//! tests are O(1), iteration walks words without allocating, and the set-bit
//! count is cached so `len()` is O(1) too.

use crate::peer::PeerId;
use serde::{Deserialize, Serialize};

/// A fixed-capacity set of peers backed by one bit per peer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerBitset {
    words: Vec<u64>,
    capacity: usize,
    count: usize,
}

impl PeerBitset {
    /// Creates an empty set with room for peers `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
            count: 0,
        }
    }

    /// Creates a set with every peer in `0..capacity` present.
    pub fn full(capacity: usize) -> Self {
        let mut set = Self::new(capacity);
        for i in 0..capacity {
            set.insert(PeerId::from(i));
        }
        set
    }

    /// Number of peers the set can hold (bits, not set bits).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of peers currently in the set. O(1) — the count is cached.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Grows the capacity to at least `capacity` peers (never shrinks).
    pub fn grow(&mut self, capacity: usize) {
        if capacity > self.capacity {
            self.capacity = capacity;
            self.words.resize(capacity.div_ceil(64), 0);
        }
    }

    /// Whether `peer` is in the set. Out-of-range peers are absent.
    #[inline]
    pub fn contains(&self, peer: PeerId) -> bool {
        let i = peer.index();
        i < self.capacity && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Inserts `peer`, growing if needed. Returns `true` if it was absent.
    #[inline]
    pub fn insert(&mut self, peer: PeerId) -> bool {
        let i = peer.index();
        if i >= self.capacity {
            self.grow(i + 1);
        }
        let (w, m) = (i / 64, 1u64 << (i % 64));
        if self.words[w] & m == 0 {
            self.words[w] |= m;
            self.count += 1;
            true
        } else {
            false
        }
    }

    /// Removes `peer`. Returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, peer: PeerId) -> bool {
        let i = peer.index();
        if i >= self.capacity {
            return false;
        }
        let (w, m) = (i / 64, 1u64 << (i % 64));
        if self.words[w] & m != 0 {
            self.words[w] &= !m;
            self.count -= 1;
            true
        } else {
            false
        }
    }

    /// Sets `peer`'s membership to `present` (grow-on-insert semantics).
    #[inline]
    pub fn set(&mut self, peer: PeerId, present: bool) {
        if present {
            self.insert(peer);
        } else {
            self.remove(peer);
        }
    }

    /// Removes every peer. Capacity is retained; nothing is freed.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.count = 0;
    }

    /// Iterates the members in ascending peer order without allocating.
    pub fn ones(&self) -> Ones<'_> {
        Ones {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl FromIterator<PeerId> for PeerBitset {
    fn from_iter<I: IntoIterator<Item = PeerId>>(iter: I) -> Self {
        let mut set = Self::new(0);
        for p in iter {
            set.insert(p);
        }
        set
    }
}

/// Allocation-free iterator over the members of a [`PeerBitset`].
///
/// The borrow is on the bitset's *storage*, not on any wrapper handing it
/// out — [`crate::engine::Context::online_peers`] exploits this to let an
/// application iterate the online set while it keeps sending messages.
#[derive(Debug, Clone)]
pub struct Ones<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = PeerId;

    #[inline]
    fn next(&mut self) -> Option<PeerId> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(PeerId::from(self.word_idx * 64 + bit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains_and_count() {
        let mut s = PeerBitset::new(100);
        assert!(s.is_empty());
        assert!(s.insert(PeerId(3)));
        assert!(!s.insert(PeerId(3)));
        assert!(s.insert(PeerId(99)));
        assert_eq!(s.len(), 2);
        assert!(s.contains(PeerId(3)));
        assert!(!s.contains(PeerId(4)));
        assert!(s.remove(PeerId(3)));
        assert!(!s.remove(PeerId(3)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn grows_on_out_of_range_insert() {
        let mut s = PeerBitset::new(4);
        assert!(!s.contains(PeerId(1000)));
        assert!(s.insert(PeerId(1000)));
        assert!(s.contains(PeerId(1000)));
        assert!(s.capacity() >= 1001);
    }

    #[test]
    fn ones_iterates_in_order_across_words() {
        let members = [0usize, 1, 63, 64, 65, 127, 128, 300];
        let s: PeerBitset = members.iter().map(|&i| PeerId::from(i)).collect();
        let got: Vec<usize> = s.ones().map(|p| p.index()).collect();
        assert_eq!(got, members);
        assert_eq!(s.len(), members.len());
    }

    #[test]
    fn full_and_clear() {
        let mut s = PeerBitset::full(130);
        assert_eq!(s.len(), 130);
        assert_eq!(s.ones().count(), 130);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.ones().count(), 0);
        assert_eq!(s.capacity(), 130);
    }

    #[test]
    fn set_matches_insert_remove() {
        let mut s = PeerBitset::new(10);
        s.set(PeerId(2), true);
        assert!(s.contains(PeerId(2)));
        s.set(PeerId(2), false);
        assert!(!s.contains(PeerId(2)));
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn empty_bitset_iterates_nothing() {
        let s = PeerBitset::new(0);
        assert_eq!(s.ones().count(), 0);
        assert!(!s.contains(PeerId(0)));
    }
}
