//! Discrete-event simulation engine.
//!
//! The engine drives a set of per-peer [`Application`] state machines through
//! time: applications send messages (delivered after the physical network's
//! latency + transmission delay), set timers, and react to churn events. All
//! traffic is accounted in [`SimStats`], giving the realistic message-level
//! simulation that P2PDMT inherits from OverSim.
//!
//! # Steady-state memory model
//!
//! The event loop is allocation-free once warm. Event payloads live in a
//! free-listed slab (`EventPool`); the priority queue orders small `Copy`
//! `EventKey`s (time, seq, slot), so pushing and popping never moves a
//! payload and a popped slot is immediately recycled. `Context` action
//! buffers are taken from and returned to the engine around every callback,
//! and the online set is a [`PeerBitset`] that churn events update in place.
//! After the initial ramp-up (slab, heap and buffers grown to the run's
//! high-water mark) processing an event performs zero heap allocations —
//! `bench`'s `scale` harness pins this in CI with the counting allocator.

use crate::bitset::{Ones, PeerBitset};
use crate::churn::ChurnTimeline;
use crate::faults::{FaultDrop, FaultPlan, FaultState, SendFault};
use crate::logging::ActivityLog;
use crate::message::{Envelope, MessageKind};
use crate::peer::PeerId;
use crate::physical::PhysicalNetwork;
use crate::stats::SimStats;
use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A per-peer protocol/application state machine.
pub trait Application {
    /// Message payload exchanged between instances of this application.
    type Payload: Clone;

    /// Called once when the peer first comes online.
    fn on_start(&mut self, _ctx: &mut Context<'_, Self::Payload>) {}

    /// Called when a message addressed to this peer is delivered.
    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Self::Payload>,
        from: PeerId,
        payload: Self::Payload,
    );

    /// Called when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Context<'_, Self::Payload>, _timer: u64) {}

    /// Called when this peer goes offline due to churn.
    fn on_stop(&mut self, _ctx: &mut Context<'_, Self::Payload>) {}
}

/// The side effects an application may request during a callback.
enum Action<P> {
    Send {
        to: PeerId,
        kind: MessageKind,
        size_bytes: usize,
        payload: P,
    },
    SetTimer {
        delay: SimTime,
        timer: u64,
    },
    Log {
        category: String,
        message: String,
    },
}

/// Handle given to application callbacks for interacting with the simulation.
pub struct Context<'a, P> {
    self_id: PeerId,
    now: SimTime,
    actions: Vec<Action<P>>,
    rng: &'a mut StdRng,
    online: &'a PeerBitset,
}

impl<'a, P> Context<'a, P> {
    /// The peer this callback runs on.
    pub fn self_id(&self) -> PeerId {
        self.self_id
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Deterministic per-run random number generator.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Whether a peer is currently online (snapshot at callback time).
    pub fn is_online(&self, peer: PeerId) -> bool {
        self.online.contains(peer)
    }

    /// Number of peers currently online. O(1).
    pub fn num_online(&self) -> usize {
        self.online.len()
    }

    /// Iterates all currently online peers in ascending id order.
    ///
    /// The iterator borrows the engine's cached online bitset (lifetime
    /// `'a`), not the context, so callbacks can keep sending messages while
    /// iterating. Nothing is allocated — this replaces the `Vec<PeerId>`
    /// the pre-scale engine rebuilt on every call.
    pub fn online_peers(&self) -> Ones<'a> {
        self.online.ones()
    }

    /// Sends a message to another peer.
    pub fn send(&mut self, to: PeerId, kind: MessageKind, size_bytes: usize, payload: P) {
        self.actions.push(Action::Send {
            to,
            kind,
            size_bytes,
            payload,
        });
    }

    /// Schedules `on_timer(timer)` after `delay`.
    pub fn set_timer(&mut self, delay: SimTime, timer: u64) {
        self.actions.push(Action::SetTimer { delay, timer });
    }

    /// Appends an entry to the activity log.
    pub fn log(&mut self, category: impl Into<String>, message: impl Into<String>) {
        self.actions.push(Action::Log {
            category: category.into(),
            message: message.into(),
        });
    }
}

/// A scheduled simulation event.
enum EventKind<P> {
    Deliver(Envelope<P>),
    Timer { peer: PeerId, timer: u64 },
    PeerOnline(PeerId),
    PeerOffline(PeerId),
}

/// The heap entry: event ordering data plus the slab slot holding the
/// payload. `Copy`, 24 bytes — sifting the `BinaryHeap` never moves an
/// envelope.
#[derive(Clone, Copy, PartialEq, Eq)]
struct EventKey {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialOrd for EventKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // `seq` is unique per event, so ordering ignores the slot: replays
        // with a recycled (hence differently-numbered) slab are identical.
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Free-listed slab of pending event payloads.
///
/// `alloc` reuses a free slot when one exists and only grows the backing
/// `Vec` when the number of in-flight events exceeds the previous high-water
/// mark; `take` moves the payload out and recycles the slot. A slot is
/// `None` exactly while it sits on the free list, so a stale key could only
/// ever observe `None` — `take` panics rather than resurrecting a payload.
struct EventPool<P> {
    slots: Vec<Option<EventKind<P>>>,
    free: Vec<u32>,
}

impl<P> EventPool<P> {
    fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    fn alloc(&mut self, kind: EventKind<P>) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.slots[slot as usize].is_none());
                self.slots[slot as usize] = Some(kind);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("event pool exceeds u32 slots");
                self.slots.push(Some(kind));
                slot
            }
        }
    }

    fn take(&mut self, slot: u32) -> EventKind<P> {
        let kind = self.slots[slot as usize]
            .take()
            .expect("event slot taken twice — stale key");
        self.free.push(slot);
        kind
    }

    fn high_water_mark(&self) -> usize {
        self.slots.len()
    }
}

/// The discrete-event engine hosting one application instance per peer.
pub struct Engine<A: Application> {
    apps: Vec<A>,
    online: PeerBitset,
    started: Vec<bool>,
    queue: BinaryHeap<Reverse<EventKey>>,
    pool: EventPool<A::Payload>,
    action_buf: Vec<Action<A::Payload>>,
    physical: PhysicalNetwork,
    stats: SimStats,
    log: ActivityLog,
    log_churn: bool,
    now: SimTime,
    seq: u64,
    rng: StdRng,
    events_processed: u64,
    /// Fault injection on the engine's send path (disabled by default;
    /// see [`Engine::set_fault_plan`]).
    faults: FaultState,
    seed: u64,
}

impl<A: Application> Engine<A> {
    /// Creates an engine with one application per peer; all peers start online
    /// at time zero (use [`Engine::apply_churn`] for churn).
    pub fn new(apps: Vec<A>, physical: PhysicalNetwork, seed: u64) -> Self {
        let n = apps.len();
        let mut engine = Self {
            apps,
            online: PeerBitset::full(n),
            started: vec![false; n],
            queue: BinaryHeap::new(),
            pool: EventPool::new(),
            action_buf: Vec::new(),
            physical,
            stats: SimStats::new(),
            log: ActivityLog::default(),
            log_churn: true,
            now: SimTime::ZERO,
            seq: 0,
            rng: StdRng::seed_from_u64(seed),
            events_processed: 0,
            faults: FaultState::new(FaultPlan::default(), seed),
            seed,
        };
        for i in 0..n {
            engine.push_event(SimTime::ZERO, EventKind::PeerOnline(PeerId::from(i)));
        }
        engine
    }

    /// Number of peers.
    pub fn num_peers(&self) -> usize {
        self.apps.len()
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The activity log.
    pub fn log(&self) -> &ActivityLog {
        &self.log
    }

    /// Enables or disables the engine's own join/leave log entries.
    ///
    /// Application [`Context::log`] calls are always honored; this gates only
    /// the two strings the engine itself allocates per churn event — the one
    /// remaining steady-state allocation source at scale.
    pub fn set_churn_logging(&mut self, enabled: bool) {
        self.log_churn = enabled;
    }

    /// Installs a fault plan on the engine's send path (loss, burst loss,
    /// latency spikes, partitions — frame corruption does not apply, since
    /// engine payloads are typed values, not byte frames). The plan runs
    /// from its own seeded RNG stream, so installing a disabled plan (the
    /// default) leaves the run bit-identical, and an active plan never
    /// perturbs the application RNG.
    ///
    /// Call before [`Engine::run`]; mid-run installation is allowed and
    /// simply takes effect for subsequent sends.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = FaultState::new(plan, self.seed);
    }

    /// Peak number of simultaneously in-flight events so far (the slab's
    /// high-water mark — steady state never grows past it).
    pub fn in_flight_high_water_mark(&self) -> usize {
        self.pool.high_water_mark()
    }

    /// Immutable access to a peer's application state (for assertions).
    pub fn app(&self, peer: PeerId) -> &A {
        &self.apps[peer.index()]
    }

    /// Whether the peer is currently online.
    pub fn is_online(&self, peer: PeerId) -> bool {
        self.online.contains(peer)
    }

    /// Number of peers currently online. O(1).
    pub fn num_online(&self) -> usize {
        self.online.len()
    }

    /// Schedules the online/offline events of a churn timeline.
    ///
    /// Peers not online at time zero according to the timeline are taken
    /// offline immediately.
    pub fn apply_churn(&mut self, timeline: &ChurnTimeline) {
        for event in timeline.events() {
            let kind = if event.online {
                EventKind::PeerOnline(event.peer)
            } else {
                EventKind::PeerOffline(event.peer)
            };
            self.push_event(event.time, kind);
        }
        for i in 0..self.num_peers() {
            let p = PeerId::from(i);
            if !timeline.is_online(p, SimTime::ZERO) {
                self.push_event(SimTime::ZERO, EventKind::PeerOffline(p));
            }
        }
    }

    fn push_event(&mut self, time: SimTime, kind: EventKind<A::Payload>) {
        self.seq += 1;
        let slot = self.pool.alloc(kind);
        self.queue.push(Reverse(EventKey {
            time,
            seq: self.seq,
            slot,
        }));
    }

    /// Runs until the event queue is empty, the time horizon is reached, or
    /// `max_events` events have been processed. Returns the number of events
    /// processed by this call.
    pub fn run(&mut self, horizon: SimTime, max_events: u64) -> u64 {
        let mut processed = 0;
        while processed < max_events {
            let Some(Reverse(key)) = self.queue.pop() else {
                break;
            };
            if key.time > horizon {
                // Put it back for a later run() call and stop. The payload
                // stays in its slot; only the Copy key moves.
                self.queue.push(Reverse(key));
                break;
            }
            self.now = key.time;
            processed += 1;
            self.events_processed += 1;
            match self.pool.take(key.slot) {
                EventKind::PeerOnline(p) => {
                    let newly_started = !self.started[p.index()];
                    self.online.insert(p);
                    if self.log_churn {
                        self.log.log(self.now, Some(p), "join", "peer online");
                    }
                    if newly_started {
                        self.started[p.index()] = true;
                        self.dispatch(p, |app, ctx| app.on_start(ctx));
                    }
                }
                EventKind::PeerOffline(p) => {
                    self.online.remove(p);
                    if self.log_churn {
                        self.log.log(self.now, Some(p), "leave", "peer offline");
                    }
                    self.dispatch(p, |app, ctx| app.on_stop(ctx));
                }
                EventKind::Timer { peer, timer } => {
                    if self.online.contains(peer) {
                        self.dispatch(peer, |app, ctx| app.on_timer(ctx, timer));
                    }
                }
                EventKind::Deliver(env) => {
                    let latency = self.now.saturating_sub(env.sent_at);
                    if self.online.contains(env.to) {
                        self.stats.record_delivery(
                            env.from,
                            env.to,
                            env.kind,
                            env.size_bytes,
                            latency,
                        );
                        let (from, payload, to) = (env.from, env.payload, env.to);
                        self.dispatch(to, |app, ctx| app.on_message(ctx, from, payload));
                    } else {
                        self.stats.record_drop(env.from, env.kind, env.size_bytes);
                    }
                }
            }
        }
        processed
    }

    /// Runs the full queue with a generous event cap (tests / small sims).
    pub fn run_to_completion(&mut self) -> u64 {
        self.run(SimTime(u64::MAX), 10_000_000)
    }

    fn dispatch<F>(&mut self, peer: PeerId, f: F)
    where
        F: FnOnce(&mut A, &mut Context<'_, A::Payload>),
    {
        // The action buffer shuttles between the engine and the context:
        // taken here, handed back (still with its capacity) after draining.
        let mut ctx = Context {
            self_id: peer,
            now: self.now,
            actions: std::mem::take(&mut self.action_buf),
            rng: &mut self.rng,
            online: &self.online,
        };
        f(&mut self.apps[peer.index()], &mut ctx);
        let mut actions = ctx.actions;
        for action in actions.drain(..) {
            match action {
                Action::Send {
                    to,
                    kind,
                    size_bytes,
                    payload,
                } => {
                    let extra = match self.faults.on_send(self.now, peer, to) {
                        SendFault::Drop(drop) => {
                            self.stats.record_drop(peer, kind, size_bytes);
                            match drop {
                                FaultDrop::Loss { burst: true } => {
                                    self.stats.faults.burst_lost += 1
                                }
                                FaultDrop::Loss { burst: false } => self.stats.faults.lost += 1,
                                FaultDrop::Partitioned => self.stats.faults.partition_drops += 1,
                            }
                            continue;
                        }
                        SendFault::Deliver {
                            extra_latency,
                            spiked,
                        } => {
                            if spiked {
                                self.stats.faults.latency_spikes += 1;
                            }
                            extra_latency
                        }
                    };
                    let delay = self.physical.delivery_delay(peer, to, size_bytes) + extra;
                    let env = Envelope {
                        from: peer,
                        to,
                        kind,
                        size_bytes,
                        sent_at: self.now,
                        payload,
                    };
                    let at = self.now + delay;
                    self.push_event(at, EventKind::Deliver(env));
                }
                Action::SetTimer { delay, timer } => {
                    let at = self.now + delay;
                    self.push_event(at, EventKind::Timer { peer, timer });
                }
                Action::Log { category, message } => {
                    self.log.log(self.now, Some(peer), category, message);
                }
            }
        }
        self.action_buf = actions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::ChurnModel;
    use crate::physical::PhysicalNetwork;

    /// A simple application: peer 0 pings every other peer on start; peers
    /// respond with a pong; everyone counts what they received.
    #[derive(Default)]
    struct PingPong {
        pings_received: usize,
        pongs_received: usize,
    }

    #[derive(Clone, PartialEq, Debug)]
    enum Msg {
        Ping,
        Pong,
    }

    impl Application for PingPong {
        type Payload = Msg;

        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            if ctx.self_id() == PeerId(0) {
                for p in ctx.online_peers() {
                    if p != ctx.self_id() {
                        ctx.send(p, MessageKind::Other, 32, Msg::Ping);
                    }
                }
            }
        }

        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: PeerId, payload: Msg) {
            match payload {
                Msg::Ping => {
                    self.pings_received += 1;
                    ctx.send(from, MessageKind::Other, 32, Msg::Pong);
                }
                Msg::Pong => self.pongs_received += 1,
            }
        }
    }

    fn engine(n: usize) -> Engine<PingPong> {
        let apps = (0..n).map(|_| PingPong::default()).collect();
        Engine::new(apps, PhysicalNetwork::default(), 1)
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut e = engine(10);
        e.run_to_completion();
        assert_eq!(e.app(PeerId(0)).pongs_received, 9);
        for i in 1..10u64 {
            assert_eq!(e.app(PeerId(i)).pings_received, 1);
        }
        assert_eq!(e.stats().total_messages(), 18);
        assert_eq!(e.stats().delivery_rate(), 1.0);
        assert!(e.now() > SimTime::ZERO);
    }

    #[test]
    fn horizon_limits_processing() {
        let mut e = engine(10);
        // Nothing can be delivered in the first microsecond except the start events.
        e.run(SimTime::from_micros(1), 1_000_000);
        assert_eq!(e.app(PeerId(0)).pongs_received, 0);
        e.run_to_completion();
        assert_eq!(e.app(PeerId(0)).pongs_received, 9);
    }

    #[test]
    fn offline_peers_drop_messages() {
        struct Broadcaster;
        impl Application for Broadcaster {
            type Payload = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                if ctx.self_id() == PeerId(0) {
                    // Deliberately send to every peer id, even offline ones.
                    for i in 0..4u64 {
                        if i != 0 {
                            ctx.send(PeerId(i), MessageKind::Other, 16, ());
                        }
                    }
                }
            }
            fn on_message(&mut self, _ctx: &mut Context<'_, ()>, _from: PeerId, _p: ()) {}
        }
        let apps = (0..4).map(|_| Broadcaster).collect();
        let mut e = Engine::new(apps, PhysicalNetwork::default(), 2);
        // Take peer 3 offline for the whole run.
        let timeline = ChurnTimeline::generate(ChurnModel::None, 4, SimTime::from_secs(1_000), 3);
        e.apply_churn(&timeline);
        e.push_event(SimTime::ZERO, EventKind::PeerOffline(PeerId(3)));
        e.run_to_completion();
        assert_eq!(e.stats().total_dropped(), 1);
        assert!(e.stats().delivery_rate() < 1.0);
    }

    #[test]
    fn timers_fire_in_order() {
        #[derive(Default)]
        struct TimerApp {
            fired: Vec<u64>,
        }
        impl Application for TimerApp {
            type Payload = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.set_timer(SimTime::from_millis(20), 2);
                ctx.set_timer(SimTime::from_millis(10), 1);
                ctx.set_timer(SimTime::from_millis(30), 3);
            }
            fn on_message(&mut self, _ctx: &mut Context<'_, ()>, _from: PeerId, _p: ()) {}
            fn on_timer(&mut self, _ctx: &mut Context<'_, ()>, timer: u64) {
                self.fired.push(timer);
            }
        }
        let mut e = Engine::new(vec![TimerApp::default()], PhysicalNetwork::default(), 3);
        e.run_to_completion();
        assert_eq!(e.app(PeerId(0)).fired, vec![1, 2, 3]);
    }

    #[test]
    fn churned_out_peers_do_not_receive() {
        let mut e = engine(20);
        let timeline = ChurnTimeline::generate(
            ChurnModel::Exponential {
                mean_session_secs: 0.05,
                mean_offline_secs: 10.0,
            },
            20,
            SimTime::from_secs(100),
            5,
        );
        e.apply_churn(&timeline);
        e.run_to_completion();
        // With peers mostly offline, some of peer 0's pings must be dropped
        // (peer 0 itself may also churn out, in which case nothing is sent).
        let stats = e.stats();
        assert!(stats.total_dropped() > 0 || stats.total_messages() == 0);
    }

    #[test]
    fn event_cap_is_respected() {
        let mut e = engine(50);
        let processed = e.run(SimTime(u64::MAX), 10);
        assert_eq!(processed, 10);
    }

    #[test]
    fn slab_recycles_slots_without_growing() {
        // One ping-pong pair bouncing a message back and forth keeps exactly
        // one message in flight: the slab must stay at its ramp-up size no
        // matter how many events are processed.
        #[derive(Default)]
        struct Bouncer {
            bounces: u64,
        }
        impl Application for Bouncer {
            type Payload = u64;
            fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
                if ctx.self_id() == PeerId(0) {
                    ctx.send(PeerId(1), MessageKind::Other, 8, 0);
                }
            }
            fn on_message(&mut self, ctx: &mut Context<'_, u64>, from: PeerId, n: u64) {
                self.bounces += 1;
                if n < 500 {
                    ctx.send(from, MessageKind::Other, 8, n + 1);
                }
            }
        }
        let apps = (0..2).map(|_| Bouncer::default()).collect();
        let mut e = Engine::new(apps, PhysicalNetwork::default(), 7);
        e.run_to_completion();
        let total = e.app(PeerId(0)).bounces + e.app(PeerId(1)).bounces;
        assert_eq!(total, 501);
        // Ramp-up: 2 PeerOnline events + 1 in-flight message. Steady state
        // recycles those slots for all ~500 subsequent deliveries.
        assert!(
            e.in_flight_high_water_mark() <= 3,
            "slab grew to {} slots for a 1-message-in-flight workload",
            e.in_flight_high_water_mark()
        );
    }

    #[test]
    fn num_online_tracks_churn() {
        let mut e = engine(10);
        e.run_to_completion();
        assert_eq!(e.num_online(), 10);
        e.push_event(e.now(), EventKind::PeerOffline(PeerId(4)));
        e.run_to_completion();
        assert_eq!(e.num_online(), 9);
        assert!(!e.is_online(PeerId(4)));
    }
}
