//! Discrete-event simulation engine.
//!
//! The engine drives a set of per-peer [`Application`] state machines through
//! time: applications send messages (delivered after the physical network's
//! latency + transmission delay), set timers, and react to churn events. All
//! traffic is accounted in [`SimStats`], giving the realistic message-level
//! simulation that P2PDMT inherits from OverSim.

use crate::churn::ChurnTimeline;
use crate::logging::ActivityLog;
use crate::message::{Envelope, MessageKind};
use crate::peer::PeerId;
use crate::physical::PhysicalNetwork;
use crate::stats::SimStats;
use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A per-peer protocol/application state machine.
pub trait Application {
    /// Message payload exchanged between instances of this application.
    type Payload: Clone;

    /// Called once when the peer first comes online.
    fn on_start(&mut self, _ctx: &mut Context<'_, Self::Payload>) {}

    /// Called when a message addressed to this peer is delivered.
    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Self::Payload>,
        from: PeerId,
        payload: Self::Payload,
    );

    /// Called when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Context<'_, Self::Payload>, _timer: u64) {}

    /// Called when this peer goes offline due to churn.
    fn on_stop(&mut self, _ctx: &mut Context<'_, Self::Payload>) {}
}

/// The side effects an application may request during a callback.
enum Action<P> {
    Send {
        to: PeerId,
        kind: MessageKind,
        size_bytes: usize,
        payload: P,
    },
    SetTimer {
        delay: SimTime,
        timer: u64,
    },
    Log {
        category: String,
        message: String,
    },
}

/// Handle given to application callbacks for interacting with the simulation.
pub struct Context<'a, P> {
    self_id: PeerId,
    now: SimTime,
    actions: Vec<Action<P>>,
    rng: &'a mut StdRng,
    online: &'a [bool],
}

impl<'a, P> Context<'a, P> {
    /// The peer this callback runs on.
    pub fn self_id(&self) -> PeerId {
        self.self_id
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Deterministic per-run random number generator.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Whether a peer is currently online (snapshot at callback time).
    pub fn is_online(&self, peer: PeerId) -> bool {
        self.online.get(peer.index()).copied().unwrap_or(false)
    }

    /// All currently online peers.
    pub fn online_peers(&self) -> Vec<PeerId> {
        self.online
            .iter()
            .enumerate()
            .filter(|(_, &up)| up)
            .map(|(i, _)| PeerId::from(i))
            .collect()
    }

    /// Sends a message to another peer.
    pub fn send(&mut self, to: PeerId, kind: MessageKind, size_bytes: usize, payload: P) {
        self.actions.push(Action::Send {
            to,
            kind,
            size_bytes,
            payload,
        });
    }

    /// Schedules `on_timer(timer)` after `delay`.
    pub fn set_timer(&mut self, delay: SimTime, timer: u64) {
        self.actions.push(Action::SetTimer { delay, timer });
    }

    /// Appends an entry to the activity log.
    pub fn log(&mut self, category: impl Into<String>, message: impl Into<String>) {
        self.actions.push(Action::Log {
            category: category.into(),
            message: message.into(),
        });
    }
}

/// A scheduled simulation event.
enum EventKind<P> {
    Deliver(Envelope<P>),
    Timer { peer: PeerId, timer: u64 },
    PeerOnline(PeerId),
    PeerOffline(PeerId),
}

struct Event<P> {
    time: SimTime,
    seq: u64,
    kind: EventKind<P>,
}

impl<P> PartialEq for Event<P> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<P> Eq for Event<P> {}
impl<P> PartialOrd for Event<P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for Event<P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The discrete-event engine hosting one application instance per peer.
pub struct Engine<A: Application> {
    apps: Vec<A>,
    online: Vec<bool>,
    started: Vec<bool>,
    queue: BinaryHeap<Reverse<Event<A::Payload>>>,
    physical: PhysicalNetwork,
    stats: SimStats,
    log: ActivityLog,
    now: SimTime,
    seq: u64,
    rng: StdRng,
    events_processed: u64,
}

impl<A: Application> Engine<A> {
    /// Creates an engine with one application per peer; all peers start online
    /// at time zero (use [`Engine::apply_churn`] for churn).
    pub fn new(apps: Vec<A>, physical: PhysicalNetwork, seed: u64) -> Self {
        let n = apps.len();
        let mut engine = Self {
            apps,
            online: vec![true; n],
            started: vec![false; n],
            queue: BinaryHeap::new(),
            physical,
            stats: SimStats::new(),
            log: ActivityLog::default(),
            now: SimTime::ZERO,
            seq: 0,
            rng: StdRng::seed_from_u64(seed),
            events_processed: 0,
        };
        for i in 0..n {
            engine.push_event(SimTime::ZERO, EventKind::PeerOnline(PeerId::from(i)));
        }
        engine
    }

    /// Number of peers.
    pub fn num_peers(&self) -> usize {
        self.apps.len()
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The activity log.
    pub fn log(&self) -> &ActivityLog {
        &self.log
    }

    /// Immutable access to a peer's application state (for assertions).
    pub fn app(&self, peer: PeerId) -> &A {
        &self.apps[peer.index()]
    }

    /// Whether the peer is currently online.
    pub fn is_online(&self, peer: PeerId) -> bool {
        self.online.get(peer.index()).copied().unwrap_or(false)
    }

    /// Schedules the online/offline events of a churn timeline.
    ///
    /// Peers not online at time zero according to the timeline are taken
    /// offline immediately.
    pub fn apply_churn(&mut self, timeline: &ChurnTimeline) {
        for event in timeline.events() {
            let kind = if event.online {
                EventKind::PeerOnline(event.peer)
            } else {
                EventKind::PeerOffline(event.peer)
            };
            self.push_event(event.time, kind);
        }
        for i in 0..self.num_peers() {
            let p = PeerId::from(i);
            if !timeline.is_online(p, SimTime::ZERO) {
                self.push_event(SimTime::ZERO, EventKind::PeerOffline(p));
            }
        }
    }

    fn push_event(&mut self, time: SimTime, kind: EventKind<A::Payload>) {
        self.seq += 1;
        self.queue.push(Reverse(Event {
            time,
            seq: self.seq,
            kind,
        }));
    }

    /// Runs until the event queue is empty, the time horizon is reached, or
    /// `max_events` events have been processed. Returns the number of events
    /// processed by this call.
    pub fn run(&mut self, horizon: SimTime, max_events: u64) -> u64 {
        let mut processed = 0;
        while processed < max_events {
            let Some(Reverse(event)) = self.queue.pop() else {
                break;
            };
            if event.time > horizon {
                // Put it back for a later run() call and stop.
                self.queue.push(Reverse(event));
                break;
            }
            self.now = event.time;
            processed += 1;
            self.events_processed += 1;
            match event.kind {
                EventKind::PeerOnline(p) => {
                    let newly_started = !self.started[p.index()];
                    self.online[p.index()] = true;
                    self.log.log(self.now, Some(p), "join", "peer online");
                    if newly_started {
                        self.started[p.index()] = true;
                        self.dispatch(p, |app, ctx| app.on_start(ctx));
                    }
                }
                EventKind::PeerOffline(p) => {
                    self.online[p.index()] = false;
                    self.log.log(self.now, Some(p), "leave", "peer offline");
                    self.dispatch(p, |app, ctx| app.on_stop(ctx));
                }
                EventKind::Timer { peer, timer } => {
                    if self.online[peer.index()] {
                        self.dispatch(peer, |app, ctx| app.on_timer(ctx, timer));
                    }
                }
                EventKind::Deliver(env) => {
                    let latency = self.now.saturating_sub(env.sent_at);
                    if self.online[env.to.index()] {
                        self.stats.record_delivery(
                            env.from,
                            env.to,
                            env.kind,
                            env.size_bytes,
                            latency,
                        );
                        let (from, payload, to) = (env.from, env.payload, env.to);
                        self.dispatch(to, |app, ctx| app.on_message(ctx, from, payload));
                    } else {
                        self.stats.record_drop(env.from, env.kind, env.size_bytes);
                    }
                }
            }
        }
        processed
    }

    /// Runs the full queue with a generous event cap (tests / small sims).
    pub fn run_to_completion(&mut self) -> u64 {
        self.run(SimTime(u64::MAX), 10_000_000)
    }

    fn dispatch<F>(&mut self, peer: PeerId, f: F)
    where
        F: FnOnce(&mut A, &mut Context<'_, A::Payload>),
    {
        let mut ctx = Context {
            self_id: peer,
            now: self.now,
            actions: Vec::new(),
            rng: &mut self.rng,
            online: &self.online,
        };
        f(&mut self.apps[peer.index()], &mut ctx);
        let actions = ctx.actions;
        for action in actions {
            match action {
                Action::Send {
                    to,
                    kind,
                    size_bytes,
                    payload,
                } => {
                    let delay = self.physical.delivery_delay(peer, to, size_bytes);
                    let env = Envelope {
                        from: peer,
                        to,
                        kind,
                        size_bytes,
                        sent_at: self.now,
                        payload,
                    };
                    let at = self.now + delay;
                    self.push_event(at, EventKind::Deliver(env));
                }
                Action::SetTimer { delay, timer } => {
                    let at = self.now + delay;
                    self.push_event(at, EventKind::Timer { peer, timer });
                }
                Action::Log { category, message } => {
                    self.log.log(self.now, Some(peer), category, message);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::ChurnModel;
    use crate::physical::PhysicalNetwork;

    /// A simple application: peer 0 pings every other peer on start; peers
    /// respond with a pong; everyone counts what they received.
    #[derive(Default)]
    struct PingPong {
        pings_received: usize,
        pongs_received: usize,
    }

    #[derive(Clone, PartialEq, Debug)]
    enum Msg {
        Ping,
        Pong,
    }

    impl Application for PingPong {
        type Payload = Msg;

        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            if ctx.self_id() == PeerId(0) {
                for p in ctx.online_peers() {
                    if p != ctx.self_id() {
                        ctx.send(p, MessageKind::Other, 32, Msg::Ping);
                    }
                }
            }
        }

        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: PeerId, payload: Msg) {
            match payload {
                Msg::Ping => {
                    self.pings_received += 1;
                    ctx.send(from, MessageKind::Other, 32, Msg::Pong);
                }
                Msg::Pong => self.pongs_received += 1,
            }
        }
    }

    fn engine(n: usize) -> Engine<PingPong> {
        let apps = (0..n).map(|_| PingPong::default()).collect();
        Engine::new(apps, PhysicalNetwork::default(), 1)
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut e = engine(10);
        e.run_to_completion();
        assert_eq!(e.app(PeerId(0)).pongs_received, 9);
        for i in 1..10u64 {
            assert_eq!(e.app(PeerId(i)).pings_received, 1);
        }
        assert_eq!(e.stats().total_messages(), 18);
        assert_eq!(e.stats().delivery_rate(), 1.0);
        assert!(e.now() > SimTime::ZERO);
    }

    #[test]
    fn horizon_limits_processing() {
        let mut e = engine(10);
        // Nothing can be delivered in the first microsecond except the start events.
        e.run(SimTime::from_micros(1), 1_000_000);
        assert_eq!(e.app(PeerId(0)).pongs_received, 0);
        e.run_to_completion();
        assert_eq!(e.app(PeerId(0)).pongs_received, 9);
    }

    #[test]
    fn offline_peers_drop_messages() {
        struct Broadcaster;
        impl Application for Broadcaster {
            type Payload = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                if ctx.self_id() == PeerId(0) {
                    // Deliberately send to every peer id, even offline ones.
                    for i in 0..4u64 {
                        if i != 0 {
                            ctx.send(PeerId(i), MessageKind::Other, 16, ());
                        }
                    }
                }
            }
            fn on_message(&mut self, _ctx: &mut Context<'_, ()>, _from: PeerId, _p: ()) {}
        }
        let apps = (0..4).map(|_| Broadcaster).collect();
        let mut e = Engine::new(apps, PhysicalNetwork::default(), 2);
        // Take peer 3 offline for the whole run.
        let timeline = ChurnTimeline::generate(ChurnModel::None, 4, SimTime::from_secs(1_000), 3);
        e.apply_churn(&timeline);
        e.push_event(SimTime::ZERO, EventKind::PeerOffline(PeerId(3)));
        e.run_to_completion();
        assert_eq!(e.stats().total_dropped(), 1);
        assert!(e.stats().delivery_rate() < 1.0);
    }

    #[test]
    fn timers_fire_in_order() {
        #[derive(Default)]
        struct TimerApp {
            fired: Vec<u64>,
        }
        impl Application for TimerApp {
            type Payload = ();
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.set_timer(SimTime::from_millis(20), 2);
                ctx.set_timer(SimTime::from_millis(10), 1);
                ctx.set_timer(SimTime::from_millis(30), 3);
            }
            fn on_message(&mut self, _ctx: &mut Context<'_, ()>, _from: PeerId, _p: ()) {}
            fn on_timer(&mut self, _ctx: &mut Context<'_, ()>, timer: u64) {
                self.fired.push(timer);
            }
        }
        let mut e = Engine::new(vec![TimerApp::default()], PhysicalNetwork::default(), 3);
        e.run_to_completion();
        assert_eq!(e.app(PeerId(0)).fired, vec![1, 2, 3]);
    }

    #[test]
    fn churned_out_peers_do_not_receive() {
        let mut e = engine(20);
        let timeline = ChurnTimeline::generate(
            ChurnModel::Exponential {
                mean_session_secs: 0.05,
                mean_offline_secs: 10.0,
            },
            20,
            SimTime::from_secs(100),
            5,
        );
        e.apply_churn(&timeline);
        e.run_to_completion();
        // With peers mostly offline, some of peer 0's pings must be dropped
        // (peer 0 itself may also churn out, in which case nothing is sent).
        let stats = e.stats();
        assert!(stats.total_dropped() > 0 || stats.total_messages() == 0);
    }

    #[test]
    fn event_cap_is_respected() {
        let mut e = engine(50);
        let processed = e.run(SimTime(u64::MAX), 10);
        assert_eq!(processed, 10);
    }
}
