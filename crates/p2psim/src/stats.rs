//! Communication and simulation statistics.
//!
//! P2PDMT's data-mining layer offers "evaluate performance" and "visualize
//! statistics" facilities (Figure 2). [`SimStats`] is the accounting backbone
//! of the reproduction: every message routed through the network facade or the
//! event engine is recorded here, broken down by traffic category and by peer,
//! so the experiment harness can report per-peer communication cost exactly as
//! the CEMPaR/PACE evaluations do.
//!
//! Per-peer counters are dense `Vec<u64>` columns indexed by [`PeerId`]
//! (peers are numbered densely from 0), not maps: recording a delivery is two
//! array stores instead of two `BTreeMap` probes, which matters when a
//! broadcast protocol records O(peers²) sends per round at 10k peers. A
//! [`PeerBitset`] tracks which peers ever *sent* anything, so the
//! "mean bytes per participating peer" denominator keeps the map-era
//! semantics (a peer that only received does not dilute the mean).

use crate::bitset::PeerBitset;
use crate::message::MessageKind;
use crate::peer::PeerId;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Counters for one traffic category.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KindStats {
    /// Messages sent (including ones later dropped).
    pub messages: u64,
    /// Bytes **delivered**. Dropped traffic is tracked separately in
    /// [`Self::bytes_dropped`] — folding both into one counter used to make
    /// the E3 communication tables silently mix delivered and lost traffic.
    pub bytes: u64,
    /// Bytes sent but never delivered (receiver offline, no route, …).
    pub bytes_dropped: u64,
    /// Messages that could not be delivered (receiver offline, no route, …).
    pub dropped: u64,
}

impl KindStats {
    /// Bytes put on the wire: delivered plus dropped (the sender paid for
    /// both).
    pub fn bytes_sent(&self) -> u64 {
        self.bytes + self.bytes_dropped
    }
}

/// Counters for the fault-injection layer and the reliability machinery
/// built on top of it. All zero when no [`crate::faults::FaultPlan`] is
/// active and no reliable sends retransmit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Messages dropped by random (non-burst) loss.
    pub lost: u64,
    /// Messages dropped while the burst channel was in its bad state.
    pub burst_lost: u64,
    /// Messages dropped by an active partition window.
    pub partition_drops: u64,
    /// Byte frames damaged in transit (bit flips or truncation).
    pub corrupted: u64,
    /// Deliveries delayed by a latency spike.
    pub latency_spikes: u64,
    /// Crash-restart events executed.
    pub crashes: u64,
    /// Reliable-send retransmission attempts (beyond each first attempt).
    pub retransmits: u64,
    /// Reliable sends that succeeded after at least one failed attempt.
    pub recovered: u64,
    /// Anti-entropy resync exchanges completed.
    pub resyncs: u64,
}

impl FaultStats {
    /// Total messages the fault layer removed from the network.
    pub fn total_fault_drops(&self) -> u64 {
        self.lost + self.burst_lost + self.partition_drops
    }

    fn merge(&mut self, other: &FaultStats) {
        self.lost += other.lost;
        self.burst_lost += other.burst_lost;
        self.partition_drops += other.partition_drops;
        self.corrupted += other.corrupted;
        self.latency_spikes += other.latency_spikes;
        self.crashes += other.crashes;
        self.retransmits += other.retransmits;
        self.recovered += other.recovered;
        self.resyncs += other.resyncs;
    }
}

/// Aggregated statistics of one simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimStats {
    by_kind: BTreeMap<MessageKind, KindStats>,
    /// Bytes sent, indexed by peer (grow-on-demand).
    bytes_sent_by_peer: Vec<u64>,
    /// Bytes received, indexed by peer (grow-on-demand).
    bytes_received_by_peer: Vec<u64>,
    /// Peers that recorded at least one send (delivered or dropped) — the
    /// denominator of [`Self::mean_bytes_sent_per_peer`].
    senders: PeerBitset,
    total_hops: u64,
    lookups: u64,
    latency_sum: SimTime,
    delivered: u64,
    /// Fault-injection and recovery counters.
    pub faults: FaultStats,
}

#[inline]
fn bump(column: &mut Vec<u64>, peer: PeerId, bytes: u64) {
    let i = peer.index();
    if i >= column.len() {
        column.resize(i + 1, 0);
    }
    column[i] += bytes;
}

impl SimStats {
    /// Creates an empty statistics collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes the per-peer columns for `num_peers` peers, so recording
    /// never reallocates mid-run.
    pub fn with_peers(num_peers: usize) -> Self {
        Self {
            bytes_sent_by_peer: vec![0; num_peers],
            bytes_received_by_peer: vec![0; num_peers],
            senders: PeerBitset::new(num_peers),
            ..Self::default()
        }
    }

    /// Records a successfully delivered message.
    pub fn record_delivery(
        &mut self,
        from: PeerId,
        to: PeerId,
        kind: MessageKind,
        bytes: usize,
        latency: SimTime,
    ) {
        let k = self.by_kind.entry(kind).or_default();
        k.messages += 1;
        k.bytes += bytes as u64;
        bump(&mut self.bytes_sent_by_peer, from, bytes as u64);
        bump(&mut self.bytes_received_by_peer, to, bytes as u64);
        self.senders.insert(from);
        self.latency_sum += latency;
        self.delivered += 1;
    }

    /// Records a message that was sent but never delivered. The bytes are
    /// charged to the sender (they were put on the wire) and to the kind's
    /// `bytes_dropped` counter — never to its delivered `bytes`.
    pub fn record_drop(&mut self, from: PeerId, kind: MessageKind, bytes: usize) {
        let k = self.by_kind.entry(kind).or_default();
        k.messages += 1;
        k.bytes_dropped += bytes as u64;
        k.dropped += 1;
        bump(&mut self.bytes_sent_by_peer, from, bytes as u64);
        self.senders.insert(from);
    }

    /// Records the hop count of a DHT lookup.
    pub fn record_lookup(&mut self, hops: usize) {
        self.total_hops += hops as u64;
        self.lookups += 1;
    }

    /// Per-category counters.
    pub fn by_kind(&self) -> &BTreeMap<MessageKind, KindStats> {
        &self.by_kind
    }

    /// Counters for one category (zeroes if the category never occurred).
    pub fn kind(&self, kind: MessageKind) -> KindStats {
        self.by_kind.get(&kind).copied().unwrap_or_default()
    }

    /// Total messages sent across all categories.
    pub fn total_messages(&self) -> u64 {
        self.by_kind.values().map(|k| k.messages).sum()
    }

    /// Total bytes *sent* across all categories — delivered plus dropped,
    /// i.e. everything that was put on the wire and paid for by a sender.
    pub fn total_bytes(&self) -> u64 {
        self.by_kind.values().map(KindStats::bytes_sent).sum()
    }

    /// Total bytes actually *delivered* across all categories.
    pub fn total_bytes_delivered(&self) -> u64 {
        self.by_kind.values().map(|k| k.bytes).sum()
    }

    /// Total bytes sent but never delivered across all categories.
    pub fn total_bytes_dropped(&self) -> u64 {
        self.by_kind.values().map(|k| k.bytes_dropped).sum()
    }

    /// Total messages dropped.
    pub fn total_dropped(&self) -> u64 {
        self.by_kind.values().map(|k| k.dropped).sum()
    }

    /// Number of delivered messages.
    pub fn total_delivered(&self) -> u64 {
        self.delivered
    }

    /// Fraction of sent messages that were delivered (1.0 when nothing was sent).
    pub fn delivery_rate(&self) -> f64 {
        let sent = self.total_messages();
        if sent == 0 {
            return 1.0;
        }
        self.delivered as f64 / sent as f64
    }

    /// Bytes sent by a given peer.
    pub fn bytes_sent_by(&self, peer: PeerId) -> u64 {
        self.bytes_sent_by_peer
            .get(peer.index())
            .copied()
            .unwrap_or(0)
    }

    /// Bytes received by a given peer.
    pub fn bytes_received_by(&self, peer: PeerId) -> u64 {
        self.bytes_received_by_peer
            .get(peer.index())
            .copied()
            .unwrap_or(0)
    }

    /// Number of peers that sent at least one message.
    pub fn num_senders(&self) -> usize {
        self.senders.len()
    }

    /// Average bytes sent per participating peer (0.0 when no peer sent data).
    pub fn mean_bytes_sent_per_peer(&self) -> f64 {
        if self.senders.is_empty() {
            return 0.0;
        }
        self.total_bytes() as f64 / self.senders.len() as f64
    }

    /// Maximum bytes sent by any single peer (the hot-spot load).
    pub fn max_bytes_sent_by_any_peer(&self) -> u64 {
        self.bytes_sent_by_peer.iter().copied().max().unwrap_or(0)
    }

    /// Maximum bytes *received* by any single peer (super-peers concentrate load here).
    pub fn max_bytes_received_by_any_peer(&self) -> u64 {
        self.bytes_received_by_peer
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Mean hops per recorded DHT lookup.
    pub fn mean_lookup_hops(&self) -> f64 {
        if self.lookups == 0 {
            return 0.0;
        }
        self.total_hops as f64 / self.lookups as f64
    }

    /// Mean delivery latency over all delivered messages.
    pub fn mean_latency(&self) -> SimTime {
        if self.delivered == 0 {
            return SimTime::ZERO;
        }
        SimTime(self.latency_sum.0 / self.delivered)
    }

    /// Merges another statistics object into this one.
    pub fn merge(&mut self, other: &SimStats) {
        for (&kind, ks) in &other.by_kind {
            let k = self.by_kind.entry(kind).or_default();
            k.messages += ks.messages;
            k.bytes += ks.bytes;
            k.bytes_dropped += ks.bytes_dropped;
            k.dropped += ks.dropped;
        }
        for (i, &b) in other.bytes_sent_by_peer.iter().enumerate() {
            if b > 0 {
                bump(&mut self.bytes_sent_by_peer, PeerId::from(i), b);
            }
        }
        for (i, &b) in other.bytes_received_by_peer.iter().enumerate() {
            if b > 0 {
                bump(&mut self.bytes_received_by_peer, PeerId::from(i), b);
            }
        }
        for p in other.senders.ones() {
            self.senders.insert(p);
        }
        self.total_hops += other.total_hops;
        self.lookups += other.lookups;
        self.latency_sum += other.latency_sum;
        self.delivered += other.delivered;
        self.faults.merge(&other.faults);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_accounting() {
        let mut s = SimStats::new();
        s.record_delivery(
            PeerId(0),
            PeerId(1),
            MessageKind::ModelPropagation,
            100,
            SimTime::from_millis(10),
        );
        s.record_delivery(
            PeerId(0),
            PeerId(2),
            MessageKind::ModelPropagation,
            50,
            SimTime::from_millis(30),
        );
        assert_eq!(s.total_messages(), 2);
        assert_eq!(s.total_bytes(), 150);
        assert_eq!(s.bytes_sent_by(PeerId(0)), 150);
        assert_eq!(s.bytes_received_by(PeerId(1)), 100);
        assert_eq!(s.delivery_rate(), 1.0);
        assert_eq!(s.mean_latency(), SimTime::from_millis(20));
        assert_eq!(s.kind(MessageKind::ModelPropagation).messages, 2);
        assert_eq!(s.kind(MessageKind::DhtLookup).messages, 0);
    }

    #[test]
    fn drops_lower_the_delivery_rate() {
        let mut s = SimStats::new();
        s.record_delivery(PeerId(0), PeerId(1), MessageKind::Other, 10, SimTime::ZERO);
        s.record_drop(PeerId(0), MessageKind::Other, 10);
        assert_eq!(s.total_dropped(), 1);
        assert!((s.delivery_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dropped_bytes_are_tracked_separately_from_delivered() {
        let mut s = SimStats::new();
        s.record_delivery(
            PeerId(0),
            PeerId(1),
            MessageKind::ModelPropagation,
            100,
            SimTime::ZERO,
        );
        s.record_drop(PeerId(0), MessageKind::ModelPropagation, 40);
        let k = s.kind(MessageKind::ModelPropagation);
        assert_eq!(k.bytes, 100, "delivered bytes exclude the drop");
        assert_eq!(k.bytes_dropped, 40);
        assert_eq!(k.bytes_sent(), 140);
        assert_eq!(s.total_bytes(), 140, "sent view counts both");
        assert_eq!(s.total_bytes_delivered(), 100);
        assert_eq!(s.total_bytes_dropped(), 40);
        // The sender paid for the dropped bytes too.
        assert_eq!(s.bytes_sent_by(PeerId(0)), 140);
        assert_eq!(s.bytes_received_by(PeerId(1)), 100);
    }

    #[test]
    fn bytes_sent_is_delivered_plus_dropped_across_kinds_and_merges() {
        // The wire-cost identity `bytes_sent() == bytes + bytes_dropped` must
        // hold per kind and in the totals, across a mixed traffic pattern and
        // after merging partial collectors.
        let mut s = SimStats::new();
        let kinds = [
            MessageKind::ModelPropagation,
            MessageKind::DhtLookup,
            MessageKind::Other,
        ];
        for (i, &kind) in kinds.iter().enumerate() {
            s.record_delivery(PeerId(0), PeerId(1), kind, 100 + i, SimTime::ZERO);
            s.record_drop(PeerId(2), kind, 10 * (i + 1));
            s.record_drop(PeerId(2), kind, 1);
        }
        for &kind in &kinds {
            let k = s.kind(kind);
            assert_eq!(k.bytes_sent(), k.bytes + k.bytes_dropped);
            assert_eq!(k.messages, 3);
            assert_eq!(k.dropped, 2);
        }
        assert_eq!(
            s.total_bytes(),
            s.total_bytes_delivered() + s.total_bytes_dropped()
        );
        // 303 delivered + (10+1 + 20+1 + 30+1) dropped.
        assert_eq!(s.total_bytes_delivered(), 303);
        assert_eq!(s.total_bytes_dropped(), 63);
        assert_eq!(s.total_bytes(), 366);
        // Per-peer accounting matches: sender paid for drops, receiver only
        // saw deliveries.
        assert_eq!(s.bytes_sent_by(PeerId(0)), 303);
        assert_eq!(s.bytes_sent_by(PeerId(2)), 63);
        assert_eq!(s.bytes_received_by(PeerId(1)), 303);
        // The identity survives a merge of disjoint partial collectors.
        let mut other = SimStats::new();
        other.record_drop(PeerId(3), MessageKind::ModelPropagation, 500);
        other.record_delivery(
            PeerId(3),
            PeerId(0),
            MessageKind::DhtLookup,
            7,
            SimTime::ZERO,
        );
        let (sent_a, del_a, drop_a) = (
            s.total_bytes(),
            s.total_bytes_delivered(),
            s.total_bytes_dropped(),
        );
        s.merge(&other);
        assert_eq!(s.total_bytes(), sent_a + 507);
        assert_eq!(s.total_bytes_delivered(), del_a + 7);
        assert_eq!(s.total_bytes_dropped(), drop_a + 500);
        assert_eq!(
            s.total_bytes(),
            s.total_bytes_delivered() + s.total_bytes_dropped()
        );
        for &kind in &kinds {
            let k = s.kind(kind);
            assert_eq!(k.bytes_sent(), k.bytes + k.bytes_dropped);
        }
    }

    #[test]
    fn lookup_hops_average() {
        let mut s = SimStats::new();
        s.record_lookup(3);
        s.record_lookup(5);
        assert_eq!(s.mean_lookup_hops(), 4.0);
        assert_eq!(SimStats::new().mean_lookup_hops(), 0.0);
    }

    #[test]
    fn per_peer_maxima() {
        let mut s = SimStats::new();
        s.record_delivery(PeerId(0), PeerId(9), MessageKind::Other, 10, SimTime::ZERO);
        s.record_delivery(PeerId(1), PeerId(9), MessageKind::Other, 30, SimTime::ZERO);
        assert_eq!(s.max_bytes_sent_by_any_peer(), 30);
        assert_eq!(s.max_bytes_received_by_any_peer(), 40);
        assert!(s.mean_bytes_sent_per_peer() > 0.0);
    }

    #[test]
    fn mean_counts_participating_senders_only() {
        // Receivers that never sent must not dilute the per-peer mean, and
        // the denominator counts distinct senders, however sparse their ids.
        let mut s = SimStats::with_peers(1000);
        s.record_delivery(
            PeerId(5),
            PeerId(900),
            MessageKind::Other,
            100,
            SimTime::ZERO,
        );
        s.record_drop(PeerId(700), MessageKind::Other, 50);
        assert_eq!(s.num_senders(), 2);
        assert!((s.mean_bytes_sent_per_peer() - 75.0).abs() < 1e-12);
    }

    #[test]
    fn merge_combines_counters() {
        let mut a = SimStats::new();
        a.record_delivery(PeerId(0), PeerId(1), MessageKind::Other, 10, SimTime::ZERO);
        let mut b = SimStats::new();
        b.record_drop(PeerId(1), MessageKind::Other, 20);
        b.record_lookup(4);
        a.merge(&b);
        assert_eq!(a.total_messages(), 2);
        assert_eq!(a.total_bytes(), 30);
        assert_eq!(a.total_bytes_delivered(), 10);
        assert_eq!(a.total_bytes_dropped(), 20);
        assert_eq!(a.total_dropped(), 1);
        assert_eq!(a.mean_lookup_hops(), 4.0);
        assert_eq!(a.num_senders(), 2);
    }

    #[test]
    fn empty_stats_defaults() {
        let s = SimStats::new();
        assert_eq!(s.delivery_rate(), 1.0);
        assert_eq!(s.mean_latency(), SimTime::ZERO);
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.mean_bytes_sent_per_peer(), 0.0);
    }
}
