//! Round-based network facade for P2P data-mining protocols.
//!
//! The CEMPaR and PACE protocols are naturally phased (train locally →
//! propagate models → answer prediction queries). Rather than forcing every
//! protocol into the event-driven engine, P2PDMT exposes this facade: the
//! protocol asks the network to deliver messages, perform DHT lookups, or
//! broadcast, and the facade handles overlay routing, churn-induced failures,
//! latency accumulation and full per-kind / per-peer cost accounting.
//! Simulated time advances explicitly via [`P2PNetwork::advance`], so a
//! protocol phase can be placed anywhere on the churn timeline.

use crate::bitset::{Ones, PeerBitset};
use crate::churn::ChurnTimeline;
use crate::config::SimConfig;
use crate::logging::ActivityLog;
use crate::message::MessageKind;
use crate::overlay::{AnyOverlay, Overlay, SuperPeerDirectory};
use crate::peer::PeerId;
use crate::physical::PhysicalNetwork;
use crate::stats::SimStats;
use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Why a message could not be delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeliveryError {
    /// The sending peer is currently offline.
    SenderOffline,
    /// The destination peer is currently offline.
    ReceiverOffline,
    /// The overlay could not route the key (failed flooding search, empty ring).
    NoRoute,
}

impl std::fmt::Display for DeliveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DeliveryError::SenderOffline => "sender offline",
            DeliveryError::ReceiverOffline => "receiver offline",
            DeliveryError::NoRoute => "no route to key owner",
        };
        f.write_str(s)
    }
}

impl std::error::Error for DeliveryError {}

/// Size in bytes charged for one DHT routing hop (header-sized control message).
const LOOKUP_HOP_BYTES: usize = 64;

/// The round-based simulated P2P network.
pub struct P2PNetwork {
    config: SimConfig,
    overlay: AnyOverlay,
    physical: PhysicalNetwork,
    churn: ChurnTimeline,
    /// Cached set of peers online at `now`, refreshed whenever time moves
    /// ([`Self::advance`]). Makes `is_online` an O(1) bit test instead of a
    /// per-call scan of the churn intervals, and `online_peers` an
    /// allocation-free iterator.
    online: PeerBitset,
    stats: SimStats,
    log: ActivityLog,
    now: SimTime,
    rng: StdRng,
}

impl P2PNetwork {
    /// Builds a network from a configuration: generates the overlay over all
    /// peers, the physical underlay and the churn timeline, then synchronizes
    /// overlay membership with the peers online at time zero.
    pub fn new(config: SimConfig) -> Self {
        let overlay = config.build_overlay();
        let physical = PhysicalNetwork::new(config.physical.clone());
        let churn = ChurnTimeline::generate(
            config.churn,
            config.num_peers,
            config.horizon(),
            config.seed,
        );
        let rng = StdRng::seed_from_u64(config.seed ^ 0xFEED_FACE);
        let num_peers = config.num_peers;
        let mut net = Self {
            config,
            overlay,
            physical,
            churn,
            online: PeerBitset::new(num_peers),
            stats: SimStats::with_peers(num_peers),
            log: ActivityLog::default(),
            now: SimTime::ZERO,
            rng,
        };
        net.sync_overlay_membership();
        net
    }

    /// The configuration this network was built from.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Total number of peers (online or not).
    pub fn num_peers(&self) -> usize {
        self.config.num_peers
    }

    /// All peer ids.
    pub fn peers(&self) -> impl Iterator<Item = PeerId> {
        (0..self.config.num_peers as u64).map(PeerId)
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances simulated time and updates overlay membership to reflect churn.
    pub fn advance(&mut self, dt: SimTime) {
        self.now += dt;
        self.sync_overlay_membership();
    }

    /// Deterministic RNG tied to this network's seed.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Whether a peer is currently online. O(1) against the cached bitset.
    pub fn is_online(&self, peer: PeerId) -> bool {
        self.online.contains(peer)
    }

    /// Iterates all currently online peers in ascending id order, without
    /// allocating.
    pub fn online_peers(&self) -> Ones<'_> {
        self.online.ones()
    }

    /// Number of peers currently online. O(1).
    pub fn num_online(&self) -> usize {
        self.online.len()
    }

    /// Fraction of peers currently online.
    pub fn availability(&self) -> f64 {
        if self.config.num_peers == 0 {
            return 0.0;
        }
        self.online.len() as f64 / self.config.num_peers as f64
    }

    /// The overlay (read access, e.g. for super-peer election).
    pub fn overlay(&self) -> &AnyOverlay {
        &self.overlay
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The activity log.
    pub fn log(&self) -> &ActivityLog {
        &self.log
    }

    /// Mutable activity log (for protocol-level annotations).
    pub fn log_mut(&mut self) -> &mut ActivityLog {
        &mut self.log
    }

    /// Builds a super-peer directory with `regions` regions over this overlay.
    pub fn super_peer_directory(&self, regions: usize) -> SuperPeerDirectory {
        SuperPeerDirectory::new(regions)
    }

    /// Sends `size_bytes` of category `kind` from `from` to `to`.
    ///
    /// On success returns the one-way delivery latency; on failure the traffic
    /// is still charged to the sender (the bytes were put on the wire) and the
    /// appropriate error is returned.
    pub fn send(
        &mut self,
        from: PeerId,
        to: PeerId,
        kind: MessageKind,
        size_bytes: usize,
    ) -> Result<SimTime, DeliveryError> {
        if !self.is_online(from) {
            return Err(DeliveryError::SenderOffline);
        }
        if !self.is_online(to) {
            self.stats.record_drop(from, kind, size_bytes);
            return Err(DeliveryError::ReceiverOffline);
        }
        let latency = self.physical.delivery_delay(from, to, size_bytes);
        self.stats
            .record_delivery(from, to, kind, size_bytes, latency);
        Ok(latency)
    }

    /// Routes `key` through the overlay starting at `from`, charging one small
    /// control message per overlay hop. Returns the owner and the hop count.
    pub fn dht_lookup(&mut self, from: PeerId, key: u64) -> Result<(PeerId, usize), DeliveryError> {
        if !self.is_online(from) {
            return Err(DeliveryError::SenderOffline);
        }
        let result = self
            .overlay
            .lookup(from, key)
            .ok_or(DeliveryError::NoRoute)?;
        // Charge each routing message along the path.
        let mut prev = from;
        for &hop in &result.path {
            let latency = self.physical.delivery_delay(prev, hop, LOOKUP_HOP_BYTES);
            self.stats.record_delivery(
                prev,
                hop,
                MessageKind::DhtLookup,
                LOOKUP_HOP_BYTES,
                latency,
            );
            prev = hop;
        }
        // Flooding overlays may have spent more messages than the path length.
        let extra = result.messages.saturating_sub(result.path.len());
        for _ in 0..extra {
            self.stats.record_delivery(
                from,
                result.owner,
                MessageKind::DhtLookup,
                LOOKUP_HOP_BYTES,
                SimTime::ZERO,
            );
        }
        self.stats.record_lookup(result.hops());
        Ok((result.owner, result.hops()))
    }

    /// Sends `size_bytes` of `kind` from `from` to every other online peer.
    /// Returns the number of peers actually reached.
    pub fn broadcast(&mut self, from: PeerId, kind: MessageKind, size_bytes: usize) -> usize {
        if !self.is_online(from) {
            return 0;
        }
        // Index walk + O(1) bit tests: no target list is materialized even
        // when 10k peers are online.
        let mut reached = 0;
        for i in 0..self.config.num_peers {
            let to = PeerId::from(i);
            if to != from
                && self.online.contains(to)
                && self.send(from, to, kind, size_bytes).is_ok()
            {
                reached += 1;
            }
        }
        reached
    }

    fn sync_overlay_membership(&mut self) {
        let now = self.now;
        for i in 0..self.config.num_peers {
            let p = PeerId::from(i);
            let online = self.churn.is_online(p, now);
            self.online.set(p, online);
            let member = self.overlay.contains(p);
            if online && !member {
                self.overlay.add_peer(p);
                self.log.log(now, Some(p), "join", "peer joined overlay");
            } else if !online && member {
                self.overlay.remove_peer(p);
                self.log.log(now, Some(p), "leave", "peer left overlay");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::ChurnModel;
    use crate::config::OverlayKind;
    use crate::peer::content_key;

    fn small_network(num_peers: usize) -> P2PNetwork {
        P2PNetwork::new(SimConfig {
            num_peers,
            horizon_secs: 10_000,
            ..Default::default()
        })
    }

    #[test]
    fn send_between_online_peers_succeeds_and_is_accounted() {
        let mut net = small_network(8);
        let latency = net
            .send(PeerId(0), PeerId(1), MessageKind::ModelPropagation, 500)
            .unwrap();
        assert!(latency > SimTime::ZERO);
        assert_eq!(net.stats().total_bytes(), 500);
        assert_eq!(net.stats().kind(MessageKind::ModelPropagation).messages, 1);
    }

    #[test]
    fn dht_lookup_charges_per_hop() {
        let mut net = small_network(64);
        let (owner, hops) = net.dht_lookup(PeerId(3), content_key(b"rust")).unwrap();
        assert!(net.peers().any(|p| p == owner));
        assert!(hops >= 1);
        assert_eq!(
            net.stats().kind(MessageKind::DhtLookup).messages as usize,
            hops
        );
        assert!(net.stats().mean_lookup_hops() >= 1.0);
    }

    #[test]
    fn broadcast_reaches_all_other_online_peers() {
        let mut net = small_network(16);
        let reached = net.broadcast(PeerId(0), MessageKind::CentroidPropagation, 100);
        assert_eq!(reached, 15);
        assert_eq!(net.stats().total_bytes(), 1_500);
    }

    #[test]
    fn churn_takes_peers_offline_and_send_fails() {
        let mut net = P2PNetwork::new(SimConfig {
            num_peers: 64,
            churn: ChurnModel::Exponential {
                mean_session_secs: 100.0,
                mean_offline_secs: 100.0,
            },
            horizon_secs: 10_000,
            ..Default::default()
        });
        net.advance(SimTime::from_secs(5_000));
        let availability = net.availability();
        assert!(availability < 0.95, "availability {availability}");
        // Find an offline peer and check that sends to it fail.
        let offline = net
            .peers()
            .find(|&p| !net.is_online(p))
            .expect("some peer is offline under 50% availability churn");
        let online = net.peers().find(|&p| net.is_online(p)).unwrap();
        assert_eq!(
            net.send(online, offline, MessageKind::Other, 10),
            Err(DeliveryError::ReceiverOffline)
        );
        assert_eq!(
            net.send(offline, online, MessageKind::Other, 10),
            Err(DeliveryError::SenderOffline)
        );
        // Overlay membership must match the online set.
        assert_eq!(net.overlay().len(), net.num_online());
        assert_eq!(net.online_peers().count(), net.num_online());
    }

    #[test]
    fn unstructured_overlay_lookups_work_via_facade() {
        let mut net = P2PNetwork::new(SimConfig {
            num_peers: 64,
            overlay: OverlayKind::Unstructured { degree: 6, ttl: 6 },
            ..Default::default()
        });
        let result = net.dht_lookup(PeerId(5), content_key(b"database"));
        assert!(result.is_ok());
        // Flooding charges at least as many messages as a structured lookup.
        assert!(net.stats().kind(MessageKind::DhtLookup).messages >= 1);
    }

    #[test]
    fn offline_sender_cannot_lookup_or_broadcast() {
        let mut net = P2PNetwork::new(SimConfig {
            num_peers: 16,
            churn: ChurnModel::Exponential {
                mean_session_secs: 1.0,
                mean_offline_secs: 1_000.0,
            },
            horizon_secs: 10_000,
            ..Default::default()
        });
        net.advance(SimTime::from_secs(5_000));
        let offline = net
            .peers()
            .find(|&p| !net.is_online(p))
            .expect("nearly everyone is offline");
        assert_eq!(
            net.dht_lookup(offline, 1),
            Err(DeliveryError::SenderOffline)
        );
        assert_eq!(net.broadcast(offline, MessageKind::Other, 1), 0);
    }

    #[test]
    fn advancing_time_is_monotonic() {
        let mut net = small_network(4);
        let t0 = net.now();
        net.advance(SimTime::from_secs(10));
        assert_eq!(net.now(), t0 + SimTime::from_secs(10));
    }
}
