//! Round-based network facade for P2P data-mining protocols.
//!
//! The CEMPaR and PACE protocols are naturally phased (train locally →
//! propagate models → answer prediction queries). Rather than forcing every
//! protocol into the event-driven engine, P2PDMT exposes this facade: the
//! protocol asks the network to deliver messages, perform DHT lookups, or
//! broadcast, and the facade handles overlay routing, churn-induced failures,
//! latency accumulation and full per-kind / per-peer cost accounting.
//! Simulated time advances explicitly via [`P2PNetwork::advance`], so a
//! protocol phase can be placed anywhere on the churn timeline.

use crate::bitset::{Ones, PeerBitset};
use crate::churn::ChurnTimeline;
use crate::config::SimConfig;
use crate::faults::{FaultDrop, FaultState, PartitionWindow, SendFault};
use crate::logging::ActivityLog;
use crate::message::MessageKind;
use crate::overlay::{AnyOverlay, Overlay, SuperPeerDirectory};
use crate::peer::PeerId;
use crate::physical::PhysicalNetwork;
use crate::stats::SimStats;
use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Why a message could not be delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeliveryError {
    /// The sending peer is currently offline.
    SenderOffline,
    /// The destination peer is currently offline.
    ReceiverOffline,
    /// The overlay could not route the key (failed flooding search, empty ring).
    NoRoute,
    /// The fault layer dropped the message (random or burst loss).
    Lost,
    /// The fault layer dropped the message: an active partition window
    /// severs the sender from the receiver.
    Partitioned,
}

impl std::fmt::Display for DeliveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DeliveryError::SenderOffline => "sender offline",
            DeliveryError::ReceiverOffline => "receiver offline",
            DeliveryError::NoRoute => "no route to key owner",
            DeliveryError::Lost => "message lost in transit",
            DeliveryError::Partitioned => "network partition between peers",
        };
        f.write_str(s)
    }
}

impl std::error::Error for DeliveryError {}

/// Size in bytes charged for one DHT routing hop (header-sized control message).
const LOOKUP_HOP_BYTES: usize = 64;

/// Outcome of a successful byte-frame send ([`P2PNetwork::send_frame`]).
#[derive(Debug, Clone)]
pub struct FrameDelivery {
    /// One-way delivery latency (including any fault-injected spike/jitter).
    pub latency: SimTime,
    /// `Some(bytes)` when the fault layer damaged the frame in transit —
    /// these are the bytes the receiver sees. `None` means the frame arrived
    /// intact (the clean path copies nothing).
    pub corrupted: Option<Vec<u8>>,
}

/// The round-based simulated P2P network.
pub struct P2PNetwork {
    config: SimConfig,
    overlay: AnyOverlay,
    physical: PhysicalNetwork,
    churn: ChurnTimeline,
    /// Cached set of peers online at `now`, refreshed whenever time moves
    /// ([`Self::advance`]). Makes `is_online` an O(1) bit test instead of a
    /// per-call scan of the churn intervals, and `online_peers` an
    /// allocation-free iterator.
    online: PeerBitset,
    stats: SimStats,
    log: ActivityLog,
    now: SimTime,
    rng: StdRng,
    /// Executes the configured fault plan from its own seeded RNG stream
    /// (RNG-neutral when the plan is disabled).
    faults: FaultState,
    /// Peers crashed since the last [`Self::drain_crash_restarts`] call.
    crashed: Vec<PeerId>,
    /// Partition windows healed since the last
    /// [`Self::drain_healed_partitions`] call.
    healed: Vec<PartitionWindow>,
}

impl P2PNetwork {
    /// Builds a network from a configuration: generates the overlay over all
    /// peers, the physical underlay and the churn timeline, then synchronizes
    /// overlay membership with the peers online at time zero.
    pub fn new(config: SimConfig) -> Self {
        let overlay = config.build_overlay();
        let physical = PhysicalNetwork::new(config.physical.clone());
        let churn = ChurnTimeline::generate(
            config.churn,
            config.num_peers,
            config.horizon(),
            config.seed,
        );
        let rng = StdRng::seed_from_u64(config.seed ^ 0xFEED_FACE);
        let faults = FaultState::new(config.faults.clone(), config.seed);
        let num_peers = config.num_peers;
        let mut net = Self {
            config,
            overlay,
            physical,
            churn,
            online: PeerBitset::new(num_peers),
            stats: SimStats::with_peers(num_peers),
            log: ActivityLog::default(),
            now: SimTime::ZERO,
            rng,
            faults,
            crashed: Vec::new(),
            healed: Vec::new(),
        };
        net.sync_overlay_membership();
        net
    }

    /// The configuration this network was built from.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Total number of peers (online or not).
    pub fn num_peers(&self) -> usize {
        self.config.num_peers
    }

    /// All peer ids.
    pub fn peers(&self) -> impl Iterator<Item = PeerId> {
        (0..self.config.num_peers as u64).map(PeerId)
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances simulated time and updates overlay membership to reflect
    /// churn. Crash-restart events and partition heals scheduled inside the
    /// window are executed here and buffered for
    /// [`Self::drain_crash_restarts`] / [`Self::drain_healed_partitions`].
    pub fn advance(&mut self, dt: SimTime) {
        let from = self.now;
        let to = self.now + dt;
        let mut crashed = Vec::new();
        self.faults
            .crashes_between(from, to, self.config.num_peers, &mut crashed);
        self.healed.extend(self.faults.healed_between(from, to));
        self.now = to;
        self.sync_overlay_membership();
        for p in crashed {
            // A crash of a peer that churn already has offline is a no-op:
            // there is no in-memory state to lose.
            if self.online.contains(p) {
                self.stats.faults.crashes += 1;
                self.log.log(to, Some(p), "crash", "peer crash-restarted");
                self.crashed.push(p);
            }
        }
    }

    /// Peers that crash-restarted since the last call, in event order. A
    /// crashed peer stays online but loses its in-memory protocol state —
    /// the protocol layer is expected to wipe and recover it.
    pub fn drain_crash_restarts(&mut self) -> Vec<PeerId> {
        std::mem::take(&mut self.crashed)
    }

    /// Partition windows whose heal time passed since the last call. The
    /// protocol layer can run anti-entropy for the peers that were cut off.
    pub fn drain_healed_partitions(&mut self) -> Vec<PartitionWindow> {
        std::mem::take(&mut self.healed)
    }

    /// Records a reliability-layer retransmission attempt (for stats).
    pub fn note_retransmit(&mut self) {
        self.stats.faults.retransmits += 1;
    }

    /// Records a reliable send that succeeded after at least one failure.
    pub fn note_recovered(&mut self) {
        self.stats.faults.recovered += 1;
    }

    /// Records a completed anti-entropy resync exchange.
    pub fn note_resync(&mut self) {
        self.stats.faults.resyncs += 1;
    }

    /// Deterministic RNG tied to this network's seed.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Whether a peer is currently online. O(1) against the cached bitset.
    pub fn is_online(&self, peer: PeerId) -> bool {
        self.online.contains(peer)
    }

    /// Iterates all currently online peers in ascending id order, without
    /// allocating.
    pub fn online_peers(&self) -> Ones<'_> {
        self.online.ones()
    }

    /// Number of peers currently online. O(1).
    pub fn num_online(&self) -> usize {
        self.online.len()
    }

    /// Fraction of peers currently online.
    pub fn availability(&self) -> f64 {
        if self.config.num_peers == 0 {
            return 0.0;
        }
        self.online.len() as f64 / self.config.num_peers as f64
    }

    /// The overlay (read access, e.g. for super-peer election).
    pub fn overlay(&self) -> &AnyOverlay {
        &self.overlay
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The activity log.
    pub fn log(&self) -> &ActivityLog {
        &self.log
    }

    /// Mutable activity log (for protocol-level annotations).
    pub fn log_mut(&mut self) -> &mut ActivityLog {
        &mut self.log
    }

    /// Builds a super-peer directory with `regions` regions over this overlay.
    pub fn super_peer_directory(&self, regions: usize) -> SuperPeerDirectory {
        SuperPeerDirectory::new(regions)
    }

    /// Sends `size_bytes` of category `kind` from `from` to `to`.
    ///
    /// On success returns the one-way delivery latency; on failure the traffic
    /// is still charged to the sender (the bytes were put on the wire) and the
    /// appropriate error is returned.
    pub fn send(
        &mut self,
        from: PeerId,
        to: PeerId,
        kind: MessageKind,
        size_bytes: usize,
    ) -> Result<SimTime, DeliveryError> {
        let extra = self.admit(from, to, kind, size_bytes)?;
        let latency = self.physical.delivery_delay(from, to, size_bytes) + extra;
        self.stats
            .record_delivery(from, to, kind, size_bytes, latency);
        Ok(latency)
    }

    /// Sends an encoded byte frame from `from` to `to`, charging its exact
    /// length. Unlike [`Self::send`] (which moves only a size), the fault
    /// layer can damage the frame in transit: the returned
    /// [`FrameDelivery::corrupted`] carries the bytes the receiver actually
    /// sees (`None` = intact, and nothing was copied). Frame bytes are
    /// charged in full even when the delivered frame was truncated — the
    /// sender paid to put them on the wire.
    pub fn send_frame(
        &mut self,
        from: PeerId,
        to: PeerId,
        kind: MessageKind,
        frame: &[u8],
    ) -> Result<FrameDelivery, DeliveryError> {
        let extra = self.admit(from, to, kind, frame.len())?;
        let latency = self.physical.delivery_delay(from, to, frame.len()) + extra;
        self.stats
            .record_delivery(from, to, kind, frame.len(), latency);
        let corrupted = self.faults.corrupt_frame(frame).map(|(bytes, _)| {
            self.stats.faults.corrupted += 1;
            bytes
        });
        Ok(FrameDelivery { latency, corrupted })
    }

    /// Shared admission path of [`Self::send`] / [`Self::send_frame`]:
    /// online checks, then the fault layer's verdict. Fault drops are
    /// charged like churn drops (the bytes were put on the wire) and
    /// counted in [`crate::stats::FaultStats`]. Returns the extra
    /// fault-injected latency to add to the physical delay.
    fn admit(
        &mut self,
        from: PeerId,
        to: PeerId,
        kind: MessageKind,
        size_bytes: usize,
    ) -> Result<SimTime, DeliveryError> {
        if !self.is_online(from) {
            return Err(DeliveryError::SenderOffline);
        }
        if !self.is_online(to) {
            self.stats.record_drop(from, kind, size_bytes);
            return Err(DeliveryError::ReceiverOffline);
        }
        match self.faults.on_send(self.now, from, to) {
            SendFault::Deliver {
                extra_latency,
                spiked,
            } => {
                if spiked {
                    self.stats.faults.latency_spikes += 1;
                }
                Ok(extra_latency)
            }
            SendFault::Drop(drop) => {
                self.stats.record_drop(from, kind, size_bytes);
                match drop {
                    FaultDrop::Loss { burst: true } => {
                        self.stats.faults.burst_lost += 1;
                        Err(DeliveryError::Lost)
                    }
                    FaultDrop::Loss { burst: false } => {
                        self.stats.faults.lost += 1;
                        Err(DeliveryError::Lost)
                    }
                    FaultDrop::Partitioned => {
                        self.stats.faults.partition_drops += 1;
                        Err(DeliveryError::Partitioned)
                    }
                }
            }
        }
    }

    /// Routes `key` through the overlay starting at `from`, charging one small
    /// control message per overlay hop. Returns the owner and the hop count.
    pub fn dht_lookup(&mut self, from: PeerId, key: u64) -> Result<(PeerId, usize), DeliveryError> {
        if !self.is_online(from) {
            return Err(DeliveryError::SenderOffline);
        }
        let result = self
            .overlay
            .lookup(from, key)
            .ok_or(DeliveryError::NoRoute)?;
        // Charge each routing message along the path.
        let mut prev = from;
        for &hop in &result.path {
            let latency = self.physical.delivery_delay(prev, hop, LOOKUP_HOP_BYTES);
            self.stats.record_delivery(
                prev,
                hop,
                MessageKind::DhtLookup,
                LOOKUP_HOP_BYTES,
                latency,
            );
            prev = hop;
        }
        // Flooding overlays may have spent more messages than the path length.
        let extra = result.messages.saturating_sub(result.path.len());
        for _ in 0..extra {
            self.stats.record_delivery(
                from,
                result.owner,
                MessageKind::DhtLookup,
                LOOKUP_HOP_BYTES,
                SimTime::ZERO,
            );
        }
        self.stats.record_lookup(result.hops());
        Ok((result.owner, result.hops()))
    }

    /// Sends `size_bytes` of `kind` from `from` to every other online peer.
    /// Returns the number of peers actually reached.
    pub fn broadcast(&mut self, from: PeerId, kind: MessageKind, size_bytes: usize) -> usize {
        if !self.is_online(from) {
            return 0;
        }
        // Index walk + O(1) bit tests: no target list is materialized even
        // when 10k peers are online.
        let mut reached = 0;
        for i in 0..self.config.num_peers {
            let to = PeerId::from(i);
            if to != from
                && self.online.contains(to)
                && self.send(from, to, kind, size_bytes).is_ok()
            {
                reached += 1;
            }
        }
        reached
    }

    fn sync_overlay_membership(&mut self) {
        let now = self.now;
        for i in 0..self.config.num_peers {
            let p = PeerId::from(i);
            let online = self.churn.is_online(p, now);
            self.online.set(p, online);
            let member = self.overlay.contains(p);
            if online && !member {
                self.overlay.add_peer(p);
                self.log.log(now, Some(p), "join", "peer joined overlay");
            } else if !online && member {
                self.overlay.remove_peer(p);
                self.log.log(now, Some(p), "leave", "peer left overlay");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::ChurnModel;
    use crate::config::OverlayKind;
    use crate::peer::content_key;

    fn small_network(num_peers: usize) -> P2PNetwork {
        P2PNetwork::new(SimConfig {
            num_peers,
            horizon_secs: 10_000,
            ..Default::default()
        })
    }

    #[test]
    fn send_between_online_peers_succeeds_and_is_accounted() {
        let mut net = small_network(8);
        let latency = net
            .send(PeerId(0), PeerId(1), MessageKind::ModelPropagation, 500)
            .unwrap();
        assert!(latency > SimTime::ZERO);
        assert_eq!(net.stats().total_bytes(), 500);
        assert_eq!(net.stats().kind(MessageKind::ModelPropagation).messages, 1);
    }

    #[test]
    fn dht_lookup_charges_per_hop() {
        let mut net = small_network(64);
        let (owner, hops) = net.dht_lookup(PeerId(3), content_key(b"rust")).unwrap();
        assert!(net.peers().any(|p| p == owner));
        assert!(hops >= 1);
        assert_eq!(
            net.stats().kind(MessageKind::DhtLookup).messages as usize,
            hops
        );
        assert!(net.stats().mean_lookup_hops() >= 1.0);
    }

    #[test]
    fn broadcast_reaches_all_other_online_peers() {
        let mut net = small_network(16);
        let reached = net.broadcast(PeerId(0), MessageKind::CentroidPropagation, 100);
        assert_eq!(reached, 15);
        assert_eq!(net.stats().total_bytes(), 1_500);
    }

    #[test]
    fn churn_takes_peers_offline_and_send_fails() {
        let mut net = P2PNetwork::new(SimConfig {
            num_peers: 64,
            churn: ChurnModel::Exponential {
                mean_session_secs: 100.0,
                mean_offline_secs: 100.0,
            },
            horizon_secs: 10_000,
            ..Default::default()
        });
        net.advance(SimTime::from_secs(5_000));
        let availability = net.availability();
        assert!(availability < 0.95, "availability {availability}");
        // Find an offline peer and check that sends to it fail.
        let offline = net
            .peers()
            .find(|&p| !net.is_online(p))
            .expect("some peer is offline under 50% availability churn");
        let online = net.peers().find(|&p| net.is_online(p)).unwrap();
        assert_eq!(
            net.send(online, offline, MessageKind::Other, 10),
            Err(DeliveryError::ReceiverOffline)
        );
        assert_eq!(
            net.send(offline, online, MessageKind::Other, 10),
            Err(DeliveryError::SenderOffline)
        );
        // Overlay membership must match the online set.
        assert_eq!(net.overlay().len(), net.num_online());
        assert_eq!(net.online_peers().count(), net.num_online());
    }

    #[test]
    fn unstructured_overlay_lookups_work_via_facade() {
        let mut net = P2PNetwork::new(SimConfig {
            num_peers: 64,
            overlay: OverlayKind::Unstructured { degree: 6, ttl: 6 },
            ..Default::default()
        });
        let result = net.dht_lookup(PeerId(5), content_key(b"database"));
        assert!(result.is_ok());
        // Flooding charges at least as many messages as a structured lookup.
        assert!(net.stats().kind(MessageKind::DhtLookup).messages >= 1);
    }

    #[test]
    fn offline_sender_cannot_lookup_or_broadcast() {
        let mut net = P2PNetwork::new(SimConfig {
            num_peers: 16,
            churn: ChurnModel::Exponential {
                mean_session_secs: 1.0,
                mean_offline_secs: 1_000.0,
            },
            horizon_secs: 10_000,
            ..Default::default()
        });
        net.advance(SimTime::from_secs(5_000));
        let offline = net
            .peers()
            .find(|&p| !net.is_online(p))
            .expect("nearly everyone is offline");
        assert_eq!(
            net.dht_lookup(offline, 1),
            Err(DeliveryError::SenderOffline)
        );
        assert_eq!(net.broadcast(offline, MessageKind::Other, 1), 0);
    }

    #[test]
    fn advancing_time_is_monotonic() {
        let mut net = small_network(4);
        let t0 = net.now();
        net.advance(SimTime::from_secs(10));
        assert_eq!(net.now(), t0 + SimTime::from_secs(10));
    }
}
