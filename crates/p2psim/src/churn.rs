//! Churn (peer arrival/departure) models.
//!
//! P2PDMT supports configuring the "churn model(s)" and simulating node
//! failures (Figure 2); the demonstration varies the "churn/attrition rate of
//! the P2P network" (§3). A churn model samples alternating online sessions
//! and offline periods for every peer; the resulting [`ChurnTimeline`] answers
//! "is peer *p* alive at time *t*?" and yields the join/leave event stream for
//! the discrete-event engine.

use crate::peer::PeerId;
use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A peer lifetime model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChurnModel {
    /// All peers stay online for the whole simulation.
    None,
    /// Exponentially distributed session and offline durations (the classic
    /// OverSim "LifetimeChurn" model).
    Exponential {
        /// Mean online-session duration in seconds.
        mean_session_secs: f64,
        /// Mean offline duration in seconds.
        mean_offline_secs: f64,
    },
    /// Pareto (heavy-tailed) session lengths with exponential downtime, which
    /// better matches measured P2P lifetimes (a few long-lived peers, many
    /// short-lived ones).
    Pareto {
        /// Shape parameter (> 1 for a finite mean); 2.0 is a common choice.
        shape: f64,
        /// Minimum (scale) session length in seconds.
        min_session_secs: f64,
        /// Mean offline duration in seconds.
        mean_offline_secs: f64,
    },
}

impl ChurnModel {
    /// Samples one online-session duration.
    pub fn sample_session(&self, rng: &mut StdRng) -> SimTime {
        match *self {
            ChurnModel::None => SimTime::from_secs(u64::MAX / 4),
            ChurnModel::Exponential {
                mean_session_secs, ..
            } => SimTime::from_secs_f64(sample_exponential(rng, mean_session_secs)),
            ChurnModel::Pareto {
                shape,
                min_session_secs,
                ..
            } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                SimTime::from_secs_f64(min_session_secs / u.powf(1.0 / shape.max(1.01)))
            }
        }
    }

    /// Samples one offline-period duration.
    pub fn sample_offline(&self, rng: &mut StdRng) -> SimTime {
        match *self {
            ChurnModel::None => SimTime::ZERO,
            ChurnModel::Exponential {
                mean_offline_secs, ..
            }
            | ChurnModel::Pareto {
                mean_offline_secs, ..
            } => SimTime::from_secs_f64(sample_exponential(rng, mean_offline_secs)),
        }
    }

    /// Expected long-run fraction of time a peer is online.
    pub fn expected_availability(&self) -> f64 {
        match *self {
            ChurnModel::None => 1.0,
            ChurnModel::Exponential {
                mean_session_secs,
                mean_offline_secs,
            } => mean_session_secs / (mean_session_secs + mean_offline_secs),
            ChurnModel::Pareto {
                shape,
                min_session_secs,
                mean_offline_secs,
            } => {
                let mean_session = if shape > 1.0 {
                    shape * min_session_secs / (shape - 1.0)
                } else {
                    min_session_secs * 10.0
                };
                mean_session / (mean_session + mean_offline_secs)
            }
        }
    }
}

fn sample_exponential(rng: &mut StdRng, mean: f64) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

/// A join or leave event produced by a churn timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// When the event happens.
    pub time: SimTime,
    /// Which peer it concerns.
    pub peer: PeerId,
    /// `true` for a join (peer comes online), `false` for a leave.
    pub online: bool,
}

/// Precomputed alternating online/offline intervals for every peer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChurnTimeline {
    /// Sorted per-peer online intervals `[start, end)`.
    intervals: Vec<Vec<(SimTime, SimTime)>>,
    horizon: SimTime,
}

impl ChurnTimeline {
    /// Generates a timeline for `num_peers` peers over `[0, horizon)`.
    ///
    /// Every peer starts online at a random phase of its first session so the
    /// network does not empty out synchronously.
    pub fn generate(model: ChurnModel, num_peers: usize, horizon: SimTime, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut intervals = Vec::with_capacity(num_peers);
        for _ in 0..num_peers {
            let mut peer_intervals = Vec::new();
            if matches!(model, ChurnModel::None) {
                peer_intervals.push((SimTime::ZERO, horizon));
                intervals.push(peer_intervals);
                continue;
            }
            let mut t = SimTime::ZERO;
            // Random initial phase: the first session is partially elapsed.
            let first = model.sample_session(&mut rng);
            let elapsed = SimTime::from_micros(rng.gen_range(0..=first.as_micros().max(1)));
            let mut session_remaining = first.saturating_sub(elapsed);
            loop {
                let end = (t + session_remaining).min(horizon);
                if end > t {
                    // A zero-length offline period (possible when the sampled
                    // offline duration truncates to zero, e.g. `mean <= 0.0`)
                    // would otherwise produce two adjacent intervals touching
                    // at `t` — and a leave + join event pair at the same
                    // instant. Merge them into one continuous session.
                    match peer_intervals.last_mut() {
                        Some(&mut (_, ref mut prev_end)) if *prev_end == t => *prev_end = end,
                        _ => peer_intervals.push((t, end)),
                    }
                }
                t = end + model.sample_offline(&mut rng);
                if t >= horizon {
                    break;
                }
                session_remaining = model.sample_session(&mut rng);
            }
            intervals.push(peer_intervals);
        }
        Self { intervals, horizon }
    }

    /// Number of peers covered by this timeline.
    pub fn num_peers(&self) -> usize {
        self.intervals.len()
    }

    /// The simulation horizon.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Whether `peer` is online at `time`.
    pub fn is_online(&self, peer: PeerId, time: SimTime) -> bool {
        self.intervals
            .get(peer.index())
            .map(|iv| iv.iter().any(|&(s, e)| s <= time && time < e))
            .unwrap_or(false)
    }

    /// All peers online at `time`.
    pub fn online_peers(&self, time: SimTime) -> Vec<PeerId> {
        (0..self.num_peers())
            .map(PeerId::from)
            .filter(|&p| self.is_online(p, time))
            .collect()
    }

    /// Number of peers online at `time` (no allocation).
    pub fn num_online_at(&self, time: SimTime) -> usize {
        (0..self.num_peers())
            .filter(|&i| self.is_online(PeerId::from(i), time))
            .count()
    }

    /// Fraction of peers online at `time`.
    pub fn availability_at(&self, time: SimTime) -> f64 {
        if self.num_peers() == 0 {
            return 0.0;
        }
        self.num_online_at(time) as f64 / self.num_peers() as f64
    }

    /// Produces the time-ordered stream of join/leave events.
    pub fn events(&self) -> Vec<ChurnEvent> {
        let mut out = Vec::new();
        for (i, iv) in self.intervals.iter().enumerate() {
            for &(s, e) in iv {
                out.push(ChurnEvent {
                    time: s,
                    peer: PeerId::from(i),
                    online: true,
                });
                if e < self.horizon {
                    out.push(ChurnEvent {
                        time: e,
                        peer: PeerId::from(i),
                        online: false,
                    });
                }
            }
        }
        // Deterministic tie-break: at equal times, order by peer and emit a
        // leave (`online == false`) before a join, so consumers that apply
        // the stream in order never conclude a peer ended up offline from a
        // same-instant leave/join pair. (Zero-gap intervals are already
        // merged at generation time; this also covers same-instant events of
        // different origins.)
        out.sort_by_key(|e| (e.time, e.peer, e.online));
        out
    }

    /// Mean number of online intervals per peer — a proxy for the churn rate.
    pub fn mean_sessions_per_peer(&self) -> f64 {
        if self.intervals.is_empty() {
            return 0.0;
        }
        self.intervals.iter().map(Vec::len).sum::<usize>() as f64 / self.intervals.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_churn_keeps_everyone_online() {
        let tl = ChurnTimeline::generate(ChurnModel::None, 10, SimTime::from_secs(100), 1);
        assert_eq!(tl.online_peers(SimTime::from_secs(50)).len(), 10);
        assert_eq!(tl.availability_at(SimTime::from_secs(99)), 1.0);
        assert!(tl.events().iter().all(|e| e.online));
    }

    #[test]
    fn exponential_churn_availability_matches_expectation() {
        let model = ChurnModel::Exponential {
            mean_session_secs: 300.0,
            mean_offline_secs: 100.0,
        };
        let tl = ChurnTimeline::generate(model, 400, SimTime::from_secs(2_000), 42);
        // Expected availability 0.75; sample mid-simulation with tolerance.
        let a = tl.availability_at(SimTime::from_secs(1_000));
        assert!(
            (a - model.expected_availability()).abs() < 0.12,
            "availability {a}"
        );
    }

    #[test]
    fn higher_churn_means_more_sessions() {
        let calm = ChurnTimeline::generate(
            ChurnModel::Exponential {
                mean_session_secs: 1_000.0,
                mean_offline_secs: 100.0,
            },
            100,
            SimTime::from_secs(2_000),
            7,
        );
        let stormy = ChurnTimeline::generate(
            ChurnModel::Exponential {
                mean_session_secs: 50.0,
                mean_offline_secs: 50.0,
            },
            100,
            SimTime::from_secs(2_000),
            7,
        );
        assert!(stormy.mean_sessions_per_peer() > calm.mean_sessions_per_peer());
    }

    #[test]
    fn events_alternate_and_are_ordered() {
        let tl = ChurnTimeline::generate(
            ChurnModel::Exponential {
                mean_session_secs: 60.0,
                mean_offline_secs: 60.0,
            },
            20,
            SimTime::from_secs(600),
            3,
        );
        let events = tl.events();
        assert!(!events.is_empty());
        for w in events.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        // is_online must agree with the interval events for a few probes.
        for t in [0u64, 100, 300, 599] {
            let time = SimTime::from_secs(t);
            for p in 0..20u64 {
                let _ = tl.is_online(PeerId(p), time); // must not panic
            }
        }
    }

    #[test]
    fn pareto_sessions_respect_minimum() {
        let model = ChurnModel::Pareto {
            shape: 2.0,
            min_session_secs: 30.0,
            mean_offline_secs: 30.0,
        };
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            assert!(model.sample_session(&mut rng) >= SimTime::from_secs(30));
        }
        assert!(model.expected_availability() > 0.5);
    }

    #[test]
    fn zero_gap_offline_periods_merge_into_one_session() {
        // With a zero mean offline duration every sampled gap truncates to
        // zero: pre-fix this produced chains of adjacent intervals and
        // same-instant leave/join event pairs that could leave a peer
        // "offline" for in-order consumers of the event stream.
        let model = ChurnModel::Exponential {
            mean_session_secs: 50.0,
            mean_offline_secs: 0.0,
        };
        let tl = ChurnTimeline::generate(model, 30, SimTime::from_secs(1_000), 11);
        // Adjacent intervals merged: each peer has exactly one continuous
        // session reaching the horizon, so the only events are initial joins.
        assert!(tl.events().iter().all(|e| e.online));
        assert!((tl.mean_sessions_per_peer() - 1.0).abs() < 1e-12);
        for p in 0..30u64 {
            assert!(tl.is_online(PeerId(p), SimTime::from_secs(999)));
        }
    }

    #[test]
    fn same_instant_events_order_leave_before_join() {
        // Replaying the event stream in order must reproduce is_online at
        // every event time: a peer with a leave and a join at the same
        // instant must come out online (leave sorts first).
        let model = ChurnModel::Exponential {
            mean_session_secs: 40.0,
            mean_offline_secs: 20.0,
        };
        let tl = ChurnTimeline::generate(model, 50, SimTime::from_secs(2_000), 13);
        let events = tl.events();
        for w in events.windows(2) {
            assert!((w[0].time, w[0].peer, w[0].online) < (w[1].time, w[1].peer, w[1].online));
        }
        let mut online = [false; 50];
        let mut i = 0;
        while i < events.len() {
            let t = events[i].time;
            let mut j = i;
            while j < events.len() && events[j].time == t {
                online[events[j].peer.index()] = events[j].online;
                j += 1;
            }
            for p in 0..50u64 {
                assert_eq!(
                    online[p as usize],
                    tl.is_online(PeerId(p), t),
                    "replayed state diverges for peer {p} at {t}"
                );
            }
            i = j;
        }
    }

    #[test]
    fn unknown_peer_is_offline() {
        let tl = ChurnTimeline::generate(ChurnModel::None, 2, SimTime::from_secs(10), 1);
        assert!(!tl.is_online(PeerId(99), SimTime::from_secs(1)));
    }
}
