//! Peer identifiers and key-space hashing.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a peer in the simulated network.
///
/// Peers are numbered densely from 0; the DHT key of a peer is derived from
/// this number with a 64-bit mixing function so that peers are spread
/// uniformly around the identifier ring regardless of how many there are.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PeerId(pub u64);

impl PeerId {
    /// The peer's position on the 64-bit DHT identifier ring.
    pub fn ring_key(self) -> u64 {
        mix64(self.0.wrapping_add(0xA5A5_5A5A_DEAD_BEEF))
    }

    /// Index form (peers are created densely from 0).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer{}", self.0)
    }
}

impl From<u64> for PeerId {
    fn from(v: u64) -> Self {
        PeerId(v)
    }
}

impl From<usize> for PeerId {
    fn from(v: usize) -> Self {
        PeerId(v as u64)
    }
}

/// Hashes arbitrary byte content onto the DHT identifier ring.
///
/// Used to locate the super-peer responsible for a tag: the tag name is hashed
/// to a key and the DHT lookup finds its deterministic owner.
pub fn content_key(bytes: &[u8]) -> u64 {
    // FNV-1a followed by a strong finalizer; stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    mix64(h)
}

/// SplitMix64 finalizer, used to turn sequential ids into uniform ring keys.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ring_keys_are_distinct_and_stable() {
        let a = PeerId(1).ring_key();
        let b = PeerId(2).ring_key();
        assert_ne!(a, b);
        assert_eq!(a, PeerId(1).ring_key());
    }

    #[test]
    fn ring_keys_are_well_spread() {
        // With 1024 peers, keys should not cluster: check that all are unique
        // and that both halves of the ring are populated.
        let keys: Vec<u64> = (0..1024).map(|i| PeerId(i).ring_key()).collect();
        let unique: HashSet<u64> = keys.iter().copied().collect();
        assert_eq!(unique.len(), keys.len());
        let low = keys.iter().filter(|&&k| k < u64::MAX / 2).count();
        assert!(low > 300 && low < 724, "low half count {low}");
    }

    #[test]
    fn content_key_is_deterministic_and_sensitive() {
        assert_eq!(content_key(b"rust"), content_key(b"rust"));
        assert_ne!(content_key(b"rust"), content_key(b"rusty"));
        assert_ne!(content_key(b""), content_key(b"a"));
    }

    #[test]
    fn display_and_conversions() {
        let p: PeerId = 7usize.into();
        assert_eq!(p.to_string(), "peer7");
        assert_eq!(p.index(), 7);
        assert_eq!(PeerId::from(7u64), p);
    }
}
