//! Replay determinism at scale: a churned 2k-peer run must be bit-identical
//! across replays, and the slab event pool must never resurrect a stale
//! payload into a later delivery.
//!
//! The engine's determinism contract is load-bearing for every benchmark in
//! the workspace (the `BENCH_*.json` documents are reproducible given their
//! seed), and the slab recycling introduced for the allocation-free steady
//! state gives it a new way to fail: `EventKey` carries a slot index that
//! MUST NOT participate in heap ordering, and a recycled slot MUST NOT hand
//! an earlier event's payload to a later delivery. Both properties are
//! checked here over arbitrary seeds.

use p2psim::churn::{ChurnModel, ChurnTimeline};
use p2psim::engine::{Application, Context, Engine};
use p2psim::message::MessageKind;
use p2psim::physical::{PhysicalConfig, PhysicalNetwork};
use p2psim::time::SimTime;
use p2psim::PeerId;
use proptest::prelude::*;

const PEERS: usize = 2_000;
const EVENTS: u64 = 60_000;

/// Every callback appended to a per-peer trace: `(now, kind, a, b)` where
/// kind 0 = start, 1 = timer, 2 = message (a = sender, b = payload),
/// 3 = stop. Concatenated over peers this is the run's full event ordering
/// as the applications observed it.
struct TraceApp {
    id: usize,
    num_peers: usize,
    seq: u64,
    trace: Vec<(SimTime, u8, u64, u64)>,
}

impl TraceApp {
    fn new(id: usize, num_peers: usize) -> Self {
        Self {
            id,
            num_peers,
            seq: 0,
            trace: Vec::new(),
        }
    }

    /// Globally unique payload: sender in the high half, send sequence in
    /// the low half. Sent exactly once, so any duplicate arrival means a
    /// recycled slab slot leaked an old payload into a new delivery.
    fn next_payload(&mut self) -> u64 {
        let p = ((self.id as u64) << 32) | self.seq;
        self.seq += 1;
        p
    }
}

impl Application for TraceApp {
    type Payload = u64;

    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        self.trace.push((ctx.now(), 0, 0, 0));
        ctx.set_timer(SimTime::from_millis(250), 0);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, u64>, _timer: u64) {
        self.trace.push((ctx.now(), 1, 0, 0));
        for k in 1..=3usize {
            let to = (self.id + k * 17 + 1) % self.num_peers;
            if to != self.id {
                let payload = self.next_payload();
                ctx.send(PeerId::from(to), MessageKind::Other, 48, payload);
            }
        }
        ctx.set_timer(SimTime::from_millis(250), 0);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, u64>, from: PeerId, payload: u64) {
        self.trace
            .push((ctx.now(), 2, from.index() as u64, payload));
    }

    fn on_stop(&mut self, ctx: &mut Context<'_, u64>) {
        self.trace.push((ctx.now(), 3, 0, 0));
    }
}

/// One full churned run; returns the concatenated per-peer traces and the
/// stats debug dump (a structural fingerprint of every counter).
fn run_once(
    num_peers: usize,
    max_events: u64,
    seed: u64,
) -> (Vec<(SimTime, u8, u64, u64)>, String) {
    let apps = (0..num_peers)
        .map(|i| TraceApp::new(i, num_peers))
        .collect();
    let physical = PhysicalNetwork::new(PhysicalConfig {
        seed,
        ..PhysicalConfig::default()
    });
    let mut engine = Engine::new(apps, physical, seed);
    engine.set_churn_logging(false);
    let churn = ChurnModel::Exponential {
        mean_session_secs: 600.0,
        mean_offline_secs: 120.0,
    };
    let timeline =
        ChurnTimeline::generate(churn, num_peers, SimTime::from_secs(3_600), seed ^ 0xD1CE);
    engine.apply_churn(&timeline);
    engine.run(SimTime::from_secs(3_600), max_events);
    let stats = format!("{:?}", engine.stats());
    let mut trace = Vec::new();
    for i in 0..num_peers {
        let app = engine.app(PeerId::from(i));
        trace.extend(app.trace.iter().copied());
    }
    (trace, stats)
}

/// Asserts the no-resurrection property on one run's trace: every delivered
/// payload is one a sender actually emitted (consistent sender half, in-range
/// sequence half) and no (sender, seq) pair is ever delivered twice.
fn assert_no_stale_payloads(trace: &[(SimTime, u8, u64, u64)], sent_per_peer: &[u64]) {
    let mut seen = std::collections::HashSet::new();
    for &(_, kind, from, payload) in trace {
        if kind != 2 {
            continue;
        }
        let sender = payload >> 32;
        let seq = payload & 0xFFFF_FFFF;
        assert_eq!(
            sender, from,
            "delivered payload encodes sender {sender} but arrived from {from}: stale slab slot"
        );
        assert!(
            seq < sent_per_peer[sender as usize],
            "delivered payload seq {seq} was never sent by peer {sender} (sent {})",
            sent_per_peer[sender as usize]
        );
        assert!(
            seen.insert(payload),
            "payload {payload:#x} delivered twice: recycled slot resurrected an old event"
        );
    }
}

#[test]
fn churned_2k_peer_replay_is_bit_identical() {
    let (trace_a, stats_a) = run_once(PEERS, EVENTS, 2010);
    let (trace_b, stats_b) = run_once(PEERS, EVENTS, 2010);
    assert_eq!(
        trace_a.len(),
        trace_b.len(),
        "replay produced a different event count"
    );
    assert_eq!(
        trace_a, trace_b,
        "replay diverged in event ordering or content"
    );
    assert_eq!(stats_a, stats_b, "replay produced different SimStats");
    // The run must actually exercise the paths under test: deliveries,
    // timers, and churn transitions all present.
    assert!(trace_a.iter().any(|e| e.1 == 2), "no deliveries traced");
    assert!(trace_a.iter().any(|e| e.1 == 3), "no churn stops traced");
}

#[test]
fn churned_2k_peer_run_never_resurrects_payloads() {
    let num_peers = PEERS;
    let apps = (0..num_peers)
        .map(|i| TraceApp::new(i, num_peers))
        .collect();
    let physical = PhysicalNetwork::new(PhysicalConfig {
        seed: 99,
        ..PhysicalConfig::default()
    });
    let mut engine = Engine::new(apps, physical, 99);
    engine.set_churn_logging(false);
    let churn = ChurnModel::Exponential {
        mean_session_secs: 600.0,
        mean_offline_secs: 120.0,
    };
    let timeline =
        ChurnTimeline::generate(churn, num_peers, SimTime::from_secs(3_600), 99 ^ 0xD1CE);
    engine.apply_churn(&timeline);
    engine.run(SimTime::from_secs(3_600), EVENTS);
    let sent: Vec<u64> = (0..num_peers)
        .map(|i| engine.app(PeerId::from(i)).seq)
        .collect();
    let trace: Vec<_> = (0..num_peers)
        .flat_map(|i| engine.app(PeerId::from(i)).trace.iter().copied())
        .collect();
    assert_no_stale_payloads(&trace, &sent);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Replay determinism and slab hygiene hold for arbitrary seeds, not
    /// just the committed benchmark seed. Smaller networks than the pinned
    /// 2k case so four cases stay fast; the slab still recycles heavily
    /// (tens of thousands of events over a few hundred slots).
    #[test]
    fn replay_properties_hold_for_arbitrary_seeds(seed in any::<u64>()) {
        let (trace_a, stats_a) = run_once(300, 20_000, seed);
        let (trace_b, stats_b) = run_once(300, 20_000, seed);
        prop_assert_eq!(&trace_a, &trace_b);
        prop_assert_eq!(stats_a, stats_b);
        // Recompute per-peer send counts from the trace itself (kind 1 fires
        // up to 3 sends; the exact count is what the payload seq encodes).
        let mut sent = vec![0u64; 300];
        for &(_, kind, _, payload) in &trace_a {
            if kind == 2 {
                let sender = (payload >> 32) as usize;
                let seq = payload & 0xFFFF_FFFF;
                if seq + 1 > sent[sender] {
                    sent[sender] = seq + 1;
                }
            }
        }
        assert_no_stale_payloads(&trace_a, &sent);
    }
}
