//! Replay determinism at scale: a churned 2k-peer run must be bit-identical
//! across replays, and the slab event pool must never resurrect a stale
//! payload into a later delivery.
//!
//! The engine's determinism contract is load-bearing for every benchmark in
//! the workspace (the `BENCH_*.json` documents are reproducible given their
//! seed), and the slab recycling introduced for the allocation-free steady
//! state gives it a new way to fail: `EventKey` carries a slot index that
//! MUST NOT participate in heap ordering, and a recycled slot MUST NOT hand
//! an earlier event's payload to a later delivery. Both properties are
//! checked here over arbitrary seeds.

use p2psim::churn::{ChurnModel, ChurnTimeline};
use p2psim::engine::{Application, Context, Engine};
use p2psim::message::MessageKind;
use p2psim::physical::{PhysicalConfig, PhysicalNetwork};
use p2psim::time::SimTime;
use p2psim::PeerId;
use proptest::prelude::*;

const PEERS: usize = 2_000;
const EVENTS: u64 = 60_000;

/// Every callback appended to a per-peer trace: `(now, kind, a, b)` where
/// kind 0 = start, 1 = timer, 2 = message (a = sender, b = payload),
/// 3 = stop. Concatenated over peers this is the run's full event ordering
/// as the applications observed it.
struct TraceApp {
    id: usize,
    num_peers: usize,
    seq: u64,
    trace: Vec<(SimTime, u8, u64, u64)>,
}

impl TraceApp {
    fn new(id: usize, num_peers: usize) -> Self {
        Self {
            id,
            num_peers,
            seq: 0,
            trace: Vec::new(),
        }
    }

    /// Globally unique payload: sender in the high half, send sequence in
    /// the low half. Sent exactly once, so any duplicate arrival means a
    /// recycled slab slot leaked an old payload into a new delivery.
    fn next_payload(&mut self) -> u64 {
        let p = ((self.id as u64) << 32) | self.seq;
        self.seq += 1;
        p
    }
}

impl Application for TraceApp {
    type Payload = u64;

    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        self.trace.push((ctx.now(), 0, 0, 0));
        ctx.set_timer(SimTime::from_millis(250), 0);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, u64>, _timer: u64) {
        self.trace.push((ctx.now(), 1, 0, 0));
        for k in 1..=3usize {
            let to = (self.id + k * 17 + 1) % self.num_peers;
            if to != self.id {
                let payload = self.next_payload();
                ctx.send(PeerId::from(to), MessageKind::Other, 48, payload);
            }
        }
        ctx.set_timer(SimTime::from_millis(250), 0);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, u64>, from: PeerId, payload: u64) {
        self.trace
            .push((ctx.now(), 2, from.index() as u64, payload));
    }

    fn on_stop(&mut self, ctx: &mut Context<'_, u64>) {
        self.trace.push((ctx.now(), 3, 0, 0));
    }
}

/// One full churned run; returns the concatenated per-peer traces and the
/// stats debug dump (a structural fingerprint of every counter).
fn run_once(
    num_peers: usize,
    max_events: u64,
    seed: u64,
) -> (Vec<(SimTime, u8, u64, u64)>, String) {
    let apps = (0..num_peers)
        .map(|i| TraceApp::new(i, num_peers))
        .collect();
    let physical = PhysicalNetwork::new(PhysicalConfig {
        seed,
        ..PhysicalConfig::default()
    });
    let mut engine = Engine::new(apps, physical, seed);
    engine.set_churn_logging(false);
    let churn = ChurnModel::Exponential {
        mean_session_secs: 600.0,
        mean_offline_secs: 120.0,
    };
    let timeline =
        ChurnTimeline::generate(churn, num_peers, SimTime::from_secs(3_600), seed ^ 0xD1CE);
    engine.apply_churn(&timeline);
    engine.run(SimTime::from_secs(3_600), max_events);
    let stats = format!("{:?}", engine.stats());
    let mut trace = Vec::new();
    for i in 0..num_peers {
        let app = engine.app(PeerId::from(i));
        trace.extend(app.trace.iter().copied());
    }
    (trace, stats)
}

/// Asserts the no-resurrection property on one run's trace: every delivered
/// payload is one a sender actually emitted (consistent sender half, in-range
/// sequence half) and no (sender, seq) pair is ever delivered twice.
fn assert_no_stale_payloads(trace: &[(SimTime, u8, u64, u64)], sent_per_peer: &[u64]) {
    let mut seen = std::collections::HashSet::new();
    for &(_, kind, from, payload) in trace {
        if kind != 2 {
            continue;
        }
        let sender = payload >> 32;
        let seq = payload & 0xFFFF_FFFF;
        assert_eq!(
            sender, from,
            "delivered payload encodes sender {sender} but arrived from {from}: stale slab slot"
        );
        assert!(
            seq < sent_per_peer[sender as usize],
            "delivered payload seq {seq} was never sent by peer {sender} (sent {})",
            sent_per_peer[sender as usize]
        );
        assert!(
            seen.insert(payload),
            "payload {payload:#x} delivered twice: recycled slot resurrected an old event"
        );
    }
}

#[test]
fn churned_2k_peer_replay_is_bit_identical() {
    let (trace_a, stats_a) = run_once(PEERS, EVENTS, 2010);
    let (trace_b, stats_b) = run_once(PEERS, EVENTS, 2010);
    assert_eq!(
        trace_a.len(),
        trace_b.len(),
        "replay produced a different event count"
    );
    assert_eq!(
        trace_a, trace_b,
        "replay diverged in event ordering or content"
    );
    assert_eq!(stats_a, stats_b, "replay produced different SimStats");
    // The run must actually exercise the paths under test: deliveries,
    // timers, and churn transitions all present.
    assert!(trace_a.iter().any(|e| e.1 == 2), "no deliveries traced");
    assert!(trace_a.iter().any(|e| e.1 == 3), "no churn stops traced");
}

#[test]
fn churned_2k_peer_run_never_resurrects_payloads() {
    let num_peers = PEERS;
    let apps = (0..num_peers)
        .map(|i| TraceApp::new(i, num_peers))
        .collect();
    let physical = PhysicalNetwork::new(PhysicalConfig {
        seed: 99,
        ..PhysicalConfig::default()
    });
    let mut engine = Engine::new(apps, physical, 99);
    engine.set_churn_logging(false);
    let churn = ChurnModel::Exponential {
        mean_session_secs: 600.0,
        mean_offline_secs: 120.0,
    };
    let timeline =
        ChurnTimeline::generate(churn, num_peers, SimTime::from_secs(3_600), 99 ^ 0xD1CE);
    engine.apply_churn(&timeline);
    engine.run(SimTime::from_secs(3_600), EVENTS);
    let sent: Vec<u64> = (0..num_peers)
        .map(|i| engine.app(PeerId::from(i)).seq)
        .collect();
    let trace: Vec<_> = (0..num_peers)
        .flat_map(|i| engine.app(PeerId::from(i)).trace.iter().copied())
        .collect();
    assert_no_stale_payloads(&trace, &sent);
}

/// Folds bytes into a running FNV-1a fingerprint. The chaos replay test
/// hashes every observable send outcome instead of storing ~50k trace rows.
fn fnv_fold(fp: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *fp ^= u64::from(b);
        *fp = fp.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// One fault-injected 2k-peer run over the round-based facade: churn, 15%
/// loss + Gilbert–Elliott bursts, latency spikes/jitter, frame corruption,
/// a mid-run ring partition and crash-restart events — every fault axis at
/// once. Returns a fingerprint of every observable outcome (send results,
/// latencies, corrupted frame bytes, crash/heal drains) plus the full stats
/// debug dump.
fn run_chaos_once(seed: u64) -> (u64, String) {
    use p2psim::faults::{FaultPlan, PartitionScope, PartitionWindow};
    use p2psim::network::P2PNetwork;
    use p2psim::SimConfig;

    let num_peers = PEERS;
    let config = SimConfig {
        num_peers,
        churn: ChurnModel::Exponential {
            mean_session_secs: 600.0,
            mean_offline_secs: 120.0,
        },
        horizon_secs: 3_600,
        seed,
        faults: FaultPlan::chaos(
            0.15,
            Some(PartitionWindow {
                start_secs: 600,
                end_secs: 1_200,
                scope: PartitionScope::Ring {
                    pivot_key: u64::MAX / 2,
                },
            }),
            true,
        ),
        ..SimConfig::default()
    };
    let mut net = P2PNetwork::new(config);
    let mut fp: u64 = 0xCBF2_9CE4_8422_2325;
    let frame: Vec<u8> = (0..96u8).map(|b| b.wrapping_mul(37) ^ 0xA5).collect();
    for round in 0..12u64 {
        net.advance(SimTime::from_secs(300));
        for peer in net.drain_crash_restarts() {
            fnv_fold(&mut fp, b"crash");
            fnv_fold(&mut fp, &(peer.index() as u64).to_le_bytes());
        }
        for window in net.drain_healed_partitions() {
            fnv_fold(&mut fp, b"heal");
            fnv_fold(&mut fp, format!("{window:?}").as_bytes());
        }
        for i in 0..num_peers {
            let from = PeerId::from(i);
            let to = PeerId::from((i + 997) % num_peers);
            match net.send(from, to, MessageKind::Other, 64) {
                Ok(latency) => fnv_fold(&mut fp, format!("s{round} {latency:?}").as_bytes()),
                Err(e) => fnv_fold(&mut fp, format!("se{round} {e:?}").as_bytes()),
            }
            // Every 8th peer also exercises the byte-frame (corruption) path.
            if i % 8 == 0 {
                match net.send_frame(from, to, MessageKind::Other, &frame) {
                    Ok(d) => {
                        fnv_fold(&mut fp, format!("f{round} {:?}", d.latency).as_bytes());
                        if let Some(bytes) = &d.corrupted {
                            fnv_fold(&mut fp, bytes);
                        }
                    }
                    Err(e) => fnv_fold(&mut fp, format!("fe{round} {e:?}").as_bytes()),
                }
            }
        }
    }
    (fp, format!("{:?}", net.stats()))
}

#[test]
fn chaos_2k_peer_replay_is_bit_identical() {
    let (fp_a, stats_a) = run_chaos_once(2010);
    let (fp_b, stats_b) = run_chaos_once(2010);
    assert_eq!(
        fp_a, fp_b,
        "fault-injected replay diverged in observable outcomes"
    );
    assert_eq!(
        stats_a, stats_b,
        "fault-injected replay produced different SimStats"
    );
    // A different seed must actually produce a different fault stream —
    // otherwise the fingerprint is insensitive and the test proves nothing.
    let (fp_c, _) = run_chaos_once(2011);
    assert_ne!(fp_a, fp_c, "fingerprint is not seed-sensitive");
    // Every fault axis fired during the run.
    for (axis, needle) in [
        ("random loss", "lost"),
        ("partition drops", "partition_drops"),
        ("corruption", "corrupted"),
        ("latency spikes", "latency_spikes"),
        ("crash restarts", "crashes"),
    ] {
        assert!(
            stats_a.contains(needle),
            "stats dump lost its {axis} counter ({needle})"
        );
    }
}

#[test]
fn chaos_run_exercises_every_fault_axis() {
    use p2psim::faults::{FaultPlan, PartitionScope, PartitionWindow};
    use p2psim::network::P2PNetwork;
    use p2psim::SimConfig;

    let config = SimConfig {
        num_peers: 400,
        churn: ChurnModel::None,
        horizon_secs: 3_600,
        seed: 7,
        faults: FaultPlan::chaos(
            0.2,
            Some(PartitionWindow {
                start_secs: 600,
                end_secs: 1_200,
                scope: PartitionScope::Index { pivot: 200 },
            }),
            true,
        ),
        ..SimConfig::default()
    };
    let mut net = P2PNetwork::new(config);
    let frame = [0x5Au8; 256];
    let mut restarts = 0usize;
    let mut heals = 0usize;
    for _ in 0..12 {
        net.advance(SimTime::from_secs(300));
        restarts += net.drain_crash_restarts().len();
        heals += net.drain_healed_partitions().len();
        for i in 0..400usize {
            let from = PeerId::from(i);
            let to = PeerId::from((i + 199) % 400);
            let _ = net.send(from, to, MessageKind::Other, 64).is_ok();
            let _ = net.send_frame(from, to, MessageKind::Other, &frame).is_ok();
        }
    }
    let faults = &net.stats().faults;
    assert!(faults.lost > 0, "no random loss: {faults:?}");
    assert!(faults.burst_lost > 0, "no burst loss: {faults:?}");
    assert!(faults.partition_drops > 0, "no partition drops: {faults:?}");
    assert!(faults.corrupted > 0, "no frame corruption: {faults:?}");
    assert!(faults.latency_spikes > 0, "no latency spikes: {faults:?}");
    assert!(faults.crashes > 0, "no crash events: {faults:?}");
    assert!(restarts > 0, "no crash restarts drained");
    assert_eq!(heals, 1, "exactly one partition window should heal");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Replay determinism and slab hygiene hold for arbitrary seeds, not
    /// just the committed benchmark seed. Smaller networks than the pinned
    /// 2k case so four cases stay fast; the slab still recycles heavily
    /// (tens of thousands of events over a few hundred slots).
    #[test]
    fn replay_properties_hold_for_arbitrary_seeds(seed in any::<u64>()) {
        let (trace_a, stats_a) = run_once(300, 20_000, seed);
        let (trace_b, stats_b) = run_once(300, 20_000, seed);
        prop_assert_eq!(&trace_a, &trace_b);
        prop_assert_eq!(stats_a, stats_b);
        // Recompute per-peer send counts from the trace itself (kind 1 fires
        // up to 3 sends; the exact count is what the payload seq encodes).
        let mut sent = vec![0u64; 300];
        for &(_, kind, _, payload) in &trace_a {
            if kind == 2 {
                let sender = (payload >> 32) as usize;
                let seq = payload & 0xFFFF_FFFF;
                if seq + 1 > sent[sender] {
                    sent[sender] = seq + 1;
                }
            }
        }
        assert_no_stale_payloads(&trace_a, &sent);
    }
}
