//! The "Suggestion Cloud" panel with the confidence slider.
//!
//! "Relevant tags will be shown in the 'Suggestion Cloud' panel, arranged in
//! alphabetical order, where tags with higher confidence will be in larger
//! font. Low confidence tags can be filtered out (struck out, and placed last)
//! by adjusting the 'Confidence' slider" (§3).

use ml::multilabel::TagPrediction;
use serde::{Deserialize, Serialize};

/// One tag in the suggestion cloud.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuggestionEntry {
    /// Tag name.
    pub tag: String,
    /// Confidence in (0, 1) from the classifier.
    pub confidence: f64,
    /// Relative font size in [1, 5] (5 = most confident).
    pub font_size: u8,
    /// Whether the tag falls below the confidence slider (rendered struck out
    /// and placed after all accepted tags).
    pub struck_out: bool,
}

/// The rendered suggestion cloud for one document.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SuggestionCloud {
    entries: Vec<SuggestionEntry>,
    threshold: f64,
}

impl SuggestionCloud {
    /// Builds a cloud from classifier predictions and tag names.
    ///
    /// `resolve` maps tag ids to display names; predictions whose tag id cannot
    /// be resolved are skipped. `threshold` is the confidence slider position.
    pub fn build<F>(predictions: &[TagPrediction], threshold: f64, mut resolve: F) -> Self
    where
        F: FnMut(u32) -> Option<String>,
    {
        let mut entries: Vec<SuggestionEntry> = predictions
            .iter()
            .filter_map(|p| {
                resolve(p.tag).map(|tag| SuggestionEntry {
                    tag,
                    confidence: p.confidence,
                    font_size: font_size(p.confidence),
                    struck_out: p.confidence < threshold,
                })
            })
            .collect();
        // Accepted tags first in alphabetical order, then struck-out tags
        // (also alphabetical), per the demo description.
        entries.sort_by(|a, b| {
            a.struck_out
                .cmp(&b.struck_out)
                .then_with(|| a.tag.cmp(&b.tag))
        });
        Self { entries, threshold }
    }

    /// The slider position this cloud was rendered with.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// All entries (accepted first, struck-out last).
    pub fn entries(&self) -> &[SuggestionEntry] {
        &self.entries
    }

    /// Only the accepted (not struck out) suggestions.
    pub fn accepted(&self) -> impl Iterator<Item = &SuggestionEntry> {
        self.entries.iter().filter(|e| !e.struck_out)
    }

    /// Names of the accepted suggestions.
    pub fn accepted_tags(&self) -> Vec<String> {
        self.accepted().map(|e| e.tag.clone()).collect()
    }

    /// Renders the cloud as a single text line (used by the terminal examples):
    /// accepted tags with `*` repeated by font size, struck-out tags in ~~strikethrough~~.
    pub fn render_line(&self) -> String {
        let mut parts = Vec::new();
        for e in &self.entries {
            if e.struck_out {
                parts.push(format!("~~{}~~", e.tag));
            } else {
                parts.push(format!("{}[{}]", e.tag, e.font_size));
            }
        }
        parts.join(" ")
    }
}

/// Maps a confidence in (0, 1) to a font-size bucket 1..=5.
fn font_size(confidence: f64) -> u8 {
    let c = confidence.clamp(0.0, 1.0);
    (1.0 + (c * 4.999).floor()).min(5.0) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred(tag: u32, confidence: f64) -> TagPrediction {
        TagPrediction {
            tag,
            score: confidence * 2.0 - 1.0,
            confidence,
        }
    }

    fn names(tag: u32) -> Option<String> {
        match tag {
            1 => Some("rust".to_string()),
            2 => Some("music".to_string()),
            3 => Some("web".to_string()),
            _ => None,
        }
    }

    #[test]
    fn accepted_tags_are_alphabetical_and_struck_out_last() {
        let cloud = SuggestionCloud::build(&[pred(3, 0.9), pred(1, 0.8), pred(2, 0.2)], 0.5, names);
        let order: Vec<&str> = cloud.entries().iter().map(|e| e.tag.as_str()).collect();
        assert_eq!(order, vec!["rust", "web", "music"]);
        assert!(cloud.entries()[2].struck_out);
        assert_eq!(cloud.accepted_tags(), vec!["rust", "web"]);
    }

    #[test]
    fn font_size_grows_with_confidence() {
        assert_eq!(font_size(0.05), 1);
        assert_eq!(font_size(0.95), 5);
        assert!(font_size(0.7) > font_size(0.3));
        assert!(font_size(1.0) <= 5);
        assert!(font_size(0.0) >= 1);
    }

    #[test]
    fn slider_at_zero_accepts_everything() {
        let cloud = SuggestionCloud::build(&[pred(1, 0.1), pred(2, 0.9)], 0.0, names);
        assert_eq!(cloud.accepted().count(), 2);
    }

    #[test]
    fn slider_at_one_strikes_everything() {
        let cloud = SuggestionCloud::build(&[pred(1, 0.1), pred(2, 0.9)], 1.1, names);
        assert_eq!(cloud.accepted().count(), 0);
        assert_eq!(cloud.entries().len(), 2);
    }

    #[test]
    fn unresolvable_tags_are_skipped() {
        let cloud = SuggestionCloud::build(&[pred(1, 0.8), pred(99, 0.9)], 0.5, names);
        assert_eq!(cloud.entries().len(), 1);
    }

    #[test]
    fn render_line_marks_struck_out_tags() {
        let cloud = SuggestionCloud::build(&[pred(1, 0.9), pred(2, 0.1)], 0.5, names);
        let line = cloud.render_line();
        assert!(line.contains("rust["));
        assert!(line.contains("~~music~~"));
    }
}
