//! The streaming session layer: incremental learning over a timeline of
//! arrivals, refinements and churn.
//!
//! The paper's workflow is inherently ongoing — documents keep arriving,
//! users keep refining, and "P2PDocTagger will automatically update the
//! classification model(s) in the back-end" (§2) — where the batch pipeline
//! (`ingest → learn → auto_tag_all`) runs once. This module replays a
//! generated timeline of events against the simulated network's churn
//! timeline, one epoch at a time:
//!
//! 1. **Advance time** — the network clock moves to the epoch boundary, so
//!    churn takes effect between epochs (peers join and leave mid-session).
//! 2. **Learn** — the epoch's manually tagged arrivals are folded into the
//!    models: warm-start incremental training
//!    ([`P2PDocTagger::learn_incremental`] →
//!    [`p2pclassify::P2PTagClassifier::train_incremental`]) when
//!    [`SessionConfig::incremental`] is set, or a full retrain on the
//!    cumulative manual set as the accuracy reference otherwise.
//! 3. **Refine** — corrections scheduled from earlier epochs are applied
//!    (users fix wrong automatic tags), exercising the protocols' refinement
//!    path under churn.
//! 4. **Auto-tag** — the epoch's untagged arrivals are tagged and scored
//!    against the evaluation universe frozen at first learn.
//!
//! The two modes run the *same* timeline, so
//! [`SessionOutcome::final_metrics`] of an incremental run is directly
//! comparable to its full-retrain reference; the regression test below bounds
//! the macro-F1 gap at 5 %.

use crate::config::{DocTaggerConfig, ProtocolKind};
use crate::library::TagSource;
use crate::system::P2PDocTagger;
use dataset::{ArrivalSpec, ArrivalTimeline, BurstSpec, Corpus, DocumentId, TrainTestSplit};
use ml::{GroupedMetrics, MultiLabelMetrics};
use p2pclassify::ProtocolError;
use p2psim::churn::ChurnModel;
use p2psim::{SimConfig, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Configuration of a streaming session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Number of epochs to replay.
    pub epochs: usize,
    /// Simulated length of one epoch in seconds.
    pub epoch_secs: f64,
    /// Probability that an arriving document is manually tagged by its owner
    /// (the rest request automatic tags); the demo protocol's 20 %.
    pub manual_fraction: f64,
    /// Probability that a wrongly auto-tagged document is corrected by its
    /// user in a later epoch.
    pub refine_fraction: f64,
    /// Interest drift of the arrival generator (see
    /// [`dataset::ArrivalSpec::drift`]).
    pub drift: f64,
    /// Flash-crowd bursts layered on the arrival generator (see
    /// [`dataset::BurstSpec`]); `None` keeps the smooth Poisson arrivals.
    pub bursts: Option<BurstSpec>,
    /// Churn model of the simulated network for the whole session.
    pub churn: ChurnModel,
    /// Deterministic fault plan injected into the simulated network (loss,
    /// corruption, partitions, crash-restarts). The default plan is fully
    /// disabled and draws no randomness, so fault-free sessions stay
    /// bit-identical to a build without the fault layer.
    pub faults: p2psim::faults::FaultPlan,
    /// `true` folds each epoch's manual arrivals in with warm-start
    /// incremental training; `false` retrains from scratch on the cumulative
    /// manual set every epoch (the accuracy reference).
    pub incremental: bool,
    /// RNG seed (arrivals, manual/refine coin flips, network).
    pub seed: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            epochs: 5,
            epoch_secs: 600.0,
            manual_fraction: 0.2,
            refine_fraction: 0.5,
            drift: 0.6,
            bursts: None,
            churn: ChurnModel::None,
            faults: p2psim::faults::FaultPlan::default(),
            incremental: true,
            seed: 42,
        }
    }
}

/// What happened during one epoch.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Epoch index.
    pub epoch: usize,
    /// Simulated start time of the epoch in seconds.
    pub start_secs: f64,
    /// Fraction of peers online at the epoch boundary.
    pub availability: f64,
    /// Documents that arrived this epoch.
    pub arrivals: usize,
    /// Arrivals manually tagged (new training data).
    pub new_manual: usize,
    /// Auto-tag requests issued this epoch (including ones deferred from
    /// before the first learn).
    pub auto_requested: usize,
    /// Requests served successfully.
    pub auto_tagged: usize,
    /// Requests that failed (requester offline / service unreachable).
    pub auto_failed: usize,
    /// User corrections applied this epoch.
    pub refined: usize,
    /// Micro-F1 over this epoch's auto-tag requests (1.0 when there were
    /// none — the metric of an empty evaluation).
    pub micro_f1: f64,
    /// Macro-F1 over this epoch's auto-tag requests.
    pub macro_f1: f64,
    /// Wall-clock seconds spent in the learning phase (the phase the
    /// incremental/full-retrain modes differ in).
    pub learn_secs: f64,
    /// Wall-clock seconds spent applying refinements.
    pub refine_secs: f64,
    /// Wall-clock seconds spent auto-tagging.
    pub auto_secs: f64,
}

/// The result of a whole session run.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// Protocol under test.
    pub protocol: &'static str,
    /// Whether the incremental path was used.
    pub incremental: bool,
    /// Per-epoch trajectory.
    pub epochs: Vec<EpochReport>,
    /// Final-state evaluation over *every* document that ever requested
    /// automatic tags, from the library's final tag assignments (so applied
    /// refinements and the no-clobber rule are reflected).
    pub final_metrics: MultiLabelMetrics,
    /// The same final-state evaluation stratified by owning user (= peer),
    /// for per-peer and cold-start views.
    pub final_by_user: GroupedMetrics,
    /// Number of manual taggings each user contributed over the session,
    /// indexed by user id — the ranking behind cold-start stratification.
    pub manual_per_user: Vec<usize>,
    /// Total corrections applied across the session.
    pub total_refinements: usize,
}

impl SessionOutcome {
    /// Final macro-F1 (the session acceptance metric).
    pub fn final_macro_f1(&self) -> f64 {
        self.final_metrics.macro_f1()
    }

    /// Final micro-F1.
    pub fn final_micro_f1(&self) -> f64 {
        self.final_metrics.micro_f1()
    }

    /// The `count` peers with the fewest manual taggings (ties broken toward
    /// lower peer ids) — the peers whose own training data is scarcest, so
    /// collaborative knowledge matters most for them.
    pub fn cold_start_peers(&self, count: usize) -> Vec<usize> {
        let mut ranked: Vec<(usize, usize)> = self
            .manual_per_user
            .iter()
            .enumerate()
            .map(|(user, &manual)| (manual, user))
            .collect();
        ranked.sort_unstable();
        ranked
            .into_iter()
            .take(count)
            .map(|(_, user)| user)
            .collect()
    }

    /// Pooled final-state metrics of the `count` coldest-start peers (the
    /// peers with the fewest manual taggings over the whole session).
    pub fn cold_start_metrics(&self, count: usize) -> MultiLabelMetrics {
        self.final_by_user.merged_over(self.cold_start_peers(count))
    }

    /// Total wall-clock seconds spent in the learning phase across epochs —
    /// the time the incremental/full-retrain modes differ in.
    pub fn total_learn_secs(&self) -> f64 {
        self.epochs.iter().map(|e| e.learn_secs).sum()
    }
}

/// The epoch driver: owns the system under test and replays the timeline.
pub struct SessionDriver {
    system: P2PDocTagger,
    arrivals: ArrivalTimeline,
    config: SessionConfig,
    /// Per-document coin flip: manually tagged on arrival?
    manual_roll: Vec<bool>,
    /// Per-document coin flip: corrected by the user when mistagged?
    refine_roll: Vec<bool>,
    num_docs: usize,
}

impl SessionDriver {
    /// Builds a driver for `protocol` over `corpus`: generates the arrival
    /// timeline, rolls the per-document manual/refine decisions, and ingests
    /// the corpus into a network whose churn spans the whole session.
    ///
    /// The corpus is deep-copied into the system; sessions at scale should
    /// hand over an [`Arc`] via [`Self::new_shared`] instead.
    pub fn new(protocol: ProtocolKind, config: SessionConfig, corpus: &Corpus) -> Self {
        Self::new_shared(protocol, config, Arc::new(corpus.clone()))
    }

    /// Like [`Self::new`], but shares the corpus instead of copying it.
    pub fn new_shared(protocol: ProtocolKind, config: SessionConfig, corpus: Arc<Corpus>) -> Self {
        assert!(config.epochs > 0, "need at least one epoch");
        assert!(config.epoch_secs > 0.0, "epochs must have positive length");
        let horizon_secs = config.epochs as f64 * config.epoch_secs;
        let sim = SimConfig {
            num_peers: corpus.num_users().max(1),
            churn: config.churn,
            faults: config.faults.clone(),
            // One epoch of slack so the last boundary is inside the horizon.
            horizon_secs: (horizon_secs + config.epoch_secs).ceil() as u64,
            seed: config.seed,
            ..SimConfig::default()
        };
        let mut system = P2PDocTagger::new(DocTaggerConfig {
            protocol,
            network: Some(sim),
            seed: config.seed,
            ..DocTaggerConfig::default()
        });
        let arrivals = ArrivalTimeline::generate(
            &corpus,
            &ArrivalSpec {
                horizon_secs,
                drift: config.drift,
                bursts: config.bursts.clone(),
                seed: config.seed ^ 0xA55A,
            },
        );
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5E55_1013);
        let manual_p = config.manual_fraction.clamp(0.0, 1.0);
        let refine_p = config.refine_fraction.clamp(0.0, 1.0);
        let mut manual_roll: Vec<bool> =
            (0..corpus.len()).map(|_| rng.gen_bool(manual_p)).collect();
        let refine_roll: Vec<bool> = (0..corpus.len()).map(|_| rng.gen_bool(refine_p)).collect();
        // Every user manually tags their first arrival: a brand-new peer has
        // no model otherwise, and the paper's users always seed the system
        // with "a small number of tagged documents".
        for docs in corpus.documents_by_user() {
            if let Some(&first) = docs
                .iter()
                .min_by_key(|&&d| (arrivals.arrival_secs(d) * 1e6) as u64)
            {
                manual_roll[first] = true;
            }
        }
        let num_docs = corpus.len();
        system.ingest_shared(corpus);
        Self {
            system,
            arrivals,
            config,
            manual_roll,
            refine_roll,
            num_docs,
        }
    }

    /// Read access to the system under test (library, tag store, network
    /// stats) — useful after [`Self::run`].
    pub fn system(&self) -> &P2PDocTagger {
        &self.system
    }

    /// The generated arrival timeline.
    pub fn arrivals(&self) -> &ArrivalTimeline {
        &self.arrivals
    }

    /// Replays the whole session and returns the outcome.
    pub fn run(&mut self) -> Result<SessionOutcome, ProtocolError> {
        let mut reports = Vec::with_capacity(self.config.epochs);
        let mut learned = false;
        let mut cumulative_manual: Vec<DocumentId> = Vec::new();
        let mut deferred_auto: Vec<DocumentId> = Vec::new();
        let mut pending_refine: Vec<DocumentId> = Vec::new();
        let mut requested_ever: BTreeSet<DocumentId> = BTreeSet::new();
        let mut total_refinements = 0usize;

        // Integer epoch boundaries: window k is [k·E, (k+1)·E) microseconds
        // (the last window extends to the end of time), so consecutive
        // windows partition the timeline exactly — float-derived bounds
        // could leave a 1 µs gap or overlap at some boundary and silently
        // drop or double-count an arrival.
        let epoch_micros = (self.config.epoch_secs * 1e6).round() as u64;
        for epoch in 0..self.config.epochs {
            let start_secs = epoch as f64 * self.config.epoch_secs;
            if epoch > 0 {
                // Churn takes effect between epochs.
                self.system
                    .advance_time(SimTime::from_secs_f64(self.config.epoch_secs));
            }
            let window_end = if epoch + 1 == self.config.epochs {
                u64::MAX
            } else {
                (epoch as u64 + 1) * epoch_micros
            };
            let window: Vec<DocumentId> = self
                .arrivals
                .arrivals_between_micros(epoch as u64 * epoch_micros, window_end)
                .iter()
                .map(|a| a.doc)
                .collect();
            let mut new_manual = Vec::new();
            let mut new_auto = Vec::new();
            for &doc in &window {
                if self.manual_roll[doc] {
                    new_manual.push(doc);
                } else {
                    new_auto.push(doc);
                }
            }

            // Learning: warm-start incremental, or full retrain reference.
            let learn_t = crate::timing::Stopwatch::start();
            cumulative_manual.extend(&new_manual);
            if !learned {
                if !new_manual.is_empty() {
                    self.system
                        .learn(&self.cumulative_split(&cumulative_manual))?;
                    learned = true;
                }
            } else if self.config.incremental {
                // Even with no new arrivals this flushes the backlog of
                // peers that were offline when their data arrived.
                self.system.learn_incremental(&new_manual)?;
            } else {
                // The reference retrains from scratch every epoch, so it
                // also sees refinements at the same epoch boundaries.
                self.system
                    .learn(&self.cumulative_split(&cumulative_manual))?;
            }
            let learn_secs = learn_t.elapsed_secs();

            // Apply corrections scheduled from earlier epochs.
            let refine_t = crate::timing::Stopwatch::start();
            let mut refined = 0usize;
            if learned {
                let due = std::mem::take(&mut pending_refine);
                for doc in due {
                    let truth = self.truth_names(doc);
                    match self.system.refine(doc, truth) {
                        Ok(()) => {
                            refined += 1;
                            if !self.config.incremental {
                                // The reference folds the corrected document
                                // into its next from-scratch retrain.
                                cumulative_manual.push(doc);
                            }
                        }
                        // The correcting peer is offline (or its route is
                        // down): the user retries next epoch.
                        Err(_) => pending_refine.push(doc),
                    }
                }
            }
            let refine_secs = refine_t.elapsed_secs();
            total_refinements += refined;

            // Auto-tagging: this epoch's requests plus any deferred from
            // before the first learn.
            let auto_t = crate::timing::Stopwatch::start();
            let mut requests = std::mem::take(&mut deferred_auto);
            requests.extend(new_auto);
            let (auto_requested, outcome) = if learned && !requests.is_empty() {
                requested_ever.extend(requests.iter().copied());
                let outcome = self.system.auto_tag_docs(&requests)?;
                // Schedule corrections: a user notices a wrong automatic tag
                // set with probability `refine_fraction`.
                for &doc in &requests {
                    let entry = self.system.library().entry(doc);
                    let mistagged = entry
                        .map(|e| {
                            e.source == TagSource::Automatic && e.tags != self.truth_names(doc)
                        })
                        .unwrap_or(false);
                    if mistagged && self.refine_roll[doc] {
                        pending_refine.push(doc);
                    }
                }
                (requests.len(), Some(outcome))
            } else {
                deferred_auto = requests;
                (0, None)
            };
            let auto_secs = auto_t.elapsed_secs();

            let availability = self
                .system
                .network()
                .map(|n| n.availability())
                .unwrap_or(0.0);
            reports.push(EpochReport {
                epoch,
                start_secs,
                availability,
                arrivals: window.len(),
                new_manual: new_manual.len(),
                auto_requested,
                auto_tagged: outcome.as_ref().map_or(0, |o| o.tagged),
                auto_failed: outcome.as_ref().map_or(0, |o| o.failed),
                refined,
                micro_f1: outcome.as_ref().map_or(1.0, |o| o.metrics.micro_f1()),
                macro_f1: outcome.as_ref().map_or(1.0, |o| o.metrics.macro_f1()),
                learn_secs,
                refine_secs,
                auto_secs,
            });
        }

        let (final_metrics, final_by_user) = self.evaluate_final(&requested_ever);
        Ok(SessionOutcome {
            protocol: self.system.protocol_name(),
            incremental: self.config.incremental,
            epochs: reports,
            final_metrics,
            final_by_user,
            manual_per_user: self.manual_per_user(),
            total_refinements,
        })
    }

    /// Manual taggings contributed by each user over the whole session.
    fn manual_per_user(&self) -> Vec<usize> {
        let corpus = self.system.corpus().expect("ingested");
        let mut counts = vec![0usize; corpus.num_users()];
        for d in corpus.documents() {
            if self.manual_roll[d.id] {
                counts[d.user] += 1;
            }
        }
        counts
    }

    /// The cumulative split for a full retrain: everything manually tagged so
    /// far trains, the rest of the corpus is held out.
    fn cumulative_split(&self, manual: &[DocumentId]) -> TrainTestSplit {
        let mut train: Vec<DocumentId> = manual.to_vec();
        train.sort_unstable();
        train.dedup();
        let in_train: BTreeSet<DocumentId> = train.iter().copied().collect();
        let test: Vec<DocumentId> = (0..self.num_docs)
            .filter(|d| !in_train.contains(d))
            .collect();
        TrainTestSplit { train, test }
    }

    /// Ground-truth tag names of a document (what a correcting user enters).
    fn truth_names(&self, doc: DocumentId) -> BTreeSet<String> {
        self.system
            .corpus()
            .expect("ingested")
            .document(doc)
            .expect("document exists")
            .tags
            .clone()
    }

    /// Final-state evaluation: the library's current tags of every document
    /// that ever requested automatic tagging, against ground truth, over the
    /// frozen evaluation universe — flat, and stratified by owning user.
    fn evaluate_final(&self, docs: &BTreeSet<DocumentId>) -> (MultiLabelMetrics, GroupedMetrics) {
        let corpus = self.system.corpus().expect("ingested");
        let universe: BTreeSet<u32> = self
            .system
            .eval_universe()
            .cloned()
            .unwrap_or_else(|| (0..corpus.num_tags() as u32).collect());
        let mut predictions = Vec::with_capacity(docs.len());
        let mut truths = Vec::with_capacity(docs.len());
        let mut owners = Vec::with_capacity(docs.len());
        for &doc in docs {
            let assigned: BTreeSet<u32> = self
                .system
                .library()
                .tags_of(doc)
                .iter()
                .filter_map(|t| corpus.tag_id(t))
                .collect();
            predictions.push(assigned);
            truths.push(corpus.tag_ids_of(doc));
            owners.push(corpus.document(doc).expect("document exists").user);
        }
        (
            MultiLabelMetrics::evaluate(&predictions, &truths, &universe),
            GroupedMetrics::evaluate(&predictions, &truths, &universe, &owners),
        )
    }
}

/// Convenience: builds a driver and runs the whole session.
pub fn run_session(
    protocol: ProtocolKind,
    config: SessionConfig,
    corpus: &Corpus,
) -> Result<SessionOutcome, ProtocolError> {
    SessionDriver::new(protocol, config, corpus).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::{CorpusGenerator, CorpusSpec};

    fn session_corpus() -> Corpus {
        CorpusGenerator::new(CorpusSpec {
            num_tags: 8,
            num_users: 10,
            min_docs_per_user: 14,
            max_docs_per_user: 22,
            interests_per_user: 4,
            ..CorpusSpec::tiny()
        })
        .generate()
    }

    fn churny(incremental: bool) -> SessionConfig {
        SessionConfig {
            epochs: 4,
            epoch_secs: 600.0,
            churn: ChurnModel::Exponential {
                mean_session_secs: 3_000.0,
                mean_offline_secs: 300.0,
            },
            incremental,
            seed: 2010,
            ..SessionConfig::default()
        }
    }

    #[test]
    fn session_completes_and_improves_over_epochs_without_churn() {
        let corpus = session_corpus();
        let cfg = SessionConfig {
            epochs: 4,
            incremental: true,
            ..SessionConfig::default()
        };
        let mut driver = SessionDriver::new(ProtocolKind::pace(), cfg, &corpus);
        let outcome = driver.run().unwrap();
        assert_eq!(outcome.epochs.len(), 4);
        let requested: usize = outcome.epochs.iter().map(|e| e.auto_requested).sum();
        let manual: usize = outcome.epochs.iter().map(|e| e.new_manual).sum();
        assert_eq!(requested + manual, corpus.len(), "every arrival handled");
        assert!(outcome.epochs.iter().all(|e| e.auto_failed == 0));
        assert!(
            outcome.final_micro_f1() > 0.3,
            "final micro-F1 {}",
            outcome.final_micro_f1()
        );
        // Refinements happened and lifted the final numbers above the raw
        // per-epoch trajectory.
        assert!(outcome.total_refinements > 0);
    }

    /// The acceptance criterion of the streaming session layer: a multi-epoch
    /// run under Exponential churn completes on the incremental path, and its
    /// final macro-F1 is within 5 % of the full-retrain reference replaying
    /// the *same* timeline.
    #[test]
    fn incremental_final_macro_f1_within_5_percent_of_full_retrain_under_churn() {
        let corpus = session_corpus();
        let incremental = run_session(ProtocolKind::pace(), churny(true), &corpus).unwrap();
        let full = run_session(ProtocolKind::pace(), churny(false), &corpus).unwrap();
        assert!(incremental.epochs.len() >= 3);
        assert!(incremental.incremental && !full.incremental);
        let (inc, reference) = (incremental.final_macro_f1(), full.final_macro_f1());
        eprintln!(
            "incremental macro={inc:.3} micro={:.3} | full-retrain macro={reference:.3} micro={:.3}",
            incremental.final_micro_f1(),
            full.final_micro_f1(),
        );
        assert!(reference > 0.2, "reference macro-F1 {reference}");
        assert!(
            inc >= reference - 0.05 * reference,
            "incremental macro-F1 {inc} more than 5% below full-retrain reference {reference}"
        );
    }

    #[test]
    fn refined_documents_survive_later_epochs() {
        let corpus = session_corpus();
        let cfg = SessionConfig {
            epochs: 5,
            refine_fraction: 1.0,
            incremental: true,
            ..SessionConfig::default()
        };
        let mut driver = SessionDriver::new(ProtocolKind::pace(), cfg, &corpus);
        let outcome = driver.run().unwrap();
        assert!(outcome.total_refinements > 0);
        // Every refined document still carries its corrected (ground-truth)
        // tags at the end of the session: later auto-tag passes did not
        // clobber them.
        let lib = driver.system().library();
        let mut checked = 0;
        for entry in lib.iter() {
            if entry.source == TagSource::Refined {
                let truth = &driver
                    .system()
                    .corpus()
                    .unwrap()
                    .document(entry.doc)
                    .unwrap()
                    .tags;
                assert_eq!(&entry.tags, truth, "doc {} lost its correction", entry.doc);
                checked += 1;
            }
        }
        assert!(checked > 0);
        // With every mistag corrected, the final numbers beat the raw
        // trajectory's mean.
        let mean_epoch_micro: f64 = outcome
            .epochs
            .iter()
            .filter(|e| e.auto_requested > 0)
            .map(|e| e.micro_f1)
            .sum::<f64>()
            / outcome
                .epochs
                .iter()
                .filter(|e| e.auto_requested > 0)
                .count()
                .max(1) as f64;
        assert!(outcome.final_micro_f1() >= mean_epoch_micro);
    }

    #[test]
    fn outcome_stratifies_by_peer_and_ranks_cold_start_peers() {
        let corpus = session_corpus();
        let cfg = SessionConfig {
            epochs: 3,
            incremental: true,
            ..SessionConfig::default()
        };
        let outcome = run_session(ProtocolKind::pace(), cfg, &corpus).unwrap();
        assert_eq!(outcome.manual_per_user.len(), corpus.num_users());
        // Every user seeds with at least their first arrival.
        assert!(outcome.manual_per_user.iter().all(|&m| m >= 1));
        // The per-user stratification pools back to the flat evaluation.
        let all_users = outcome
            .final_by_user
            .iter()
            .map(|(u, _)| u)
            .collect::<Vec<_>>();
        let pooled = outcome.final_by_user.merged_over(all_users);
        assert_eq!(pooled, outcome.final_metrics);
        // Cold-start peers are ranked by manual-tagging count.
        let cold = outcome.cold_start_peers(3);
        assert_eq!(cold.len(), 3);
        let max_cold = cold
            .iter()
            .map(|&u| outcome.manual_per_user[u])
            .max()
            .unwrap();
        let min_rest = (0..corpus.num_users())
            .filter(|u| !cold.contains(u))
            .map(|u| outcome.manual_per_user[u])
            .min()
            .unwrap();
        assert!(max_cold <= min_rest);
        let cold_metrics = outcome.cold_start_metrics(3);
        assert!(cold_metrics.num_docs > 0);
        assert!(cold_metrics.num_docs < outcome.final_metrics.num_docs);
        // Head/tail stratification is available on the final metrics.
        let split = outcome.final_metrics.head_tail(0.3);
        assert!(!split.head_tags.is_empty());
        assert!(split.head_tags.is_disjoint(&split.tail_tags));
    }

    #[test]
    fn sessions_replay_flash_crowd_bursts() {
        let corpus = session_corpus();
        let cfg = SessionConfig {
            epochs: 3,
            bursts: Some(dataset::BurstSpec {
                num_bursts: 2,
                width_secs: 120.0,
                attraction: 0.9,
            }),
            incremental: true,
            ..SessionConfig::default()
        };
        let outcome = run_session(ProtocolKind::pace(), cfg, &corpus).unwrap();
        let handled: usize = outcome
            .epochs
            .iter()
            .map(|e| e.auto_requested + e.new_manual)
            .sum();
        // Bursts re-time arrivals but never drop or duplicate them; deferred
        // auto requests may be re-counted in a later epoch, so handled ≥ len.
        assert!(handled >= corpus.len());
        assert!(outcome.final_micro_f1() > 0.2);
    }

    #[test]
    fn local_only_also_streams() {
        let corpus = session_corpus();
        let cfg = SessionConfig {
            epochs: 3,
            incremental: true,
            ..SessionConfig::default()
        };
        let outcome = run_session(ProtocolKind::local_only(), cfg, &corpus).unwrap();
        assert_eq!(outcome.protocol, "local-only");
        assert!(outcome.final_micro_f1() > 0.0);
    }
}
