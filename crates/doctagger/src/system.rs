//! The P2PDocTagger orchestrator.
//!
//! Ties the preprocessing, P2P learning and tagging stages together, following
//! the workflow of §2: users select documents → documents are preprocessed →
//! some are manually tagged → a global classification model is constructed in
//! a distributed manner → remaining documents are tagged automatically → users
//! refine tags and the models adapt.

use crate::config::DocTaggerConfig;
use crate::library::{DocumentLibrary, TagSource};
use crate::refine::{Refinement, RefinementLog};
use crate::suggest::SuggestionCloud;
use crate::tagcloud::TagCloud;
use crate::tagstore::TagStore;
use dataset::{Corpus, DocumentId, TrainTestSplit, VectorizedCorpus};
use ml::{MultiLabelDataset, MultiLabelExample, MultiLabelMetrics};
use p2pclassify::{P2PTagClassifier, ProtocolError};
use p2psim::{P2PNetwork, PeerId, SimConfig, SimStats};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Result of an auto-tagging pass over the untagged documents.
#[derive(Debug, Clone)]
pub struct AutoTagOutcome {
    /// Quality of the automatic tags against the held-out ground truth.
    pub metrics: MultiLabelMetrics,
    /// Number of documents successfully tagged.
    pub tagged: usize,
    /// Number of documents whose tagging failed (e.g. the peer or every model
    /// holder was offline). Failed documents count as "no tags assigned" in
    /// the metrics.
    pub failed: usize,
    /// Failures caused by the requesting peer itself being offline (these say
    /// nothing about the protocol's fault tolerance).
    pub failed_peer_offline: usize,
    /// Failures caused by the tagging service being unreachable (central
    /// server or every super-peer down) — the protocol-side failure mode.
    pub failed_unreachable: usize,
}

impl AutoTagOutcome {
    /// Fraction of requests issued by *online* peers that could not be served.
    /// This isolates the protocol's availability from the requester's own
    /// churn (a peer that is offline cannot ask for tags in the first place).
    pub fn service_failure_rate(&self) -> f64 {
        let served_or_failed = self.tagged + self.failed_unreachable;
        if served_or_failed == 0 {
            return 0.0;
        }
        self.failed_unreachable as f64 / served_or_failed as f64
    }
}

/// The automated, distributed collaborative document tagging system.
pub struct P2PDocTagger {
    config: DocTaggerConfig,
    protocol: Box<dyn P2PTagClassifier>,
    corpus: Option<Arc<Corpus>>,
    vectorized: Option<VectorizedCorpus>,
    network: Option<P2PNetwork>,
    split: Option<TrainTestSplit>,
    library: DocumentLibrary,
    tag_store: TagStore,
    refinements: RefinementLog,
    /// Evaluation tag universe, frozen at [`Self::learn`] time so metric
    /// denominators stay comparable across epochs and protocols (refinements
    /// must not silently grow it).
    eval_universe: Option<BTreeSet<u32>>,
    /// Refinement tags outside the frozen universe, by name: stored for the
    /// library/tag store but excluded from model training and model metrics.
    unseen_refinements: BTreeMap<String, BTreeSet<DocumentId>>,
    learned: bool,
}

impl P2PDocTagger {
    /// Creates a system with the given configuration.
    pub fn new(config: DocTaggerConfig) -> Self {
        let protocol = config.protocol.build();
        Self {
            config,
            protocol,
            corpus: None,
            vectorized: None,
            network: None,
            split: None,
            library: DocumentLibrary::new(),
            tag_store: TagStore::new(),
            refinements: RefinementLog::new(),
            eval_universe: None,
            unseen_refinements: BTreeMap::new(),
            learned: false,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DocTaggerConfig {
        &self.config
    }

    /// The name of the plugged-in P2P classification protocol.
    pub fn protocol_name(&self) -> &'static str {
        self.protocol.name()
    }

    /// Ingests a corpus: runs the preprocessing pipeline over every selected
    /// document and builds the simulated P2P environment (one peer per user
    /// unless an explicit network configuration was provided).
    ///
    /// The corpus is deep-copied. Callers that already hold the corpus in an
    /// [`Arc`] should prefer [`Self::ingest_shared`], which shares it — at
    /// 10k peers the copy is hundreds of thousands of strings.
    pub fn ingest(&mut self, corpus: &Corpus) {
        self.ingest_shared(Arc::new(corpus.clone()));
    }

    /// Ingests a shared corpus without copying the documents (see
    /// [`Self::ingest`]).
    pub fn ingest_shared(&mut self, corpus: Arc<Corpus>) {
        let vectorized = VectorizedCorpus::build_with_weighting(&corpus, self.config.weighting);
        let sim = self.config.network.clone().unwrap_or_else(|| SimConfig {
            num_peers: corpus.num_users().max(1),
            seed: self.config.seed,
            ..SimConfig::default()
        });
        self.network = Some(P2PNetwork::new(sim));
        self.vectorized = Some(vectorized);
        self.corpus = Some(corpus);
        self.library = DocumentLibrary::new();
        self.tag_store = TagStore::new();
        self.refinements = RefinementLog::new();
        self.eval_universe = None;
        self.unseen_refinements = BTreeMap::new();
        self.learned = false;
    }

    /// Number of peers in the simulated network (0 before ingestion).
    pub fn num_peers(&self) -> usize {
        self.network.as_ref().map_or(0, P2PNetwork::num_peers)
    }

    /// Runs the P2P collaborative learning phase: the training side of `split`
    /// plays the role of the users' manually tagged documents; the global
    /// classification model is then constructed in a distributed manner.
    pub fn learn(&mut self, split: &TrainTestSplit) -> Result<(), ProtocolError> {
        let corpus = self
            .corpus
            .as_ref()
            .expect("ingest() must be called before learn()");
        let vectorized = self.vectorized.as_ref().expect("vectorized corpus present");
        let network = self.network.as_mut().expect("network present");

        // Record the manual tags in the library and the file-metadata store.
        for &doc in &split.train {
            let d = corpus
                .document(doc)
                .expect("split refers to corpus documents");
            self.library
                .assign(doc, d.user, d.tags.clone(), TagSource::Manual);
            self.tag_store
                .set_tags(&Self::path_of(doc, d.user), d.tags.iter().cloned());
        }

        // Each user's peer contributes its manually tagged documents.
        let num_peers = network.num_peers();
        let mut peer_data: Vec<MultiLabelDataset> = vec![MultiLabelDataset::new(); num_peers];
        for &doc in &split.train {
            let d = corpus
                .document(doc)
                .expect("split refers to corpus documents");
            let peer = d.user % num_peers;
            peer_data[peer].push(vectorized.example(doc));
        }

        self.protocol.train(network, &peer_data)?;
        self.split = Some(split.clone());
        // Freeze the evaluation universe: refinements after this point may
        // introduce tags the models were never trained on, and those must not
        // change metric denominators across epochs.
        self.eval_universe = Some((0..corpus.num_tags() as u32).collect());
        self.learned = true;
        Ok(())
    }

    /// Folds newly arrived, manually tagged documents into the already
    /// trained models — the streaming counterpart of [`Self::learn`].
    ///
    /// The documents' tags are recorded as manual, the examples are grouped
    /// per owning peer and handed to
    /// [`P2PTagClassifier::train_incremental`], which warm-starts from the
    /// stored models instead of retraining from scratch. The split's train
    /// side grows (and its test side shrinks) accordingly, so a later
    /// [`Self::auto_tag_all`] does not evaluate on documents the models were
    /// trained on.
    /// An empty `new_train` is not a no-op: the protocol still gets an
    /// incremental round, which flushes any backlog from peers that were
    /// offline when their data arrived and have since returned.
    pub fn learn_incremental(&mut self, new_train: &[DocumentId]) -> Result<(), ProtocolError> {
        if !self.learned {
            return Err(ProtocolError::NotTrained);
        }
        let corpus = self.corpus.as_ref().expect("ingested");
        let vectorized = self.vectorized.as_ref().expect("ingested");
        let network = self.network.as_mut().expect("ingested");
        let num_peers = network.num_peers();
        let mut peer_data: Vec<MultiLabelDataset> = vec![MultiLabelDataset::new(); num_peers];
        for &doc in new_train {
            let d = corpus.document(doc).expect("new documents exist in corpus");
            self.library
                .assign(doc, d.user, d.tags.clone(), TagSource::Manual);
            self.tag_store
                .set_tags(&Self::path_of(doc, d.user), d.tags.iter().cloned());
            peer_data[d.user % num_peers].push(vectorized.example(doc));
        }
        self.protocol.train_incremental(network, &peer_data)?;
        if let Some(split) = self.split.as_mut() {
            let added: BTreeSet<DocumentId> = new_train.iter().copied().collect();
            split.test.retain(|d| !added.contains(d));
            split.train.extend(added);
            split.train.sort_unstable();
            split.train.dedup();
        }
        Ok(())
    }

    /// Automatically tags one document on behalf of its owner's peer and
    /// records the result in the library and the tag store.
    pub fn auto_tag(&mut self, doc: DocumentId) -> Result<BTreeSet<String>, ProtocolError> {
        if !self.learned {
            return Err(ProtocolError::NotTrained);
        }
        let tag_ids = {
            let corpus = self.corpus.as_ref().expect("ingested");
            let vectorized = self.vectorized.as_ref().expect("ingested");
            let network = self.network.as_mut().expect("ingested");
            let d = corpus.document(doc).expect("document exists");
            let peer = PeerId::from(d.user % network.num_peers());
            self.protocol
                .predict(network, peer, vectorized.vector(doc))?
        };
        Ok(self.record_auto_tags(doc, &tag_ids))
    }

    /// Maps predicted tag ids to names and records them for `doc` in the
    /// library and the tag store — the single write path shared by
    /// [`Self::auto_tag`] and [`Self::auto_tag_all`].
    ///
    /// Documents whose latest tags came from the user (`Manual` or `Refined`)
    /// are left untouched and keep their current tags: re-running the
    /// automated tagger must adapt to the user's corrections (§2), not
    /// overwrite them with machine output.
    fn record_auto_tags(&mut self, doc: DocumentId, tag_ids: &BTreeSet<u32>) -> BTreeSet<String> {
        if let Some(entry) = self.library.entry(doc) {
            if matches!(entry.source, TagSource::Manual | TagSource::Refined) {
                return entry.tags.clone();
            }
        }
        let (user, names) = {
            let corpus = self.corpus.as_ref().expect("ingested");
            let d = corpus.document(doc).expect("document exists");
            let names: BTreeSet<String> = tag_ids
                .iter()
                .filter_map(|&t| corpus.tag_name(t).map(str::to_string))
                .collect();
            (d.user, names)
        };
        self.library
            .assign(doc, user, names.clone(), TagSource::Automatic);
        self.tag_store
            .set_tags(&Self::path_of(doc, user), names.iter().cloned());
        names
    }

    /// Automatically tags every untagged (test) document and evaluates the
    /// result against the held-out ground truth.
    ///
    /// The whole test set is handed to the protocol as one batch
    /// ([`P2PTagClassifier::predict_batch`]): protocols whose prediction is
    /// communication-free fan the documents out across cores, while
    /// query-paying protocols keep their sequential per-document loop.
    /// Library updates, tag-store writes and metric accounting then apply in
    /// document order, so the outcome is identical to calling
    /// [`Self::auto_tag`] per document.
    pub fn auto_tag_all(&mut self) -> Result<AutoTagOutcome, ProtocolError> {
        let test = self.split.clone().ok_or(ProtocolError::NotTrained)?.test;
        self.auto_tag_docs(&test)
    }

    /// Automatically tags the given documents (a streaming epoch's worth of
    /// auto-tag requests) and evaluates against the held-out ground truth
    /// over the evaluation universe frozen at [`Self::learn`] time.
    pub fn auto_tag_docs(&mut self, docs: &[DocumentId]) -> Result<AutoTagOutcome, ProtocolError> {
        if !self.learned {
            return Err(ProtocolError::NotTrained);
        }
        let universe = self
            .eval_universe
            .clone()
            .ok_or(ProtocolError::NotTrained)?;
        let results = {
            let corpus = self.corpus.as_ref().expect("ingested");
            let vectorized = self.vectorized.as_ref().expect("ingested");
            let network = self.network.as_mut().expect("ingested");
            let num_peers = network.num_peers();
            let requests: Vec<(PeerId, &textproc::SparseVector)> = docs
                .iter()
                .map(|&doc| {
                    let d = corpus.document(doc).expect("document exists");
                    (PeerId::from(d.user % num_peers), vectorized.vector(doc))
                })
                .collect();
            self.protocol.predict_batch(network, &requests)
        };

        let mut predictions = Vec::with_capacity(docs.len());
        let mut truths = Vec::with_capacity(docs.len());
        let mut tagged = 0;
        let mut failed = 0;
        let mut failed_peer_offline = 0;
        let mut failed_unreachable = 0;
        for (&doc, result) in docs.iter().zip(results) {
            let truth = {
                let corpus = self.corpus.as_ref().expect("ingested");
                corpus.tag_ids_of(doc)
            };
            match result {
                Ok(tag_ids) => {
                    tagged += 1;
                    self.record_auto_tags(doc, &tag_ids);
                    let corpus = self.corpus.as_ref().expect("ingested");
                    let assigned: BTreeSet<u32> = self
                        .library
                        .tags_of(doc)
                        .iter()
                        .filter_map(|t| corpus.tag_id(t))
                        .collect();
                    predictions.push(assigned);
                }
                Err(e) => {
                    failed += 1;
                    match e {
                        ProtocolError::PeerOffline => failed_peer_offline += 1,
                        _ => failed_unreachable += 1,
                    }
                    predictions.push(BTreeSet::new());
                }
            }
            truths.push(truth);
        }
        let metrics = MultiLabelMetrics::evaluate(&predictions, &truths, &universe);
        Ok(AutoTagOutcome {
            metrics,
            tagged,
            failed,
            failed_peer_offline,
            failed_unreachable,
        })
    }

    /// Builds the "Suggestion Cloud" for a document: scored tag suggestions,
    /// filtered by the confidence slider at `threshold` (defaults to the
    /// configured threshold when `None`).
    pub fn suggest(
        &mut self,
        doc: DocumentId,
        threshold: Option<f64>,
    ) -> Result<SuggestionCloud, ProtocolError> {
        if !self.learned {
            return Err(ProtocolError::NotTrained);
        }
        let corpus = self.corpus.as_ref().expect("ingested");
        let vectorized = self.vectorized.as_ref().expect("ingested");
        let network = self.network.as_mut().expect("ingested");
        let d = corpus.document(doc).expect("document exists");
        let peer = PeerId::from(d.user % network.num_peers());
        let scores = self
            .protocol
            .scores(network, peer, vectorized.vector(doc))?;
        let threshold = threshold.unwrap_or(self.config.confidence_threshold);
        Ok(SuggestionCloud::build(&scores, threshold, |t| {
            corpus.tag_name(t).map(str::to_string)
        }))
    }

    /// Applies a user's tag correction: the library and tag store are updated,
    /// the correction is logged, and the classification models adapt.
    ///
    /// Tags inside the evaluation universe frozen at [`Self::learn`] time are
    /// folded into the models as a corrected example. Tags *outside* it
    /// (names the corpus has never seen) are routed explicitly: they reach
    /// the library and the tag store — the user's view — and are tracked in
    /// [`Self::unseen_tag_refinements`], but they are not interned into the
    /// corpus and never enter the models or the metric universe, so micro-F1
    /// keeps the same denominator across epochs.
    pub fn refine(
        &mut self,
        doc: DocumentId,
        corrected: BTreeSet<String>,
    ) -> Result<(), ProtocolError> {
        if !self.learned {
            return Err(ProtocolError::NotTrained);
        }
        let before = self.library.tags_of(doc);
        let (user, example, unseen) = {
            let corpus = self.corpus.as_ref().expect("ingested");
            let user = corpus.document(doc).expect("document exists").user;
            let mut tag_ids = BTreeSet::new();
            let mut unseen = Vec::new();
            for t in &corrected {
                match corpus.tag_id(t) {
                    Some(id) => {
                        tag_ids.insert(id);
                    }
                    None => unseen.push(t.clone()),
                }
            }
            let vectorized = self.vectorized.as_ref().expect("ingested");
            (
                user,
                MultiLabelExample::new(vectorized.vector(doc).clone(), tag_ids),
                unseen,
            )
        };
        let network = self.network.as_mut().expect("ingested");
        let peer = PeerId::from(user % network.num_peers());
        // An example whose known-tag set is empty is still informative: the
        // user is saying none of the modelled tags apply.
        self.protocol.refine(network, peer, &example)?;
        self.library
            .assign(doc, user, corrected.clone(), TagSource::Refined);
        self.tag_store
            .set_tags(&Self::path_of(doc, user), corrected.iter().cloned());
        for name in unseen {
            self.unseen_refinements.entry(name).or_default().insert(doc);
        }
        self.refinements.record(Refinement {
            doc,
            user,
            before,
            after: corrected,
        });
        Ok(())
    }

    /// Advances simulated time (churn takes effect), e.g. between the learning
    /// phase and a later tagging phase.
    ///
    /// Fault events scheduled inside the window are executed and recovered
    /// here: a crash-restarted peer has its in-memory protocol state wiped
    /// (the data a real process would lose) and then runs digest-based
    /// anti-entropy against the overlay; when a partition heals, the peers on
    /// the minority side of the cut re-sync what they missed. With no fault
    /// plan configured both drain queues stay empty and this is exactly the
    /// old `net.advance(dt)`.
    pub fn advance_time(&mut self, dt: p2psim::SimTime) {
        let Some(net) = self.network.as_mut() else {
            return;
        };
        net.advance(dt);
        for peer in net.drain_crash_restarts() {
            self.protocol.on_crash_restart(net, peer);
            self.protocol.resync(net, peer);
        }
        for window in net.drain_healed_partitions() {
            let (mut cut, mut rest) = (Vec::new(), Vec::new());
            for peer in net.peers() {
                if window.scope.side(peer) {
                    cut.push(peer);
                } else {
                    rest.push(peer);
                }
            }
            // The smaller side missed the majority's traffic.
            let minority = if cut.len() <= rest.len() { cut } else { rest };
            for peer in minority {
                if net.is_online(peer) {
                    self.protocol.resync(net, peer);
                }
            }
        }
    }

    /// The document library (the "Library" navigation component).
    pub fn library(&self) -> &DocumentLibrary {
        &self.library
    }

    /// The file-metadata tag store.
    pub fn tag_store(&self) -> &TagStore {
        &self.tag_store
    }

    /// The refinement log.
    pub fn refinements(&self) -> &RefinementLog {
        &self.refinements
    }

    /// Refinement tags outside the frozen evaluation universe, with the
    /// documents they were applied to. These are visible to the user (library
    /// and tag store) but excluded from model training and model metrics.
    pub fn unseen_tag_refinements(&self) -> &BTreeMap<String, BTreeSet<DocumentId>> {
        &self.unseen_refinements
    }

    /// The evaluation tag universe frozen at [`Self::learn`] time (`None`
    /// before learning).
    pub fn eval_universe(&self) -> Option<&BTreeSet<u32>> {
        self.eval_universe.as_ref()
    }

    /// The current tag cloud (the "Tag Cloud" navigation component).
    pub fn tag_cloud(&self) -> TagCloud {
        TagCloud::from_library(&self.library)
    }

    /// The plugged protocol's reliable-link counters: sends, losses,
    /// retransmissions, corrupted frames rejected, give-ups, re-syncs. All
    /// zero for local-only (it never sends) and for protocols that have not
    /// communicated yet.
    pub fn protocol_link_stats(&self) -> p2pclassify::LinkStats {
        self.protocol.link_stats()
    }

    /// Communication statistics accumulated so far (empty before ingestion).
    pub fn network_stats(&self) -> SimStats {
        self.network
            .as_ref()
            .map(|n| n.stats().clone())
            .unwrap_or_default()
    }

    /// The simulated network, when ingested (read access for experiments).
    pub fn network(&self) -> Option<&P2PNetwork> {
        self.network.as_ref()
    }

    /// The ingested corpus, if any.
    pub fn corpus(&self) -> Option<&Corpus> {
        self.corpus.as_deref()
    }

    /// Number of tags currently known to the system (including ones introduced
    /// through refinement).
    pub fn known_tags(&self) -> BTreeMap<String, usize> {
        self.library.tag_counts()
    }

    /// The synthetic file path under which a document's tags are stored as
    /// metadata.
    pub fn path_of(doc: DocumentId, user: usize) -> String {
        format!("/home/user{user}/documents/doc{doc:05}.txt")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolKind;
    use dataset::{CorpusGenerator, CorpusSpec};

    fn system_with(protocol: ProtocolKind) -> (P2PDocTagger, Corpus, TrainTestSplit) {
        let corpus = CorpusGenerator::new(CorpusSpec::tiny()).generate();
        let split = TrainTestSplit::demo_protocol(&corpus, 3);
        let mut sys = P2PDocTagger::new(DocTaggerConfig {
            protocol,
            ..Default::default()
        });
        sys.ingest(&corpus);
        (sys, corpus, split)
    }

    #[test]
    fn end_to_end_with_pace() {
        let (mut sys, corpus, split) = system_with(ProtocolKind::pace());
        assert_eq!(sys.num_peers(), corpus.num_users());
        sys.learn(&split).unwrap();
        let outcome = sys.auto_tag_all().unwrap();
        assert_eq!(outcome.tagged + outcome.failed, split.test.len());
        assert_eq!(outcome.failed, 0);
        assert!(
            outcome.metrics.micro_f1() > 0.3,
            "micro-F1 {}",
            outcome.metrics.micro_f1()
        );
        // Every test document is now in the library with automatic tags.
        assert!(sys.library().auto_tagged_count() >= split.test.len());
        // Tags are persisted as file metadata too.
        assert_eq!(sys.tag_store().len(), corpus.len());
    }

    #[test]
    fn end_to_end_with_local_baseline_is_worse_than_pace() {
        let (mut pace_sys, _, split) = system_with(ProtocolKind::pace());
        pace_sys.learn(&split).unwrap();
        let pace = pace_sys.auto_tag_all().unwrap();

        let (mut local_sys, _, split) = system_with(ProtocolKind::local_only());
        local_sys.learn(&split).unwrap();
        let local = local_sys.auto_tag_all().unwrap();

        eprintln!(
            "pace P={:.3} R={:.3} F1={:.3} macro={:.3} | local P={:.3} R={:.3} F1={:.3} macro={:.3}",
            pace.metrics.micro_precision(),
            pace.metrics.micro_recall(),
            pace.metrics.micro_f1(),
            pace.metrics.macro_f1(),
            local.metrics.micro_precision(),
            local.metrics.micro_recall(),
            local.metrics.micro_f1(),
            local.metrics.macro_f1(),
        );
        assert!(
            pace.metrics.micro_f1() > local.metrics.micro_f1(),
            "pace {} vs local {}",
            pace.metrics.micro_f1(),
            local.metrics.micro_f1()
        );
    }

    #[test]
    fn suggestions_respect_the_confidence_slider() {
        let (mut sys, _, split) = system_with(ProtocolKind::pace());
        sys.learn(&split).unwrap();
        let doc = split.test[0];
        let permissive = sys.suggest(doc, Some(0.0)).unwrap();
        let strict = sys.suggest(doc, Some(0.99)).unwrap();
        assert!(permissive.accepted().count() >= strict.accepted().count());
        assert_eq!(permissive.entries().len(), strict.entries().len());
    }

    #[test]
    fn refinement_is_recorded_and_changes_the_library() {
        let (mut sys, corpus, split) = system_with(ProtocolKind::pace());
        sys.learn(&split).unwrap();
        let doc = split.test[0];
        sys.auto_tag(doc).unwrap();
        let mut corrected = sys.library().tags_of(doc);
        corrected.insert("entirely-new-tag".to_string());
        sys.refine(doc, corrected.clone()).unwrap();
        assert_eq!(sys.library().tags_of(doc), corrected);
        assert_eq!(sys.refinements().len(), 1);
        assert_eq!(sys.library().refined_count(), 1);
        // The new tag becomes part of the system's vocabulary.
        assert!(sys.known_tags().contains_key("entirely-new-tag"));
        // The original corpus is untouched.
        assert!(corpus.tag_id("entirely-new-tag").is_none());
    }

    #[test]
    fn auto_tagging_never_clobbers_manual_or_refined_tags() {
        let (mut sys, _, split) = system_with(ProtocolKind::pace());
        sys.learn(&split).unwrap();
        sys.auto_tag_all().unwrap();
        let doc = split.test[0];
        let manual_doc = split.train[0];
        let corrected: BTreeSet<String> = ["user-truth".to_string()].into();
        sys.refine(doc, corrected.clone()).unwrap();
        let manual_tags = sys.library().tags_of(manual_doc);
        // Re-running the automated tagger must adapt to the correction, not
        // overwrite it with machine output.
        sys.auto_tag_all().unwrap();
        assert_eq!(sys.library().tags_of(doc), corrected);
        assert_eq!(sys.library().entry(doc).unwrap().source, TagSource::Refined);
        assert_eq!(sys.library().tags_of(manual_doc), manual_tags);
        assert_eq!(
            sys.library().entry(manual_doc).unwrap().source,
            TagSource::Manual
        );
        // auto_tag() on a single refined document is likewise a no-op write.
        sys.auto_tag(doc).unwrap();
        assert_eq!(sys.library().tags_of(doc), corrected);
    }

    #[test]
    fn refinements_never_grow_the_frozen_evaluation_universe() {
        let (mut sys, corpus, split) = system_with(ProtocolKind::pace());
        sys.learn(&split).unwrap();
        let universe_before = sys.eval_universe().unwrap().clone();
        assert_eq!(universe_before.len(), corpus.num_tags());
        let first = sys.auto_tag_all().unwrap();

        // Refine two documents with a brand-new tag name.
        for &doc in &split.test[..2] {
            let mut tags = sys.library().tags_of(doc);
            tags.insert("never-seen-before".to_string());
            sys.refine(doc, tags).unwrap();
        }
        // The corpus, and therefore the evaluation universe, are unchanged.
        assert!(sys.corpus().unwrap().tag_id("never-seen-before").is_none());
        assert_eq!(sys.eval_universe().unwrap(), &universe_before);
        let unseen = sys.unseen_tag_refinements();
        assert_eq!(unseen.len(), 1);
        assert_eq!(unseen["never-seen-before"].len(), 2);

        // Metrics after the refinement keep the same per-tag shape: same
        // number of per-tag entries as before (the denominator is stable).
        let second = sys.auto_tag_all().unwrap();
        assert_eq!(
            first.metrics.per_tag().len(),
            second.metrics.per_tag().len()
        );
    }

    #[test]
    fn incremental_learning_extends_the_training_side() {
        let (mut sys, _, mut split) = system_with(ProtocolKind::pace());
        // Hold back the last few training documents and feed them
        // incrementally after the initial learn.
        let held_back: Vec<DocumentId> = split.train.split_off(split.train.len() - 4);
        sys.learn(&split).unwrap();
        let baseline = sys.auto_tag_all().unwrap();
        sys.learn_incremental(&held_back).unwrap();
        // The held-back documents are now manual training docs...
        for &doc in &held_back {
            assert_eq!(sys.library().entry(doc).unwrap().source, TagSource::Manual);
        }
        let outcome = sys.auto_tag_all().unwrap();
        // ...and the warm-started models still tag the remaining test set at
        // comparable quality.
        assert!(outcome.metrics.micro_f1() > baseline.metrics.micro_f1() - 0.1);
        assert_eq!(outcome.tagged + outcome.failed, split.test.len());
        // Before learn(), the incremental path refuses to run.
        let corpus = CorpusGenerator::new(CorpusSpec::tiny()).generate();
        let mut fresh = P2PDocTagger::new(DocTaggerConfig::default());
        fresh.ingest(&corpus);
        assert!(matches!(
            fresh.learn_incremental(&[0]).unwrap_err(),
            ProtocolError::NotTrained
        ));
    }

    #[test]
    fn tag_cloud_reflects_assigned_tags() {
        let (mut sys, _, split) = system_with(ProtocolKind::pace());
        sys.learn(&split).unwrap();
        sys.auto_tag_all().unwrap();
        let cloud = sys.tag_cloud();
        assert!(cloud.num_tags() > 0);
        assert!(cloud.num_edges() > 0, "multi-tag documents create edges");
    }

    #[test]
    fn communication_is_accounted_per_protocol() {
        let (mut pace_sys, _, split) = system_with(ProtocolKind::pace());
        pace_sys.learn(&split).unwrap();
        assert!(pace_sys.network_stats().total_bytes() > 0);

        let (mut local_sys, _, split) = system_with(ProtocolKind::local_only());
        local_sys.learn(&split).unwrap();
        assert_eq!(local_sys.network_stats().total_bytes(), 0);
    }

    #[test]
    fn auto_tag_before_learn_fails() {
        let corpus = CorpusGenerator::new(CorpusSpec::tiny()).generate();
        let mut sys = P2PDocTagger::new(DocTaggerConfig::default());
        sys.ingest(&corpus);
        assert!(matches!(
            sys.auto_tag(0).unwrap_err(),
            ProtocolError::NotTrained
        ));
    }

    #[test]
    fn cempar_end_to_end_smoke() {
        // CEMPaR with kernel SVMs is heavier; use a small corpus and just check
        // it runs end to end and beats random guessing.
        let corpus = CorpusGenerator::new(CorpusSpec {
            num_tags: 4,
            num_users: 6,
            min_docs_per_user: 12,
            max_docs_per_user: 18,
            words_per_doc: 30,
            ..CorpusSpec::tiny()
        })
        .generate();
        let split = TrainTestSplit::stratified_by_user(&corpus, 0.3, 9);
        let mut sys = P2PDocTagger::new(DocTaggerConfig {
            protocol: ProtocolKind::cempar(),
            ..Default::default()
        });
        sys.ingest(&corpus);
        sys.learn(&split).unwrap();
        let outcome = sys.auto_tag_all().unwrap();
        assert!(outcome.tagged > 0);
        assert!(
            outcome.metrics.micro_f1() > 0.2,
            "micro-F1 {}",
            outcome.metrics.micro_f1()
        );
    }
}
