//! The document library: browse, search and filter tagged documents.
//!
//! Mirrors the "Library" navigation component of the demo UI, "where all
//! tagged documents are tracked to allow users to browse or search documents
//! using tags" (§3).

use dataset::DocumentId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// How a document's tags were produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TagSource {
    /// Entered by the user (manual tagging or the initial training set).
    Manual,
    /// Assigned by the automated tagger.
    Automatic,
    /// Corrected by the user after automatic tagging.
    Refined,
}

/// One library record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LibraryEntry {
    /// The document.
    pub doc: DocumentId,
    /// The owning user/peer.
    pub user: usize,
    /// Current tags (names).
    pub tags: BTreeSet<String>,
    /// Provenance of the current tag set.
    pub source: TagSource,
}

/// The tagged-document library.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DocumentLibrary {
    entries: BTreeMap<DocumentId, LibraryEntry>,
}

impl DocumentLibrary {
    /// Creates an empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tracked documents.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records (or replaces) the tags of a document.
    pub fn assign(
        &mut self,
        doc: DocumentId,
        user: usize,
        tags: BTreeSet<String>,
        source: TagSource,
    ) {
        self.entries.insert(
            doc,
            LibraryEntry {
                doc,
                user,
                tags,
                source,
            },
        );
    }

    /// The entry for a document, if tracked.
    pub fn entry(&self, doc: DocumentId) -> Option<&LibraryEntry> {
        self.entries.get(&doc)
    }

    /// The current tags of a document (empty set when untracked).
    pub fn tags_of(&self, doc: DocumentId) -> BTreeSet<String> {
        self.entries
            .get(&doc)
            .map(|e| e.tags.clone())
            .unwrap_or_default()
    }

    /// Iterates over all entries, ordered by document id.
    pub fn iter(&self) -> impl Iterator<Item = &LibraryEntry> {
        self.entries.values()
    }

    /// Documents carrying the given tag.
    pub fn search(&self, tag: &str) -> Vec<DocumentId> {
        self.entries
            .values()
            .filter(|e| e.tags.contains(tag))
            .map(|e| e.doc)
            .collect()
    }

    /// Documents carrying **all** of the given tags (AND filter).
    pub fn filter_all(&self, tags: &[&str]) -> Vec<DocumentId> {
        self.entries
            .values()
            .filter(|e| tags.iter().all(|t| e.tags.contains(*t)))
            .map(|e| e.doc)
            .collect()
    }

    /// Documents carrying **any** of the given tags (OR filter).
    pub fn filter_any(&self, tags: &[&str]) -> Vec<DocumentId> {
        self.entries
            .values()
            .filter(|e| tags.iter().any(|t| e.tags.contains(*t)))
            .map(|e| e.doc)
            .collect()
    }

    /// All tags with the number of documents carrying each.
    pub fn tag_counts(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for e in self.entries.values() {
            for t in &e.tags {
                *out.entry(t.clone()).or_insert(0) += 1;
            }
        }
        out
    }

    /// Number of documents whose tags came from the automated tagger.
    pub fn auto_tagged_count(&self) -> usize {
        self.entries
            .values()
            .filter(|e| e.source == TagSource::Automatic)
            .count()
    }

    /// Number of documents whose tags were refined by the user.
    pub fn refined_count(&self) -> usize {
        self.entries
            .values()
            .filter(|e| e.source == TagSource::Refined)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tags(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    fn sample_library() -> DocumentLibrary {
        let mut lib = DocumentLibrary::new();
        lib.assign(0, 0, tags(&["rust", "programming"]), TagSource::Manual);
        lib.assign(1, 0, tags(&["rust", "web"]), TagSource::Automatic);
        lib.assign(2, 1, tags(&["music"]), TagSource::Automatic);
        lib.assign(3, 1, tags(&["music", "web"]), TagSource::Refined);
        lib
    }

    #[test]
    fn search_by_tag() {
        let lib = sample_library();
        assert_eq!(lib.search("rust"), vec![0, 1]);
        assert_eq!(lib.search("music"), vec![2, 3]);
        assert!(lib.search("unknown").is_empty());
    }

    #[test]
    fn and_or_filters() {
        let lib = sample_library();
        assert_eq!(lib.filter_all(&["rust", "web"]), vec![1]);
        assert_eq!(lib.filter_any(&["programming", "music"]), vec![0, 2, 3]);
        assert_eq!(lib.filter_all(&[]), vec![0, 1, 2, 3]);
    }

    #[test]
    fn tag_counts() {
        let lib = sample_library();
        let counts = lib.tag_counts();
        assert_eq!(counts["rust"], 2);
        assert_eq!(counts["web"], 2);
        assert_eq!(counts["programming"], 1);
    }

    #[test]
    fn provenance_counts() {
        let lib = sample_library();
        assert_eq!(lib.auto_tagged_count(), 2);
        assert_eq!(lib.refined_count(), 1);
        assert_eq!(lib.len(), 4);
    }

    #[test]
    fn reassignment_replaces_tags() {
        let mut lib = sample_library();
        lib.assign(1, 0, tags(&["database"]), TagSource::Refined);
        assert_eq!(lib.tags_of(1), tags(&["database"]));
        assert_eq!(lib.len(), 4);
        assert!(lib.search("web").contains(&3));
        assert!(!lib.search("web").contains(&1));
    }

    #[test]
    fn untracked_document_has_no_tags() {
        let lib = sample_library();
        assert!(lib.tags_of(99).is_empty());
        assert!(lib.entry(99).is_none());
    }
}
