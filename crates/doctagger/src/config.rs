//! System configuration: which P2P classification protocol to plug in, how the
//! network is simulated, and how suggestions are filtered.

use p2pclassify::{
    Cempar, CemparConfig, Centralized, CentralizedConfig, LocalOnly, LocalOnlyConfig,
    P2PTagClassifier, Pace, PaceConfig, ReliabilityConfig,
};
use p2psim::SimConfig;
use textproc::Weighting;

/// The pluggable P2P classification component (§2: "the P2P classification
/// algorithm in P2PDocTagger is a pluggable component").
#[derive(Debug, Clone)]
pub enum ProtocolKind {
    /// CEMPaR: cascade kernel SVM over DHT super-peers.
    Cempar(CemparConfig),
    /// PACE: adaptive linear-SVM ensemble with an LSH model index.
    Pace(PaceConfig),
    /// Centralized baseline (all data shipped to one server).
    Centralized(CentralizedConfig),
    /// Local-only baseline (no collaboration).
    LocalOnly(LocalOnlyConfig),
}

impl ProtocolKind {
    /// CEMPaR with default parameters.
    pub fn cempar() -> Self {
        ProtocolKind::Cempar(CemparConfig::default())
    }

    /// PACE with default parameters.
    pub fn pace() -> Self {
        ProtocolKind::Pace(PaceConfig::default())
    }

    /// Centralized baseline with default parameters.
    pub fn centralized() -> Self {
        ProtocolKind::Centralized(CentralizedConfig::default())
    }

    /// Local-only baseline with default parameters.
    pub fn local_only() -> Self {
        ProtocolKind::LocalOnly(LocalOnlyConfig::default())
    }

    /// Returns the same protocol with the reliable-delivery layer set: `Some`
    /// turns on sequence-numbered ack/retransmit sends, `None` restores the
    /// fire-and-forget default. Local-only never sends, so the setting is
    /// carried for uniformity but has no effect there.
    pub fn with_reliability(mut self, reliability: Option<ReliabilityConfig>) -> Self {
        match &mut self {
            ProtocolKind::Cempar(c) => c.wire.reliability = reliability,
            ProtocolKind::Pace(c) => c.wire.reliability = reliability,
            ProtocolKind::Centralized(c) => c.wire.reliability = reliability,
            ProtocolKind::LocalOnly(c) => c.wire.reliability = reliability,
        }
        self
    }

    /// Short name for tables and logs.
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolKind::Cempar(_) => "cempar",
            ProtocolKind::Pace(_) => "pace",
            ProtocolKind::Centralized(_) => "centralized",
            ProtocolKind::LocalOnly(_) => "local-only",
        }
    }

    /// Instantiates the protocol.
    pub fn build(&self) -> Box<dyn P2PTagClassifier> {
        match self {
            ProtocolKind::Cempar(c) => Box::new(Cempar::new(c.clone())),
            ProtocolKind::Pace(c) => Box::new(Pace::new(c.clone())),
            ProtocolKind::Centralized(c) => Box::new(Centralized::new(c.clone())),
            ProtocolKind::LocalOnly(c) => Box::new(LocalOnly::new(c.clone())),
        }
    }
}

impl Default for ProtocolKind {
    fn default() -> Self {
        ProtocolKind::pace()
    }
}

/// Configuration of a [`crate::system::P2PDocTagger`] instance.
#[derive(Debug, Clone)]
pub struct DocTaggerConfig {
    /// Which P2P classification protocol to plug in.
    pub protocol: ProtocolKind,
    /// Simulated network environment. When `None`, the network size is derived
    /// from the ingested corpus (one peer per user).
    pub network: Option<SimConfig>,
    /// Term weighting used by the preprocessing pipeline.
    pub weighting: Weighting,
    /// Default confidence threshold of the suggestion cloud's slider.
    pub confidence_threshold: f64,
    /// Seed for any system-level randomness (peer assignment, etc.).
    pub seed: u64,
}

impl Default for DocTaggerConfig {
    fn default() -> Self {
        Self {
            protocol: ProtocolKind::default(),
            network: None,
            weighting: Weighting::TfIdf,
            confidence_threshold: 0.5,
            seed: 2010,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_names() {
        assert_eq!(ProtocolKind::cempar().name(), "cempar");
        assert_eq!(ProtocolKind::pace().name(), "pace");
        assert_eq!(ProtocolKind::centralized().name(), "centralized");
        assert_eq!(ProtocolKind::local_only().name(), "local-only");
    }

    #[test]
    fn build_instantiates_the_right_protocol() {
        assert_eq!(ProtocolKind::cempar().build().name(), "cempar");
        assert_eq!(ProtocolKind::pace().build().name(), "pace");
        assert_eq!(ProtocolKind::centralized().build().name(), "centralized");
        assert_eq!(ProtocolKind::local_only().build().name(), "local-only");
    }

    #[test]
    fn default_config_is_sensible() {
        let c = DocTaggerConfig::default();
        assert!(c.network.is_none());
        assert!(c.confidence_threshold > 0.0 && c.confidence_threshold < 1.0);
        assert_eq!(c.protocol.name(), "pace");
    }
}
