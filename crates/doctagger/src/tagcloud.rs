//! The tag cloud with co-occurrence edges, clusters and bridge tags.
//!
//! "In the Tag Cloud interface … tags that co-occur in documents are connected
//! by edges. This provides users with information regarding the tag
//! relationships and captures higher level concepts … where we see two clusters
//! of highly interconnected tags bridged by the word 'navigation'" (§3 /
//! Figure 4). This module computes the weighted co-occurrence graph from the
//! library, detects clusters (connected components after pruning weak edges)
//! and identifies bridge tags (articulation points of the pruned graph).

use crate::library::DocumentLibrary;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// One tag in the cloud.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TagCloudEntry {
    /// Tag name.
    pub tag: String,
    /// Number of documents carrying the tag.
    pub count: usize,
    /// Relative font size in [1, 5], proportional to the count.
    pub font_size: u8,
}

/// The tag cloud and its co-occurrence structure.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TagCloud {
    entries: Vec<TagCloudEntry>,
    /// Undirected co-occurrence edges with document counts, keyed by
    /// lexicographically ordered tag pairs.
    edges: BTreeMap<(String, String), usize>,
}

impl TagCloud {
    /// Builds the cloud from the current library contents.
    pub fn from_library(library: &DocumentLibrary) -> Self {
        let counts = library.tag_counts();
        let max = counts.values().copied().max().unwrap_or(1).max(1);
        let entries = counts
            .iter()
            .map(|(tag, &count)| TagCloudEntry {
                tag: tag.clone(),
                count,
                font_size: font_size(count, max),
            })
            .collect();
        let mut edges: BTreeMap<(String, String), usize> = BTreeMap::new();
        for entry in library.iter() {
            let tags: Vec<&String> = entry.tags.iter().collect();
            for i in 0..tags.len() {
                for j in (i + 1)..tags.len() {
                    let key = if tags[i] <= tags[j] {
                        (tags[i].clone(), tags[j].clone())
                    } else {
                        (tags[j].clone(), tags[i].clone())
                    };
                    *edges.entry(key).or_insert(0) += 1;
                }
            }
        }
        Self { entries, edges }
    }

    /// The tags with counts and font sizes, alphabetically ordered.
    pub fn entries(&self) -> &[TagCloudEntry] {
        &self.entries
    }

    /// The co-occurrence edges and their document counts.
    pub fn edges(&self) -> impl Iterator<Item = (&str, &str, usize)> {
        self.edges
            .iter()
            .map(|((a, b), &w)| (a.as_str(), b.as_str(), w))
    }

    /// Number of distinct tags.
    pub fn num_tags(&self) -> usize {
        self.entries.len()
    }

    /// Number of co-occurrence edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The co-occurrence count of two tags (0 when they never co-occur).
    pub fn co_occurrence(&self, a: &str, b: &str) -> usize {
        let key = if a <= b {
            (a.to_string(), b.to_string())
        } else {
            (b.to_string(), a.to_string())
        };
        self.edges.get(&key).copied().unwrap_or(0)
    }

    /// Adjacency over edges with weight ≥ `min_weight`.
    fn adjacency(&self, min_weight: usize) -> BTreeMap<&str, BTreeSet<&str>> {
        let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for e in &self.entries {
            adj.entry(e.tag.as_str()).or_default();
        }
        for ((a, b), &w) in &self.edges {
            if w >= min_weight {
                adj.entry(a.as_str()).or_default().insert(b.as_str());
                adj.entry(b.as_str()).or_default().insert(a.as_str());
            }
        }
        adj
    }

    /// Clusters of tags: connected components of the graph restricted to edges
    /// seen in at least `min_weight` documents. Components are returned sorted
    /// by decreasing size, tags within a component alphabetically.
    pub fn clusters(&self, min_weight: usize) -> Vec<Vec<String>> {
        let adj = self.adjacency(min_weight);
        let mut visited: BTreeSet<&str> = BTreeSet::new();
        let mut components = Vec::new();
        for &start in adj.keys() {
            if visited.contains(start) {
                continue;
            }
            let mut stack = vec![start];
            let mut component = Vec::new();
            while let Some(node) = stack.pop() {
                if !visited.insert(node) {
                    continue;
                }
                component.push(node.to_string());
                if let Some(neigh) = adj.get(node) {
                    stack.extend(neigh.iter().copied().filter(|n| !visited.contains(*n)));
                }
            }
            component.sort();
            components.push(component);
        }
        components.sort_by_key(|c| std::cmp::Reverse(c.len()));
        components
    }

    /// Bridge tags: articulation points of the pruned co-occurrence graph —
    /// tags whose removal would split a cluster into disconnected parts
    /// (like "navigation" bridging the two clusters in Figure 4).
    pub fn bridge_tags(&self, min_weight: usize) -> Vec<String> {
        let adj = self.adjacency(min_weight);
        let nodes: Vec<&str> = adj.keys().copied().collect();
        let index: BTreeMap<&str, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let n = nodes.len();
        let mut visited = vec![false; n];
        let mut disc = vec![0usize; n];
        let mut low = vec![0usize; n];
        let mut parent = vec![usize::MAX; n];
        let mut articulation = vec![false; n];
        let mut timer = 0usize;

        // Iterative Tarjan articulation-point computation (avoids recursion
        // depth issues on large tag vocabularies).
        for start in 0..n {
            if visited[start] {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            let mut root_children = 0usize;
            while let Some(top) = stack.last_mut() {
                let u = top.0;
                let child_idx = top.1;
                if !visited[u] {
                    visited[u] = true;
                    timer += 1;
                    disc[u] = timer;
                    low[u] = timer;
                }
                let neighbors: Vec<usize> = adj[nodes[u]].iter().map(|v| index[*v]).collect();
                if child_idx < neighbors.len() {
                    top.1 += 1;
                    let v = neighbors[child_idx];
                    if !visited[v] {
                        parent[v] = u;
                        if u == start {
                            root_children += 1;
                        }
                        stack.push((v, 0));
                    } else if v != parent[u] {
                        low[u] = low[u].min(disc[v]);
                    }
                } else {
                    stack.pop();
                    if let Some(&(p, _)) = stack.last() {
                        low[p] = low[p].min(low[u]);
                        if parent[u] == p && p != start && low[u] >= disc[p] {
                            articulation[p] = true;
                        }
                    }
                }
            }
            if root_children > 1 {
                articulation[index[nodes[start]]] = true;
            }
        }
        nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| articulation[*i])
            .map(|(_, &n)| n.to_string())
            .collect()
    }
}

/// Maps a count to a font-size bucket 1..=5 relative to the most frequent tag.
fn font_size(count: usize, max: usize) -> u8 {
    let ratio = count as f64 / max as f64;
    (1.0 + (ratio * 4.0).round()).min(5.0) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::TagSource;

    fn tags(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    /// A library shaped like Figure 4: a "web design" cluster and a "travel"
    /// cluster bridged by the tag "navigation".
    fn figure4_library() -> DocumentLibrary {
        let mut lib = DocumentLibrary::new();
        // Web cluster.
        lib.assign(0, 0, tags(&["web", "design", "css"]), TagSource::Manual);
        lib.assign(1, 0, tags(&["web", "design"]), TagSource::Manual);
        lib.assign(2, 0, tags(&["web", "css"]), TagSource::Manual);
        // Travel cluster.
        lib.assign(3, 1, tags(&["travel", "maps", "hiking"]), TagSource::Manual);
        lib.assign(4, 1, tags(&["travel", "maps"]), TagSource::Manual);
        lib.assign(5, 1, tags(&["hiking", "maps"]), TagSource::Manual);
        // The bridge: "navigation" co-occurs with both clusters.
        lib.assign(6, 0, tags(&["web", "navigation"]), TagSource::Automatic);
        lib.assign(7, 1, tags(&["maps", "navigation"]), TagSource::Automatic);
        lib
    }

    #[test]
    fn counts_and_font_sizes() {
        let cloud = TagCloud::from_library(&figure4_library());
        assert_eq!(cloud.num_tags(), 7);
        let web = cloud.entries().iter().find(|e| e.tag == "web").unwrap();
        let nav = cloud
            .entries()
            .iter()
            .find(|e| e.tag == "navigation")
            .unwrap();
        assert!(web.count > nav.count);
        assert!(web.font_size >= nav.font_size);
        assert!((1..=5).contains(&web.font_size));
    }

    #[test]
    fn co_occurrence_edges() {
        let cloud = TagCloud::from_library(&figure4_library());
        assert_eq!(cloud.co_occurrence("web", "design"), 2);
        assert_eq!(cloud.co_occurrence("design", "web"), 2);
        assert_eq!(cloud.co_occurrence("web", "travel"), 0);
        assert!(cloud.num_edges() >= 8);
    }

    #[test]
    fn single_connected_cluster_with_bridge() {
        let cloud = TagCloud::from_library(&figure4_library());
        let clusters = cloud.clusters(1);
        assert_eq!(
            clusters.len(),
            1,
            "bridge connects everything: {clusters:?}"
        );
        assert_eq!(clusters[0].len(), 7);
    }

    #[test]
    fn bridge_tag_is_detected() {
        let cloud = TagCloud::from_library(&figure4_library());
        let bridges = cloud.bridge_tags(1);
        assert!(
            bridges.contains(&"navigation".to_string()),
            "bridges: {bridges:?}"
        );
        // Core in-cluster tags are not articulation points.
        assert!(!bridges.contains(&"design".to_string()));
    }

    #[test]
    fn pruning_weak_edges_splits_clusters() {
        let cloud = TagCloud::from_library(&figure4_library());
        // Navigation edges have weight 1; requiring weight ≥ 2 splits the graph.
        let clusters = cloud.clusters(2);
        assert!(clusters.len() >= 2, "clusters: {clusters:?}");
        let sizes: Vec<usize> = clusters.iter().map(Vec::len).collect();
        assert!(sizes[0] >= 3);
    }

    #[test]
    fn empty_library_yields_empty_cloud() {
        let cloud = TagCloud::from_library(&DocumentLibrary::new());
        assert_eq!(cloud.num_tags(), 0);
        assert_eq!(cloud.num_edges(), 0);
        assert!(cloud.clusters(1).is_empty());
        assert!(cloud.bridge_tags(1).is_empty());
    }

    #[test]
    fn documents_with_single_tags_produce_no_edges() {
        let mut lib = DocumentLibrary::new();
        lib.assign(0, 0, tags(&["a"]), TagSource::Manual);
        lib.assign(1, 0, tags(&["b"]), TagSource::Manual);
        let cloud = TagCloud::from_library(&lib);
        assert_eq!(cloud.num_edges(), 0);
        assert_eq!(cloud.clusters(1).len(), 2);
    }
}
