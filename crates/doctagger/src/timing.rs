//! The session driver's wall-clock boundary.
//!
//! Everything in the simulation stack runs on **virtual time**
//! ([`p2psim::SimTime`]); reading the host clock from sim code would make
//! replays scheduling-dependent, so the workspace lint (`xtask lint`,
//! `wall-clock` rule) bans `Instant`/`SystemTime` outside `crates/bench`
//! — and this module, its single allowlisted exception in library code.
//!
//! The exception exists because the session driver reports *measurement*
//! alongside simulation: the per-epoch `learn_secs`/`refine_secs`/
//! `auto_secs` fields of [`crate::session::EpochReport`] are how the
//! session benchmark tracks incremental-training speedups. Those readings
//! are observability output only — nothing in the epoch loop branches on
//! them, so they cannot perturb replay determinism. Keeping the clock
//! behind [`Stopwatch`] makes that boundary auditable: a grep for
//! `Instant` in sim code finds exactly this file, and the lint keeps it
//! that way.

use std::time::Instant;

/// A started wall-clock measurement for a benchmark-facing report field.
///
/// Deliberately minimal: it can only report elapsed seconds, so the value
/// is only useful as observability output, never as simulation state.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts measuring.
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Seconds since [`Stopwatch::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_secs();
        let b = sw.elapsed_secs();
        assert!(a >= 0.0);
        assert!(b >= a);
    }
}
