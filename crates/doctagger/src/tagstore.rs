//! Tag persistence as file metadata.
//!
//! "Once tags are assigned, they are saved as the files' meta-data, which are
//! supported by numerous operating systems such as GNU/Linux, Mac OS X,
//! Microsoft Windows, etc. In addition to P2PDocTagger, other PIM systems can
//! access these tags for file organization/retrieval" (§2). The store models an
//! extended-attribute (xattr) namespace keyed by file path; it is an in-memory
//! map with an export format other tools could consume, so the simulation does
//! not touch the real filesystem.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The xattr namespace used for tags (mirrors `user.xdg.tags` on Linux).
pub const TAG_ATTRIBUTE: &str = "user.p2pdoctagger.tags";

/// An in-memory file-metadata tag store.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TagStore {
    files: BTreeMap<String, BTreeSet<String>>,
}

impl TagStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of files with at least one tag.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Replaces the tag set of a file (removing the entry when `tags` is empty).
    pub fn set_tags<I, S>(&mut self, path: &str, tags: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let set: BTreeSet<String> = tags.into_iter().map(Into::into).collect();
        if set.is_empty() {
            self.files.remove(path);
        } else {
            self.files.insert(path.to_string(), set);
        }
    }

    /// Adds a single tag to a file.
    pub fn add_tag(&mut self, path: &str, tag: impl Into<String>) {
        self.files
            .entry(path.to_string())
            .or_default()
            .insert(tag.into());
    }

    /// Removes a single tag from a file; the entry disappears when no tags remain.
    pub fn remove_tag(&mut self, path: &str, tag: &str) {
        if let Some(tags) = self.files.get_mut(path) {
            tags.remove(tag);
            if tags.is_empty() {
                self.files.remove(path);
            }
        }
    }

    /// The tags of a file (empty when the file has none).
    pub fn tags_of(&self, path: &str) -> BTreeSet<String> {
        self.files.get(path).cloned().unwrap_or_default()
    }

    /// Files carrying the given tag.
    pub fn files_with_tag(&self, tag: &str) -> Vec<&str> {
        self.files
            .iter()
            .filter(|(_, tags)| tags.contains(tag))
            .map(|(path, _)| path.as_str())
            .collect()
    }

    /// Renders a file's tags as the value another PIM tool would read from the
    /// extended attribute (comma-separated, sorted).
    pub fn xattr_value(&self, path: &str) -> Option<String> {
        self.files
            .get(path)
            .map(|tags| tags.iter().cloned().collect::<Vec<_>>().join(","))
    }

    /// Exports the whole store as `(path, attribute, value)` triples, the shape
    /// a `setfattr --restore` style dump would have.
    pub fn export(&self) -> Vec<(String, String, String)> {
        self.files
            .keys()
            .map(|path| {
                (
                    path.clone(),
                    TAG_ATTRIBUTE.to_string(),
                    self.xattr_value(path).unwrap_or_default(),
                )
            })
            .collect()
    }

    /// Imports triples previously produced by [`Self::export`]; unknown
    /// attributes are ignored.
    pub fn import(&mut self, triples: &[(String, String, String)]) {
        for (path, attr, value) in triples {
            if attr != TAG_ATTRIBUTE {
                continue;
            }
            self.set_tags(path, value.split(',').filter(|s| !s.is_empty()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_and_remove() {
        let mut store = TagStore::new();
        store.set_tags("/home/u/doc.pdf", ["rust", "paper"]);
        assert_eq!(store.tags_of("/home/u/doc.pdf").len(), 2);
        store.remove_tag("/home/u/doc.pdf", "paper");
        assert_eq!(store.tags_of("/home/u/doc.pdf").len(), 1);
        store.remove_tag("/home/u/doc.pdf", "rust");
        assert!(store.is_empty());
    }

    #[test]
    fn add_tag_accumulates() {
        let mut store = TagStore::new();
        store.add_tag("a.txt", "x");
        store.add_tag("a.txt", "y");
        store.add_tag("a.txt", "x");
        assert_eq!(store.tags_of("a.txt").len(), 2);
    }

    #[test]
    fn files_with_tag() {
        let mut store = TagStore::new();
        store.set_tags("a", ["x", "y"]);
        store.set_tags("b", ["y"]);
        store.set_tags("c", ["z"]);
        assert_eq!(store.files_with_tag("y"), vec!["a", "b"]);
        assert!(store.files_with_tag("missing").is_empty());
    }

    #[test]
    fn xattr_value_is_sorted_and_comma_separated() {
        let mut store = TagStore::new();
        store.set_tags("a", ["zebra", "alpha"]);
        assert_eq!(store.xattr_value("a").unwrap(), "alpha,zebra");
        assert!(store.xattr_value("missing").is_none());
    }

    #[test]
    fn export_import_roundtrip() {
        let mut store = TagStore::new();
        store.set_tags("a", ["x", "y"]);
        store.set_tags("b", ["z"]);
        let dump = store.export();
        let mut restored = TagStore::new();
        restored.import(&dump);
        assert_eq!(restored.tags_of("a"), store.tags_of("a"));
        assert_eq!(restored.tags_of("b"), store.tags_of("b"));
        assert_eq!(restored.len(), 2);
    }

    #[test]
    fn empty_tag_set_removes_entry() {
        let mut store = TagStore::new();
        store.set_tags("a", ["x"]);
        store.set_tags("a", Vec::<String>::new());
        assert!(store.is_empty());
    }

    #[test]
    fn import_ignores_foreign_attributes() {
        let mut store = TagStore::new();
        store.import(&[(
            "a".to_string(),
            "user.other.attr".to_string(),
            "x,y".to_string(),
        )]);
        assert!(store.is_empty());
    }
}
