//! # doctagger — the P2PDocTagger system
//!
//! This crate is the paper's primary contribution: "an automated and
//! distributed document tagging system based on classification in P2P
//! networks" (§1.1). It wires together the substrates built in the other
//! crates into the workflow of Figure 1:
//!
//! ```text
//!  Document Processing          Data Mining                 Tagging
//!  ┌───────────────┐   ┌──────────────────────────┐   ┌──────────────┐
//!  │ Preprocessing  │ → │ P2P Collaborative        │ → │ Auto Tagging │
//!  │ (textproc)     │   │ Learning (p2pclassify    │   │  + Refine    │
//!  │ Manual Tagging │   │  over p2psim)            │   │  (this crate)│
//!  └───────────────┘   └──────────────────────────┘   └──────────────┘
//! ```
//!
//! * [`system::P2PDocTagger`] — the orchestrator: ingest documents, learn the
//!   global classification model collaboratively, auto-tag untagged documents,
//!   suggest tags with confidences, and fold user refinements back into the
//!   models.
//! * [`library::DocumentLibrary`] — the "Library" navigation component: all
//!   tagged documents, searchable and filterable by tags.
//! * [`tagstore::TagStore`] — tags persisted as file metadata (extended
//!   attributes), so other PIM tools can read them.
//! * [`suggest::SuggestionCloud`] — the "Suggestion Cloud" panel with the
//!   confidence slider (low-confidence tags are struck out and placed last).
//! * [`tagcloud::TagCloud`] — the "Tag Cloud" interface with tag co-occurrence
//!   edges, cluster detection and bridge tags (Figure 4).
//! * [`refine::RefinementLog`] — the record of users' tag corrections that
//!   drives model updates.
//! * [`session::SessionDriver`] — the streaming session layer: replays a
//!   timeline of document arrivals, manual taggings, auto-tag requests and
//!   refinements against the network's churn timeline, folding each epoch's
//!   new examples into the models with warm-start incremental training.
//!
//! ## Quickstart
//!
//! ```
//! use dataset::{CorpusGenerator, CorpusSpec, TrainTestSplit};
//! use doctagger::prelude::*;
//!
//! // A small synthetic bookmark collection spread over 8 users/peers.
//! let corpus = CorpusGenerator::new(CorpusSpec::tiny()).generate();
//! let split = TrainTestSplit::demo_protocol(&corpus, 7);
//!
//! let mut system = P2PDocTagger::new(DocTaggerConfig {
//!     protocol: ProtocolKind::pace(),
//!     ..DocTaggerConfig::default()
//! });
//! system.ingest(&corpus);
//! system.learn(&split).unwrap();
//! let outcome = system.auto_tag_all().unwrap();
//! assert!(outcome.metrics.micro_f1() > 0.3);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod library;
pub mod refine;
pub mod session;
pub mod suggest;
pub mod system;
pub mod tagcloud;
pub mod tagstore;
pub mod timing;

/// Common re-exports.
pub mod prelude {
    pub use crate::config::{DocTaggerConfig, ProtocolKind};
    pub use crate::library::DocumentLibrary;
    pub use crate::refine::RefinementLog;
    pub use crate::session::{
        run_session, EpochReport, SessionConfig, SessionDriver, SessionOutcome,
    };
    pub use crate::suggest::{SuggestionCloud, SuggestionEntry};
    pub use crate::system::{AutoTagOutcome, P2PDocTagger};
    pub use crate::tagcloud::{TagCloud, TagCloudEntry};
    pub use crate::tagstore::TagStore;
}

pub use config::{DocTaggerConfig, ProtocolKind};
pub use library::DocumentLibrary;
pub use session::{run_session, SessionConfig, SessionDriver, SessionOutcome};
pub use suggest::SuggestionCloud;
pub use system::{AutoTagOutcome, P2PDocTagger};
pub use tagcloud::TagCloud;
pub use tagstore::TagStore;
