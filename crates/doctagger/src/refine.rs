//! Tag-refinement bookkeeping.
//!
//! "On the discovery of mismatched tags on documents, users can use the tagging
//! interface to modify the assigned tags … Upon the refinement of tags,
//! P2PDocTagger will automatically update the classification model(s) in the
//! back-end, to adapt to their personal preference for future tagging" (§2).
//! The model update itself is performed by the protocol's `refine` method; this
//! module records the corrections so the system (and the refinement experiment
//! E8) can reason about how much user effort was spent and what changed.

use dataset::DocumentId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One user correction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Refinement {
    /// The corrected document.
    pub doc: DocumentId,
    /// The peer/user that made the correction.
    pub user: usize,
    /// Tags before the correction (as assigned automatically).
    pub before: BTreeSet<String>,
    /// Tags after the correction.
    pub after: BTreeSet<String>,
}

impl Refinement {
    /// Tags the user added.
    pub fn added(&self) -> BTreeSet<String> {
        self.after.difference(&self.before).cloned().collect()
    }

    /// Tags the user removed.
    pub fn removed(&self) -> BTreeSet<String> {
        self.before.difference(&self.after).cloned().collect()
    }

    /// Whether the correction actually changed anything.
    pub fn is_noop(&self) -> bool {
        self.before == self.after
    }
}

/// The record of all corrections made in a session.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RefinementLog {
    refinements: Vec<Refinement>,
}

impl RefinementLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a correction.
    pub fn record(&mut self, refinement: Refinement) {
        self.refinements.push(refinement);
    }

    /// Number of recorded corrections (including no-ops).
    pub fn len(&self) -> usize {
        self.refinements.len()
    }

    /// Whether no corrections were recorded.
    pub fn is_empty(&self) -> bool {
        self.refinements.is_empty()
    }

    /// All corrections, in order.
    pub fn iter(&self) -> impl Iterator<Item = &Refinement> {
        self.refinements.iter()
    }

    /// Number of corrections that changed at least one tag.
    pub fn effective_corrections(&self) -> usize {
        self.refinements.iter().filter(|r| !r.is_noop()).count()
    }

    /// Total number of tag additions across all corrections.
    pub fn total_added(&self) -> usize {
        self.refinements.iter().map(|r| r.added().len()).sum()
    }

    /// Total number of tag removals across all corrections.
    pub fn total_removed(&self) -> usize {
        self.refinements.iter().map(|r| r.removed().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tags(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn added_and_removed() {
        let r = Refinement {
            doc: 1,
            user: 0,
            before: tags(&["rust", "web"]),
            after: tags(&["rust", "database"]),
        };
        assert_eq!(r.added(), tags(&["database"]));
        assert_eq!(r.removed(), tags(&["web"]));
        assert!(!r.is_noop());
    }

    #[test]
    fn noop_detection() {
        let r = Refinement {
            doc: 1,
            user: 0,
            before: tags(&["a"]),
            after: tags(&["a"]),
        };
        assert!(r.is_noop());
    }

    #[test]
    fn log_aggregates() {
        let mut log = RefinementLog::new();
        log.record(Refinement {
            doc: 1,
            user: 0,
            before: tags(&["a"]),
            after: tags(&["a", "b"]),
        });
        log.record(Refinement {
            doc: 2,
            user: 1,
            before: tags(&["c"]),
            after: tags(&["c"]),
        });
        assert_eq!(log.len(), 2);
        assert_eq!(log.effective_corrections(), 1);
        assert_eq!(log.total_added(), 1);
        assert_eq!(log.total_removed(), 0);
        assert!(!log.is_empty());
    }
}
