//! A small deterministic tagging corpus for the loopback harness and the
//! sim-vs-socket equivalence suite.
//!
//! Mirrors the generator the backend-equivalence suite uses: five
//! feature-aligned tags plus co-occurring combinations, so ensembles vote
//! over tags they only partially know. Both drivers are fed from this module
//! with the same seed — identical inputs are the precondition for demanding
//! identical outputs.

use ml::{MultiLabelDataset, MultiLabelExample, TagId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use textproc::SparseVector;

/// Per-peer training datasets: `num_peers` slices of `per_peer` documents.
pub fn peer_data(num_peers: usize, per_peer: usize, seed: u64) -> Vec<MultiLabelDataset> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..num_peers)
        .map(|_| {
            let mut ds = MultiLabelDataset::new();
            for _ in 0..per_peer {
                let which = rng.gen_range(0..5u32);
                let a = 0.7 + rng.gen_range(0.0..0.6);
                let b = 0.7 + rng.gen_range(0.0..0.6);
                let (vector, tags): (SparseVector, Vec<TagId>) = match which {
                    0 => (SparseVector::from_pairs([(0, a)]), vec![1]),
                    1 => (SparseVector::from_pairs([(1, a)]), vec![2]),
                    2 => (SparseVector::from_pairs([(2, a), (0, 0.2)]), vec![3]),
                    3 => (SparseVector::from_pairs([(0, a), (1, b)]), vec![1, 2]),
                    _ => (SparseVector::from_pairs([(2, a), (3, b)]), vec![3, 4]),
                };
                ds.push(MultiLabelExample::new(vector, tags));
            }
            ds
        })
        .collect()
}

/// Untagged probe documents to auto-tag after training.
pub fn probes(count: usize, seed: u64) -> Vec<SparseVector> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let nnz = rng.gen_range(1..4usize);
            SparseVector::from_pairs(
                (0..nnz).map(|_| (rng.gen_range(0..5u32), rng.gen_range(0.2..1.4f64))),
            )
        })
        .collect()
}
