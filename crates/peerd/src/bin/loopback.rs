//! Loopback smoke: a real multi-peer peerd session over 127.0.0.1.
//!
//! Spawns a fleet of peer daemons, trains each on its slice of a small
//! deterministic corpus, waits for model propagation to converge over real
//! TCP, then auto-tags a probe set end to end. Exits non-zero if convergence
//! or tagging fails — the CI quick-mode step runs this under a timeout.
//!
//! ```text
//! loopback [--quick] [--peers N]
//! ```
//!
//! `--quick` shrinks the corpus and probe count for CI; `--peers` sizes the
//! fleet (default 3).

use ml::TagId;
use p2pclassify::sansio::{CemparCore, CentralizedCore, LocalCore, PaceCore, PeerCore};
use p2pclassify::{CemparConfig, CentralizedConfig, LocalOnlyConfig, PaceConfig};
use p2psim::PeerId;
use peerd::corpus;
use peerd::LoopbackHarness;
use std::time::Duration;

const CONVERGE_TIMEOUT: Duration = Duration::from_secs(30);
const PREDICT_TIMEOUT: Duration = Duration::from_secs(10);

fn fleet(protocol: &str, peers: &[PeerId]) -> Vec<PeerCore> {
    peers
        .iter()
        .map(|&p| match protocol {
            "pace" => PeerCore::Pace(PaceCore::new(p, peers.to_vec(), PaceConfig::default())),
            "cempar" => {
                PeerCore::Cempar(CemparCore::new(p, peers.to_vec(), CemparConfig::default()))
            }
            "centralized" => {
                PeerCore::Centralized(CentralizedCore::new(p, CentralizedConfig::default()))
            }
            "local" => PeerCore::Local(LocalCore::new(p, LocalOnlyConfig::default())),
            other => panic!("unknown protocol {other}"),
        })
        .collect()
}

/// Runs one protocol session end to end. Returns the number of tags
/// assigned across the probe set, or an error string.
fn run_session(
    protocol: &str,
    peers: &[PeerId],
    per_peer: usize,
    num_probes: usize,
) -> Result<usize, String> {
    let data = corpus::peer_data(peers.len(), per_peer, 42);
    let harness =
        LoopbackHarness::start(fleet(protocol, peers)).map_err(|e| format!("start: {e}"))?;
    for (i, &peer) in peers.iter().enumerate() {
        harness
            .train(peer, &data[i])
            .map_err(|e| format!("train {peer:?}: {e}"))?;
    }
    // Convergence barrier: what each peer must end up holding.
    let everyone: Vec<(u64, u64)> = peers.iter().map(|p| (p.0, 1)).collect();
    for &peer in peers {
        let expected: Vec<(u64, u64)> = match protocol {
            // PACE: full replication at every peer.
            "pace" => everyone.clone(),
            // Local-only: own model only.
            "local" => vec![(peer.0, 1)],
            // Centralized: the server pools everything, clients hold only
            // their own contribution.
            "centralized" if peer.0 == 0 => everyone.clone(),
            "centralized" => vec![(peer.0, 1)],
            // CEMPaR: region-dependent — checked in aggregate below.
            _ => continue,
        };
        let got = harness
            .wait_installed(peer, &expected, CONVERGE_TIMEOUT)
            .map_err(|e| format!("snapshot {peer:?}: {e}"))?;
        if got != expected {
            return Err(format!(
                "{protocol}: {peer:?} converged to {got:?}, expected {expected:?}"
            ));
        }
    }
    if protocol == "cempar" {
        // Aggregate check: every contribution landed at exactly one
        // super-peer (plus the contributor's own ledger entry).
        let deadline = std::time::Instant::now() + CONVERGE_TIMEOUT;
        loop {
            let mut installed_at = std::collections::BTreeMap::new();
            for &peer in peers {
                let snapshot = harness
                    .snapshot(peer)
                    .map_err(|e| format!("snapshot {peer:?}: {e}"))?;
                for (source, version) in snapshot.installed {
                    installed_at
                        .entry(source)
                        .or_insert_with(Vec::new)
                        .push((peer.0, version));
                }
            }
            let all_landed = peers
                .iter()
                .all(|p| installed_at.get(&p.0).map_or(0, Vec::len) >= 1);
            if all_landed {
                break;
            }
            if std::time::Instant::now() >= deadline {
                return Err(format!(
                    "cempar: contributions never landed: {installed_at:?}"
                ));
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    // Auto-tag the probe corpus from a rotating peer.
    let probes = corpus::probes(num_probes, 7);
    let mut assigned = 0usize;
    for (i, probe) in probes.iter().enumerate() {
        let peer = peers[i % peers.len()];
        let scores = harness
            .predict(peer, probe, PREDICT_TIMEOUT)
            .map_err(|e| format!("predict at {peer:?}: {e}"))?;
        assigned += scores
            .iter()
            .filter(|p| p.score > 0.0)
            .map(|p| p.tag)
            .collect::<Vec<TagId>>()
            .len();
    }
    harness.shutdown();
    Ok(assigned)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let num_peers: usize = args
        .iter()
        .position(|a| a == "--peers")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let (per_peer, num_probes) = if quick { (10, 8) } else { (14, 24) };
    let protocols: &[&str] = if quick {
        &["pace", "centralized"]
    } else {
        &["pace", "cempar", "centralized", "local"]
    };
    let peers: Vec<PeerId> = (0..num_peers as u64).map(PeerId).collect();

    let mut failed = false;
    for protocol in protocols {
        match run_session(protocol, &peers, per_peer, num_probes) {
            Ok(assigned) => {
                println!(
                    "loopback {protocol}: {num_peers} peers converged, \
                     {num_probes} probes tagged ({assigned} tag assignments)"
                );
                if assigned == 0 {
                    eprintln!("loopback {protocol}: no tags assigned across the probe set");
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("loopback {protocol}: FAILED: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
