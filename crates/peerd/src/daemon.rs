//! The per-peer daemon loop: one sans-io core behind one TCP listener.
//!
//! Each daemon owns a [`PeerCore`], a listening socket, a set of
//! connections, a [`reactor::Poller`] and a [`reactor::TimerWheel`], and is
//! driven by two event sources:
//!
//! * **sockets** — readable connections feed complete frames into
//!   `core.ingest`, and the resulting `Emit` outputs are written to lazily
//!   established outbound connections (one directed connection per ordered
//!   peer pair; the sender id travels in the transport header);
//! * **commands** — the application half of the driver contract: train,
//!   predict, anti-entropy, snapshot, shutdown, delivered over an `mpsc`
//!   channel and polled between waits.
//!
//! Core timers (`SetTimer`/`CancelTimer` outputs, virtual milliseconds) map
//! onto the wall clock as `epoch + at`: the daemon's epoch is its start
//! instant, so `now` passed to the core is simply elapsed wall milliseconds.
//! This is the audited boundary where virtual time meets real time — nothing
//! outside `peerd`/`vendor/reactor` touches a clock.

use crate::framing::{encode_frame, FrameReader};
use ml::multilabel::TagPrediction;
use ml::MultiLabelDataset;
use p2pclassify::sansio::{LocalEffect, Output, PeerCore, ProtocolCore};
use p2pclassify::LinkStats;
use p2psim::PeerId;
use reactor::{Interest, Poller, TimerWheel, Token};
use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::mpsc::{Receiver, Sender};
use std::time::{Duration, Instant};
use textproc::SparseVector;

/// How often the loop checks its command channel when no socket or timer
/// event arrives earlier (epoll cannot wait on an `mpsc`).
const COMMAND_POLL: Duration = Duration::from_millis(5);

/// A request to a running daemon.
#[derive(Debug)]
pub enum Command {
    /// Append a dataset to the peer's collection, retrain, propagate.
    Train(MultiLabelDataset),
    /// Start a prediction; the scores are sent back on the channel once the
    /// core's `Prediction` effect fires (immediately for local protocols,
    /// after the response round-trip for routed ones).
    Predict(SparseVector, Sender<Vec<TagPrediction>>),
    /// Send an anti-entropy digest of this peer's holdings to `partner`.
    AntiEntropy(PeerId),
    /// Report current state (non-blocking observable for harness barriers).
    Snapshot(Sender<Snapshot>),
    /// Leave the loop; the thread returns.
    Shutdown,
}

/// A daemon's externally observable state.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The core's installed `(source, version)` pairs.
    pub installed: Vec<(u64, u64)>,
    /// The core's reliable-layer counters.
    pub link: LinkStats,
    /// Frames put on the wire by this daemon.
    pub frames_sent: u64,
    /// Frame bytes put on the wire by this daemon (transport header
    /// excluded — same accounting basis as the simulator).
    pub bytes_sent: u64,
    /// `GaveUp` effects observed (reliable mode only).
    pub gave_up: u64,
}

struct Conn {
    stream: TcpStream,
    reader: FrameReader,
}

/// The daemon state behind [`daemon`].
struct Daemon {
    core: PeerCore,
    epoch: Instant,
    poller: Poller,
    wheel: TimerWheel,
    listener: TcpListener,
    /// Inbound connections by poll token index.
    conns: BTreeMap<usize, Conn>,
    next_token: usize,
    /// Outbound (write-only) connections by destination peer.
    outbound: BTreeMap<u64, TcpStream>,
    /// Destination addresses for every peer in the fleet.
    addrs: BTreeMap<u64, SocketAddr>,
    /// Predictions awaiting their effect, by request id.
    pending_predictions: BTreeMap<u64, Sender<Vec<TagPrediction>>>,
    frames_sent: u64,
    bytes_sent: u64,
    gave_up: u64,
}

const LISTENER_TOKEN: usize = 0;

impl Daemon {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Executes one batch of core outputs.
    fn dispatch(&mut self, outputs: Vec<Output>) {
        for output in outputs {
            match output {
                Output::Emit { to, frame, .. } => self.send(to, &frame),
                Output::SetTimer { id, at } => {
                    self.wheel
                        .insert(id.0, self.epoch + Duration::from_millis(at));
                }
                Output::CancelTimer { id } => self.wheel.cancel(id.0),
                Output::Effect(LocalEffect::Prediction { request, scores }) => {
                    if let Some(reply) = self.pending_predictions.remove(&request) {
                        // A vanished requester is not the daemon's problem.
                        let _ = reply.send(scores);
                    }
                }
                Output::Effect(LocalEffect::GaveUp { .. }) => self.gave_up += 1,
                Output::Effect(LocalEffect::Installed { .. }) => {}
            }
        }
    }

    /// Writes one frame to `to`, connecting on first use. Write errors drop
    /// the connection; in reliable mode the core's retransmit timer recovers,
    /// in passthrough mode anti-entropy does.
    fn send(&mut self, to: PeerId, frame: &[u8]) {
        let Some(&addr) = self.addrs.get(&to.0) else {
            return;
        };
        if let std::collections::btree_map::Entry::Vacant(slot) = self.outbound.entry(to.0) {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    slot.insert(stream);
                }
                Err(_) => return,
            }
        }
        let message = encode_frame(self.core.id().0, frame);
        let stream = self.outbound.get_mut(&to.0).expect("just inserted");
        if stream.write_all(&message).is_err() {
            self.outbound.remove(&to.0);
            return;
        }
        self.frames_sent += 1;
        self.bytes_sent += frame.len() as u64;
    }

    /// Accepts every connection currently queued on the listener.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .register(stream.as_raw_fd(), Token(token), Interest::READABLE)
                        .is_ok()
                    {
                        self.conns.insert(
                            token,
                            Conn {
                                stream,
                                reader: FrameReader::new(),
                            },
                        );
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    /// Drains a readable connection into its frame reader and ingests every
    /// complete frame. Returns `false` when the connection is finished
    /// (closed or desynced) and should be dropped.
    fn read_ready(&mut self, token: usize) -> bool {
        let mut buf = [0u8; 16 * 1024];
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return false;
            };
            match conn.stream.read(&mut buf) {
                Ok(0) => return false,
                Ok(n) => {
                    conn.reader.push(&buf[..n]);
                    loop {
                        let Some(conn) = self.conns.get_mut(&token) else {
                            return false;
                        };
                        match conn.reader.next_frame() {
                            Ok(Some((from, frame))) => {
                                let now = self.now_ms();
                                let outputs = self.core.ingest(now, PeerId(from), &frame);
                                self.dispatch(outputs);
                            }
                            Ok(None) => break,
                            Err(()) => return false,
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    fn drop_conn(&mut self, token: usize) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
        }
    }

    fn snapshot(&self) -> Snapshot {
        Snapshot {
            installed: self.core.installed_versions(),
            link: *self.core.link_stats(),
            frames_sent: self.frames_sent,
            bytes_sent: self.bytes_sent,
            gave_up: self.gave_up,
        }
    }

    /// Handles one command. Returns `false` on shutdown.
    fn handle(&mut self, command: Command) -> bool {
        match command {
            Command::Train(data) => {
                let now = self.now_ms();
                let outputs = self.core.train(now, &data);
                self.dispatch(outputs);
            }
            Command::Predict(x, reply) => {
                let now = self.now_ms();
                let (request, outputs) = self.core.predict(now, &x);
                // Register the reply before dispatching: protocols that
                // answer inline carry the effect in `outputs`.
                self.pending_predictions.insert(request, reply);
                self.dispatch(outputs);
            }
            Command::AntiEntropy(partner) => {
                let now = self.now_ms();
                let outputs = self.core.start_anti_entropy(now, partner);
                self.dispatch(outputs);
            }
            Command::Snapshot(reply) => {
                let _ = reply.send(self.snapshot());
            }
            Command::Shutdown => return false,
        }
        true
    }
}

/// Runs one peer daemon to completion (until [`Command::Shutdown`] or the
/// command channel closes). This is the thread body: the caller binds the
/// listener first (so the fleet's address map exists before any daemon
/// starts) and hands it over together with the full address map.
pub fn daemon(
    core: PeerCore,
    listener: TcpListener,
    addrs: BTreeMap<u64, SocketAddr>,
    commands: Receiver<Command>,
) {
    let Ok(poller) = Poller::new() else {
        return;
    };
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    if poller
        .register(
            listener.as_raw_fd(),
            Token(LISTENER_TOKEN),
            Interest::READABLE,
        )
        .is_err()
    {
        return;
    }
    let mut d = Daemon {
        core,
        epoch: Instant::now(),
        poller,
        wheel: TimerWheel::new(),
        listener,
        conns: BTreeMap::new(),
        next_token: LISTENER_TOKEN + 1,
        outbound: BTreeMap::new(),
        addrs,
        pending_predictions: BTreeMap::new(),
        frames_sent: 0,
        bytes_sent: 0,
        gave_up: 0,
    };
    let mut events = Vec::new();
    loop {
        // Commands first: they are what makes progress happen.
        loop {
            match commands.try_recv() {
                Ok(command) => {
                    if !d.handle(command) {
                        return;
                    }
                }
                Err(std::sync::mpsc::TryRecvError::Empty) => break,
                Err(std::sync::mpsc::TryRecvError::Disconnected) => return,
            }
        }
        // Wait for readiness, the next timer, or the command-poll tick,
        // whichever comes first.
        let now = Instant::now();
        let timeout = d
            .wheel
            .timeout_from(now)
            .map_or(COMMAND_POLL, |t| t.min(COMMAND_POLL));
        events.clear();
        if d.poller.wait(&mut events, Some(timeout)).is_err() {
            return;
        }
        for &event in &events {
            if event.token == Token(LISTENER_TOKEN) {
                d.accept_ready();
            } else if event.readable && !d.read_ready(event.token.0) {
                d.drop_conn(event.token.0);
            }
        }
        // Fire due core timers.
        if !d.wheel.pop_due(Instant::now()).is_empty() {
            let now = d.now_ms();
            let outputs = d.core.poll_timers(now);
            d.dispatch(outputs);
        }
    }
}
