//! Length-prefixed framing for protocol frames over a TCP byte stream.
//!
//! The wire codec (`p2pclassify::wire`) produces self-describing frames but
//! TCP is a byte stream, so each frame travels as
//!
//! ```text
//! u32 (BE): length of the rest   |   u64 (BE): sender peer id   |   frame
//! ```
//!
//! The sender id rides in the transport header (not the frame) because the
//! sans-io cores take `from` as an `ingest` argument — the simulator knows
//! it from its queue, the daemon learns it here.

use std::collections::VecDeque;

/// Upper bound on a single framed message. Generous for model envelopes
/// (kernel models over the evaluation corpora are far smaller); mainly a
/// desync detector — a corrupt length prefix fails loudly instead of
/// allocating gigabytes.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Encodes one transport message: length prefix, sender id, frame bytes.
pub fn encode_frame(from: u64, frame: &[u8]) -> Vec<u8> {
    let len = 8 + frame.len();
    let mut out = Vec::with_capacity(4 + len);
    out.extend_from_slice(&(len as u32).to_be_bytes());
    out.extend_from_slice(&from.to_be_bytes());
    out.extend_from_slice(frame);
    out
}

/// Incremental decoder: push raw socket bytes in, pop `(from, frame)`
/// messages out. Tolerates arbitrary fragmentation (TCP gives no message
/// boundaries).
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: VecDeque<u8>,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Appends raw bytes read off the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend(bytes);
    }

    /// Pops the next complete message, if one is buffered.
    ///
    /// Returns `Err(())` on a length prefix beyond [`MAX_FRAME_LEN`] or
    /// shorter than its own sender header — the stream is desynced and the
    /// connection should be dropped.
    #[allow(clippy::result_unit_err)]
    pub fn next_frame(&mut self) -> Result<Option<(u64, Vec<u8>)>, ()> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let mut len_bytes = [0u8; 4];
        for (i, b) in self.buf.iter().take(4).enumerate() {
            len_bytes[i] = *b;
        }
        let len = u32::from_be_bytes(len_bytes) as usize;
        if !(8..=MAX_FRAME_LEN).contains(&len) {
            return Err(());
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        self.buf.drain(..4);
        let mut from_bytes = [0u8; 8];
        for (i, b) in self.buf.drain(..8).enumerate() {
            from_bytes[i] = b;
        }
        let from = u64::from_be_bytes(from_bytes);
        let frame: Vec<u8> = self.buf.drain(..len - 8).collect();
        Ok(Some((from, frame)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_across_arbitrary_fragmentation() {
        let messages: Vec<(u64, Vec<u8>)> = vec![
            (3, b"first".to_vec()),
            (u64::MAX, Vec::new()),
            (0, vec![0xD7; 300]),
        ];
        let mut stream = Vec::new();
        for (from, frame) in &messages {
            stream.extend_from_slice(&encode_frame(*from, frame));
        }
        // Feed the byte stream one byte at a time — the cruellest split.
        let mut reader = FrameReader::new();
        let mut decoded = Vec::new();
        for byte in stream {
            reader.push(&[byte]);
            while let Some(msg) = reader.next_frame().expect("well-formed") {
                decoded.push(msg);
            }
        }
        assert_eq!(decoded, messages);
        assert_eq!(reader.next_frame(), Ok(None));
    }

    #[test]
    fn absurd_length_prefix_is_a_desync_error() {
        let mut reader = FrameReader::new();
        reader.push(&u32::MAX.to_be_bytes());
        assert_eq!(reader.next_frame(), Err(()));
        // Too short to carry its own sender header: also desync.
        let mut reader = FrameReader::new();
        reader.push(&3u32.to_be_bytes());
        assert_eq!(reader.next_frame(), Err(()));
    }
}
