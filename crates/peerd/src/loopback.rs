//! Multi-peer loopback harness: a fleet of peer daemons over 127.0.0.1.
//!
//! [`LoopbackHarness::start`] binds one listener per core *first* (so every
//! daemon is born with the complete address map — no discovery protocol),
//! then spawns one daemon thread per peer. The harness methods mirror the
//! simulator driver's verbs (`train`, `predict`, `anti_entropy`) plus the
//! convergence barrier real sockets need: [`LoopbackHarness::wait_installed`]
//! polls a peer's snapshot until its installed-version set reaches an
//! expected value — the socket-world analogue of the simulator's
//! `run_until_quiescent`.

use crate::daemon::{daemon, Command, Snapshot};
use ml::multilabel::TagPrediction;
use ml::MultiLabelDataset;
use p2pclassify::sansio::PeerCore;
use p2psim::PeerId;
use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::mpsc::{channel, Sender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use textproc::SparseVector;

/// A running fleet of peer daemons on loopback TCP.
pub struct LoopbackHarness {
    peers: Vec<PeerId>,
    commands: BTreeMap<u64, Sender<Command>>,
    handles: Vec<JoinHandle<()>>,
}

impl LoopbackHarness {
    /// Binds a listener per core on `127.0.0.1:0`, then spawns the daemons.
    pub fn start(cores: Vec<PeerCore>) -> io::Result<LoopbackHarness> {
        let mut listeners = Vec::with_capacity(cores.len());
        let mut addrs: BTreeMap<u64, SocketAddr> = BTreeMap::new();
        for core in &cores {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            addrs.insert(core.id().0, listener.local_addr()?);
            listeners.push(listener);
        }
        let peers: Vec<PeerId> = cores.iter().map(|c| c.id()).collect();
        let mut commands = BTreeMap::new();
        let mut handles = Vec::with_capacity(cores.len());
        for (core, listener) in cores.into_iter().zip(listeners) {
            let (tx, rx) = channel();
            commands.insert(core.id().0, tx);
            let addrs = addrs.clone();
            handles.push(std::thread::spawn(move || {
                daemon(core, listener, addrs, rx)
            }));
        }
        Ok(LoopbackHarness {
            peers,
            commands,
            handles,
        })
    }

    /// The fleet's peer ids, in core order.
    pub fn peers(&self) -> &[PeerId] {
        &self.peers
    }

    fn command(&self, peer: PeerId, command: Command) -> io::Result<()> {
        self.commands
            .get(&peer.0)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "unknown peer"))?
            .send(command)
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "daemon exited"))
    }

    /// Trains `peer` on `data` (asynchronous: propagation happens in the
    /// background; use [`Self::wait_installed`] as the barrier).
    pub fn train(&self, peer: PeerId, data: &MultiLabelDataset) -> io::Result<()> {
        self.command(peer, Command::Train(data.clone()))
    }

    /// Runs a prediction at `peer`, blocking until the scores arrive or
    /// `timeout` elapses.
    pub fn predict(
        &self,
        peer: PeerId,
        x: &SparseVector,
        timeout: Duration,
    ) -> io::Result<Vec<TagPrediction>> {
        let (tx, rx) = channel();
        self.command(peer, Command::Predict(x.clone(), tx))?;
        rx.recv_timeout(timeout)
            .map_err(|_| io::Error::new(io::ErrorKind::TimedOut, "prediction timed out"))
    }

    /// Starts an anti-entropy exchange from `peer` towards `partner`.
    pub fn anti_entropy(&self, peer: PeerId, partner: PeerId) -> io::Result<()> {
        self.command(peer, Command::AntiEntropy(partner))
    }

    /// Fetches `peer`'s current snapshot.
    pub fn snapshot(&self, peer: PeerId) -> io::Result<Snapshot> {
        let (tx, rx) = channel();
        self.command(peer, Command::Snapshot(tx))?;
        rx.recv_timeout(Duration::from_secs(10))
            .map_err(|_| io::Error::new(io::ErrorKind::TimedOut, "snapshot timed out"))
    }

    /// Polls `peer` until its installed `(source, version)` set equals
    /// `expected` (sorted), or `timeout` elapses. Returns the final set.
    pub fn wait_installed(
        &self,
        peer: PeerId,
        expected: &[(u64, u64)],
        timeout: Duration,
    ) -> io::Result<Vec<(u64, u64)>> {
        let deadline = Instant::now() + timeout;
        loop {
            let snapshot = self.snapshot(peer)?;
            if snapshot.installed == expected {
                return Ok(snapshot.installed);
            }
            if Instant::now() >= deadline {
                return Ok(snapshot.installed);
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Shuts every daemon down and joins the threads.
    pub fn shutdown(self) {
        for tx in self.commands.values() {
            let _ = tx.send(Command::Shutdown);
        }
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}
