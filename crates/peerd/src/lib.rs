//! # peerd — the real-socket driver for the sans-io protocol cores
//!
//! The second driver of the two-driver architecture (`p2pclassify::sansio`):
//! where [`p2pclassify::sansio::SimDriver`] replays a core through a
//! virtual-time queue, `peerd` runs the *same* core behind a real TCP
//! socket, an `epoll` readiness loop and a monotonic timer wheel (both from
//! the vendored [`reactor`] crate). One protocol body, two executions — the
//! `sim_vs_socket` equivalence tests pin that the installed models and
//! predictions come out identical.
//!
//! The crate is deliberately thread-per-peer, not one shared event loop:
//! each [`daemon()`] owns one core, one listening socket and one command
//! channel, which is exactly the deployment shape of the paper's
//! peer-as-a-process architecture and keeps every core single-threaded (the
//! cores are `!Sync`-agnostic pure state machines; nothing here locks).
//!
//! `peerd` and `vendor/reactor` are the workspace's two audited wall-clock /
//! thread boundaries: everything protocol-side stays virtual-time and
//! deterministic, and `xtask lint` enforces that the rest of the workspace
//! cannot reach for `Instant`, `thread::spawn` or `mpsc`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod corpus;
pub mod daemon;
pub mod framing;
pub mod loopback;

pub use daemon::{daemon, Command, Snapshot};
pub use framing::{encode_frame, FrameReader};
pub use loopback::LoopbackHarness;
