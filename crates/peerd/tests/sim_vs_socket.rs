//! Sim ↔ socket equivalence: one protocol body, two drivers, identical
//! results.
//!
//! For each of the four protocols, the same seeded scenario runs twice over
//! the *same* sans-io cores: once through the deterministic virtual-time
//! [`SimDriver`], once through a real peerd fleet on loopback TCP. After
//! both converge, the installed `(source, version)` sets and the prediction
//! scores for every probe must agree **exactly** (bit-for-bit `f64`s) — the
//! cores are order-independent by construction, so a real network's
//! arbitrary interleavings must not be observable in the results.

use p2pclassify::sansio::{
    CemparCore, CentralizedCore, LocalCore, LocalEffect, PaceCore, PeerCore, SimDriver,
};
use p2pclassify::{CemparConfig, CentralizedConfig, LocalOnlyConfig, PaceConfig};
use p2psim::PeerId;
use peerd::corpus;
use peerd::LoopbackHarness;
use std::time::Duration;

const CONVERGE_TIMEOUT: Duration = Duration::from_secs(60);
const PREDICT_TIMEOUT: Duration = Duration::from_secs(20);

/// Per-peer installed `(source, version)` sets.
type Installed = Vec<Vec<(u64, u64)>>;
/// Per-probe prediction score lists.
type Scores = Vec<Vec<ml::multilabel::TagPrediction>>;

/// Runs the seeded scenario through the simulator: returns per-peer
/// installed sets and per-probe scores.
fn run_sim(
    mut driver: SimDriver,
    peers: &[PeerId],
    data: &[ml::MultiLabelDataset],
    probes: &[textproc::SparseVector],
) -> (Installed, Scores) {
    for (i, &peer) in peers.iter().enumerate() {
        driver.train(peer, &data[i]);
    }
    driver.run_until_quiescent();
    let installed = driver
        .cores()
        .iter()
        .map(|c| c.installed_versions())
        .collect();
    let mut scores = Vec::with_capacity(probes.len());
    for (i, probe) in probes.iter().enumerate() {
        let peer = peers[i % peers.len()];
        let request = driver.predict(peer, probe);
        driver.run_until_quiescent();
        let result = driver
            .effects()
            .iter()
            .find_map(|(p, e)| match e {
                LocalEffect::Prediction { request: r, scores } if *p == peer && *r == request => {
                    Some(scores.clone())
                }
                _ => None,
            })
            .expect("sim prediction completed");
        scores.push(result);
    }
    (installed, scores)
}

/// Runs the same scenario through a loopback peerd fleet, using the sim's
/// converged installed sets as the barrier.
fn run_socket(
    cores: Vec<PeerCore>,
    peers: &[PeerId],
    data: &[ml::MultiLabelDataset],
    probes: &[textproc::SparseVector],
    expected_installed: &[Vec<(u64, u64)>],
) -> (Installed, Scores) {
    let harness = LoopbackHarness::start(cores).expect("harness starts");
    for (i, &peer) in peers.iter().enumerate() {
        harness.train(peer, &data[i]).expect("train command");
    }
    let installed: Vec<Vec<(u64, u64)>> = peers
        .iter()
        .enumerate()
        .map(|(i, &peer)| {
            harness
                .wait_installed(peer, &expected_installed[i], CONVERGE_TIMEOUT)
                .expect("snapshot")
        })
        .collect();
    let scores: Vec<Vec<ml::multilabel::TagPrediction>> = probes
        .iter()
        .enumerate()
        .map(|(i, probe)| {
            let peer = peers[i % peers.len()];
            harness
                .predict(peer, probe, PREDICT_TIMEOUT)
                .expect("socket prediction completed")
        })
        .collect();
    harness.shutdown();
    (installed, scores)
}

/// The full axis for one protocol: same cores, two drivers, equal results.
fn assert_drivers_agree<F>(name: &str, peers: &[PeerId], make_fleet: F)
where
    F: Fn() -> Vec<PeerCore>,
{
    let data = corpus::peer_data(peers.len(), 12, 0xC0FFEE);
    let probes = corpus::probes(10, 0xBEEF);
    let (sim_installed, sim_scores) = run_sim(SimDriver::new(make_fleet()), peers, &data, &probes);
    let (socket_installed, socket_scores) =
        run_socket(make_fleet(), peers, &data, &probes, &sim_installed);
    assert_eq!(
        sim_installed, socket_installed,
        "{name}: installed model versions diverge between drivers"
    );
    for (i, (s, k)) in sim_scores.iter().zip(&socket_scores).enumerate() {
        assert_eq!(s, k, "{name}: probe {i} scores diverge between drivers");
    }
}

#[test]
fn pace_sim_and_socket_agree() {
    let peers: Vec<PeerId> = (0..4).map(PeerId).collect();
    assert_drivers_agree("pace", &peers, || {
        peers
            .iter()
            .map(|&p| PeerCore::Pace(PaceCore::new(p, peers.clone(), PaceConfig::default())))
            .collect()
    });
}

#[test]
fn cempar_sim_and_socket_agree() {
    let peers: Vec<PeerId> = (0..6).map(PeerId).collect();
    assert_drivers_agree("cempar", &peers, || {
        peers
            .iter()
            .map(|&p| PeerCore::Cempar(CemparCore::new(p, peers.clone(), CemparConfig::default())))
            .collect()
    });
}

#[test]
fn centralized_sim_and_socket_agree() {
    let peers: Vec<PeerId> = (0..4).map(PeerId).collect();
    assert_drivers_agree("centralized", &peers, || {
        peers
            .iter()
            .map(|&p| PeerCore::Centralized(CentralizedCore::new(p, CentralizedConfig::default())))
            .collect()
    });
}

#[test]
fn local_sim_and_socket_agree() {
    let peers: Vec<PeerId> = (0..3).map(PeerId).collect();
    assert_drivers_agree("local", &peers, || {
        peers
            .iter()
            .map(|&p| PeerCore::Local(LocalCore::new(p, LocalOnlyConfig::default())))
            .collect()
    });
}

/// Anti-entropy works over real sockets too: a late-joining peer (empty
/// fleet member that missed training-time propagation) repairs itself by
/// digesting at a peer that has everything.
#[test]
fn pace_anti_entropy_repairs_over_sockets() {
    let peers: Vec<PeerId> = (0..3).map(PeerId).collect();
    let data = corpus::peer_data(peers.len(), 12, 0xC0FFEE);
    // Sim reference for what full convergence looks like.
    let fleet: Vec<PeerCore> = peers
        .iter()
        .map(|&p| PeerCore::Pace(PaceCore::new(p, peers.clone(), PaceConfig::default())))
        .collect();
    let mut sim = SimDriver::new(fleet.clone());
    for (i, &peer) in peers.iter().enumerate() {
        sim.train(peer, &data[i]);
    }
    sim.run_until_quiescent();
    let full = sim.cores()[0].installed_versions();

    let harness = LoopbackHarness::start(fleet).expect("harness starts");
    // Only peers 0 and 1 train; peer 2 receives their models passively but
    // contributes nothing, and peers 0/1 never hear about each other's
    // version bumps beyond the initial propagation.
    for (i, &peer) in peers.iter().take(2).enumerate() {
        harness.train(peer, &data[i]).expect("train");
    }
    let partial: Vec<(u64, u64)> = full
        .iter()
        .copied()
        .filter(|&(s, _)| s != peers[2].0)
        .collect();
    let got = harness
        .wait_installed(peers[2], &partial, CONVERGE_TIMEOUT)
        .expect("snapshot");
    assert_eq!(got, partial, "passive peer received both trained models");

    // Now peer 2 trains — everyone repairs to `full` via propagation, and an
    // extra digest exchange is a no-op (idempotent).
    harness.train(peers[2], &data[2]).expect("train");
    for &peer in &peers {
        let got = harness
            .wait_installed(peer, &full, CONVERGE_TIMEOUT)
            .expect("snapshot");
        assert_eq!(got, full, "{peer:?} converged to the full ensemble");
    }
    harness.anti_entropy(peers[0], peers[1]).expect("digest");
    std::thread::sleep(Duration::from_millis(100));
    for &peer in &peers {
        assert_eq!(harness.snapshot(peer).expect("snapshot").installed, full);
    }
    harness.shutdown();
}
