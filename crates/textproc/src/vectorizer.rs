//! The end-to-end preprocessing pipeline: tokenize → filter → stem → vectorize.
//!
//! Mirrors the "Document preprocessing" box of Figure 1: the output of the
//! pipeline is the sparse bag-of-words vector that is the only document
//! representation ever handled by the learning and P2P layers.

use crate::porter::PorterStemmer;
use crate::sparse::SparseVector;
use crate::stopwords::StopWordFilter;
use crate::tokenizer::Tokenizer;
use crate::vocabulary::Vocabulary;
use serde::{Deserialize, Serialize};

/// Term weighting schemes for document vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Weighting {
    /// Raw term frequency (the paper's "value of the attributes represents the
    /// word frequency in the documents").
    Tf,
    /// Term frequency scaled by smoothed inverse document frequency.
    #[default]
    TfIdf,
    /// 1.0 if the word occurs, 0.0 otherwise.
    Binary,
    /// `1 + ln(tf)` sub-linear term frequency.
    LogTf,
}

/// Builder for [`PreprocessPipeline`].
#[derive(Debug, Clone, Default)]
pub struct PreprocessPipelineBuilder {
    tokenizer: Tokenizer,
    stop_words: Option<StopWordFilter>,
    weighting: Weighting,
    l2_normalize: bool,
    stemming: bool,
}

impl PreprocessPipelineBuilder {
    /// Creates a builder with default components (English stop words, Porter
    /// stemming, TF-IDF weighting, L2 normalization).
    pub fn new() -> Self {
        Self {
            tokenizer: Tokenizer::default(),
            stop_words: None,
            weighting: Weighting::TfIdf,
            l2_normalize: true,
            stemming: true,
        }
    }

    /// Overrides the tokenizer.
    pub fn tokenizer(mut self, tokenizer: Tokenizer) -> Self {
        self.tokenizer = tokenizer;
        self
    }

    /// Overrides the stop-word / sensitive-word filter.
    pub fn stop_words(mut self, filter: StopWordFilter) -> Self {
        self.stop_words = Some(filter);
        self
    }

    /// Selects the term weighting scheme.
    pub fn weighting(mut self, weighting: Weighting) -> Self {
        self.weighting = weighting;
        self
    }

    /// Enables or disables L2 normalization of the final vectors.
    pub fn l2_normalize(mut self, enabled: bool) -> Self {
        self.l2_normalize = enabled;
        self
    }

    /// Enables or disables Porter stemming.
    pub fn stemming(mut self, enabled: bool) -> Self {
        self.stemming = enabled;
        self
    }

    /// Builds the pipeline.
    pub fn build(self) -> PreprocessPipeline {
        PreprocessPipeline {
            tokenizer: self.tokenizer,
            stop_words: self.stop_words.unwrap_or_default(),
            stemmer: PorterStemmer::new(),
            vocabulary: Vocabulary::new(),
            weighting: self.weighting,
            l2_normalize: self.l2_normalize,
            stemming: self.stemming,
        }
    }
}

/// Complete preprocessing pipeline producing sparse document vectors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PreprocessPipeline {
    tokenizer: Tokenizer,
    stop_words: StopWordFilter,
    stemmer: PorterStemmer,
    vocabulary: Vocabulary,
    weighting: Weighting,
    l2_normalize: bool,
    stemming: bool,
}

impl Default for PreprocessPipeline {
    fn default() -> Self {
        PreprocessPipelineBuilder::new().build()
    }
}

impl PreprocessPipeline {
    /// Creates a pipeline with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a builder for customizing the pipeline.
    pub fn builder() -> PreprocessPipelineBuilder {
        PreprocessPipelineBuilder::new()
    }

    /// The fitted vocabulary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocabulary
    }

    /// The configured weighting scheme.
    pub fn weighting(&self) -> Weighting {
        self.weighting
    }

    /// Mutable access to the stop-word / sensitive-word filter, e.g. for
    /// registering user-specified sensitive words before fitting.
    pub fn stop_words_mut(&mut self) -> &mut StopWordFilter {
        &mut self.stop_words
    }

    /// Tokenizes, filters and stems a raw document into processed terms.
    pub fn terms(&self, text: &str) -> Vec<String> {
        let tokens = self.tokenizer.tokenize(text);
        let mut tokens = self.stop_words.filter(tokens);
        if self.stemming {
            self.stemmer.stem_all(&mut tokens);
        }
        tokens
    }

    /// Observes a document, growing the vocabulary (fit step). Returns nothing;
    /// use [`Self::transform`] afterwards, or [`Self::fit_transform`] for both.
    pub fn fit_one(&mut self, text: &str) {
        let terms = self.terms(text);
        self.vocabulary
            .observe_document(terms.iter().map(String::as_str));
    }

    /// Fits the vocabulary on a corpus and freezes it.
    pub fn fit<'a, I>(&mut self, docs: I)
    where
        I: IntoIterator<Item = &'a str>,
    {
        for doc in docs {
            self.fit_one(doc);
        }
        self.vocabulary.freeze();
    }

    /// Transforms a document into its sparse feature vector using the fitted
    /// vocabulary (unknown words are ignored).
    pub fn transform(&self, text: &str) -> SparseVector {
        let terms = self.terms(text);
        let counts = self
            .vocabulary
            .count_tokens(terms.iter().map(String::as_str));
        // `counts` is a BTreeMap: ascending unique ids, so the sorted
        // constructor applies and the weight loop runs in deterministic
        // order by construction.
        let mut v = SparseVector::from_sorted_pairs(counts.iter().map(|(&id, &tf)| {
            let tf = tf as f64;
            let w = match self.weighting {
                Weighting::Tf => tf,
                Weighting::Binary => 1.0,
                Weighting::LogTf => 1.0 + tf.ln(),
                Weighting::TfIdf => tf * self.vocabulary.idf(id),
            };
            (id, w)
        }));
        if self.l2_normalize {
            v.l2_normalize();
        }
        v
    }

    /// Transforms a batch of documents with the fitted vocabulary, in input
    /// order. Each document is independent, so the batch is vectorized in
    /// parallel when cores are available; the ordered reduction keeps the
    /// output identical to a sequential `map`.
    pub fn transform_batch(&self, docs: &[&str]) -> Vec<SparseVector> {
        parallel::par_map(docs, |d| self.transform(d))
    }

    /// Fits on the corpus and returns the vector of every document, in order.
    ///
    /// Fitting observes documents sequentially (vocabulary ids depend on
    /// first-seen order); the transform pass uses [`Self::transform_batch`].
    pub fn fit_transform<'a, I>(&mut self, docs: I) -> Vec<SparseVector>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let docs: Vec<&str> = docs.into_iter().collect();
        self.fit(docs.iter().copied());
        self.transform_batch(&docs)
    }

    /// Size of the fitted lexicon.
    pub fn lexicon_size(&self) -> usize {
        self.vocabulary.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOCS: [&str; 3] = [
        "Distributed peer to peer networks share resources among peers.",
        "Support vector machines learn classification models from training documents.",
        "Tagging documents with collaborative tags eases document retrieval.",
    ];

    #[test]
    fn transform_matches_unsorted_reference_and_is_deterministic() {
        // Regression for the BTreeMap conversion of the vocabulary count
        // maps: the sorted construction path must produce exactly the
        // vector the sort-and-merge `from_pairs` reference builds, and
        // repeated transforms must be bit-identical (hash order used to be
        // the only thing standing between this and nondeterminism).
        let mut p = PreprocessPipeline::new();
        p.fit(DOCS);
        for doc in DOCS {
            let v = p.transform(doc);
            let counts = p
                .vocabulary
                .count_tokens(p.terms(doc).iter().map(String::as_str));
            let mut reference = SparseVector::from_pairs(counts.iter().map(|(&id, &tf)| {
                let tf = tf as f64;
                (id, tf * p.vocabulary.idf(id))
            }));
            reference.l2_normalize();
            assert_eq!(v, reference);
            let again = p.transform(doc);
            assert_eq!(v.indices(), again.indices());
            assert!(v
                .values()
                .iter()
                .zip(again.values())
                .all(|(a, b)| a.to_bits() == b.to_bits()));
            // Indices come out strictly ascending (the BTreeMap guarantee
            // the sorted constructor relies on).
            assert!(v.indices().windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn fit_transform_produces_nonempty_vectors() {
        let mut p = PreprocessPipeline::new();
        let vs = p.fit_transform(DOCS);
        assert_eq!(vs.len(), 3);
        for v in &vs {
            assert!(v.nnz() > 0);
            assert!((v.norm() - 1.0).abs() < 1e-9, "L2 normalized by default");
        }
        assert!(p.lexicon_size() > 10);
    }

    #[test]
    fn stop_words_never_reach_the_vocabulary() {
        let mut p = PreprocessPipeline::new();
        p.fit(DOCS.iter().copied());
        assert!(p.vocabulary().id_of("the").is_none());
        assert!(p.vocabulary().id_of("to").is_none());
    }

    #[test]
    fn stemming_merges_inflected_forms() {
        let mut p = PreprocessPipeline::new();
        p.fit(DOCS.iter().copied());
        // "documents" and "document" should map to the same stem id.
        let v = p.vocabulary();
        assert!(v.id_of("document").is_some());
        assert!(v.id_of("documents").is_none());
    }

    #[test]
    fn sensitive_words_are_removed() {
        let mut p = PreprocessPipeline::new();
        p.stop_words_mut().add_sensitive_word("classification");
        p.fit(DOCS.iter().copied());
        assert!(p.vocabulary().id_of("classif").is_none());
    }

    #[test]
    fn unknown_words_are_ignored_at_transform_time() {
        let mut p = PreprocessPipeline::new();
        p.fit(DOCS.iter().copied());
        let v = p.transform("zzzz qqqq totally unseen words");
        // Only "words" overlaps (stemmed "word" is not in corpus) — vector may be empty.
        assert!(v.nnz() <= 2);
    }

    #[test]
    fn tf_weighting_counts_occurrences() {
        let mut p = PreprocessPipeline::builder()
            .weighting(Weighting::Tf)
            .l2_normalize(false)
            .build();
        p.fit(["peer peer peer network"]);
        let v = p.transform("peer peer network");
        let id = p.vocabulary().id_of("peer").unwrap();
        assert_eq!(v.get(id), 2.0);
    }

    #[test]
    fn binary_weighting_is_zero_or_one() {
        let mut p = PreprocessPipeline::builder()
            .weighting(Weighting::Binary)
            .l2_normalize(false)
            .build();
        p.fit(["alpha alpha beta"]);
        let v = p.transform("alpha alpha alpha beta");
        for (_, w) in v.iter() {
            assert_eq!(w, 1.0);
        }
    }

    #[test]
    fn tfidf_downweights_ubiquitous_terms() {
        let mut p = PreprocessPipeline::builder()
            .weighting(Weighting::TfIdf)
            .l2_normalize(false)
            .build();
        let corpus = [
            "shared term alpha",
            "shared term beta",
            "shared term gamma",
            "shared unique delta",
        ];
        p.fit(corpus.iter().copied());
        let v = p.transform("shared unique");
        let shared = p.vocabulary().id_of("share").unwrap();
        let unique = p.vocabulary().id_of("uniqu").unwrap();
        assert!(v.get(unique) > v.get(shared));
    }
}
