//! # textproc — document preprocessing for P2PDocTagger
//!
//! This crate implements the "Document preprocessing" stage of the P2PDocTagger
//! pipeline (Figure 1 of the paper):
//!
//! 1. **Tokenization** of raw text into lower-cased word tokens
//!    ([`tokenizer::Tokenizer`]).
//! 2. **Stop-word and sensitive-word filtering** — words with little recognition
//!    value (a, for, and, not, …) as well as user-specified sensitive words are
//!    removed ([`stopwords::StopWordFilter`]).
//! 3. **Porter stemming** — words are normalized to remove the commoner
//!    morphological and inflexional endings ([`porter::PorterStemmer`]).
//! 4. **Vectorization** — documents are represented as multidimensional sparse
//!    feature vectors, where the attribute id is the word id and the value is a
//!    weight derived from the word frequency in the document
//!    ([`vectorizer::PreprocessPipeline`], [`sparse::SparseVector`]).
//!
//! The resulting vectors intentionally discard word order and the original
//! surface forms; as the paper argues, only word ids and frequencies are ever
//! shared with other peers, which limits what can be reconstructed from them.
//!
//! ## Quick example
//!
//! ```
//! use textproc::prelude::*;
//!
//! let docs = [
//!     "Peer to peer networks share resources among autonomous peers.",
//!     "Support vector machines learn a classification model from training data.",
//! ];
//! let mut pipeline = PreprocessPipeline::builder()
//!     .weighting(Weighting::TfIdf)
//!     .build();
//! let vectors = pipeline.fit_transform(docs.iter().copied());
//! assert_eq!(vectors.len(), 2);
//! assert!(vectors[0].nnz() > 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod csr;
pub mod porter;
pub mod sparse;
pub mod stopwords;
pub mod tokenizer;
pub mod vectorizer;
pub mod vocabulary;

/// Convenient re-exports of the most commonly used preprocessing types.
pub mod prelude {
    pub use crate::csr::CsrMatrix;
    pub use crate::porter::PorterStemmer;
    pub use crate::sparse::SparseVector;
    pub use crate::stopwords::StopWordFilter;
    pub use crate::tokenizer::Tokenizer;
    pub use crate::vectorizer::{PreprocessPipeline, PreprocessPipelineBuilder, Weighting};
    pub use crate::vocabulary::Vocabulary;
}

pub use csr::CsrMatrix;
pub use porter::PorterStemmer;
pub use sparse::SparseVector;
pub use stopwords::StopWordFilter;
pub use tokenizer::Tokenizer;
pub use vectorizer::{PreprocessPipeline, PreprocessPipelineBuilder, Weighting};
pub use vocabulary::Vocabulary;
