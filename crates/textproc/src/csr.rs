//! Compressed sparse row (CSR) matrices over document vectors.
//!
//! A peer's corpus is a list of [`SparseVector`]s: every row owns two small
//! heap allocations, and a training pass that touches all rows chases one
//! pointer pair per document. [`CsrMatrix`] materializes the same rows **once**
//! into three contiguous arrays (`indptr`, `indices`, `values`), which is the
//! layout the CSR-native training path iterates: rows stream through the cache
//! in order, and the per-row kernels ([`CsrMatrix::row_dot_dense`],
//! [`CsrMatrix::row_axpy_into`]) can elide per-element bounds checks because
//! the matrix proves `index < dim` for every stored entry at construction.
//!
//! The row kernels accumulate strictly in stored (ascending-index) order —
//! the same order [`SparseVector::dot_dense`] and the scalar SVM solvers use —
//! so replacing a `&[SparseVector]` walk with a CSR walk is bit-for-bit
//! neutral on every floating-point result. The equivalence suites in `ml` and
//! `p2pclassify` pin this.

use crate::sparse::SparseVector;

/// A read-only CSR matrix: row `i` occupies `indices[indptr[i]..indptr[i+1]]`
/// (strictly increasing within a row) and the parallel `values` range.
///
/// # Invariant
///
/// Every stored index is `< self.dim()`. The hot row kernels rely on this to
/// skip per-element bounds checks after a single `w.len() >= dim` assertion.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f64>,
    dim: usize,
}

impl Default for CsrMatrix {
    /// The empty (zero-row) matrix. `indptr` still holds the leading 0 the
    /// layout invariant requires.
    fn default() -> Self {
        Self::from_vectors(&[])
    }
}

impl CsrMatrix {
    /// Builds a CSR matrix from a slice of sparse rows (one pass, `O(nnz)`).
    pub fn from_vectors(rows: &[SparseVector]) -> Self {
        Self::from_rows(rows.iter())
    }

    /// Builds a CSR matrix from any iterator of sparse rows.
    pub fn from_rows<'a, I>(rows: I) -> Self
    where
        I: IntoIterator<Item = &'a SparseVector>,
    {
        let rows = rows.into_iter();
        let mut indptr = Vec::with_capacity(rows.size_hint().0 + 1);
        indptr.push(0usize);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for row in rows {
            // Mirror of the row invariant the unsafe kernels rely on:
            // stored indices strictly increase within a row (SparseVector
            // construction guarantees it; cheap to re-check here, where a
            // violation would otherwise surface as silent wrong sums).
            debug_assert!(
                row.indices().windows(2).all(|w| w[0] < w[1]),
                "CSR source row indices must be strictly increasing"
            );
            debug_assert_eq!(
                row.indices().len(),
                row.values().len(),
                "CSR source row indices/values must be parallel"
            );
            indices.extend_from_slice(row.indices());
            values.extend_from_slice(row.values());
            indptr.push(indices.len());
        }
        // Establish the `index < dim` invariant from the stored entries
        // themselves, not from `SparseVector::dim_lower_bound` (which trusts
        // the last entry to be the largest — a property only debug builds
        // assert during construction). The row kernels' bounds-check elision
        // rests on this, so it must hold even for malformed input rows.
        let dim = indices.iter().max().map_or(0, |&i| i as usize + 1);
        Self {
            indptr,
            indices,
            values,
            dim,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Whether the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.num_rows() == 0
    }

    /// Total number of stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Column-dimension lower bound: the largest stored index plus one,
    /// computed from the stored entries at construction (0 when every row is
    /// empty). Every stored index is strictly below this — for well-formed
    /// rows it equals the maximum [`SparseVector::dim_lower_bound`].
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored entries in row `i`.
    pub fn row_nnz(&self, i: usize) -> usize {
        self.indptr[i + 1] - self.indptr[i]
    }

    /// The `(indices, values)` slices of row `i`.
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let (lo, hi) = (self.indptr[i], self.indptr[i + 1]);
        (&self.indices[lo..hi], &self.values[lo..hi])
    }

    /// Iterates over `(index, value)` pairs of row `i` in ascending index
    /// order — the same enumeration [`SparseVector::iter`] produces.
    pub fn iter_row(&self, i: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let (idx, val) = self.row(i);
        idx.iter().copied().zip(val.iter().copied())
    }

    /// Materializes row `i` as an owned [`SparseVector`] (copies the row; use
    /// the borrowing accessors on hot paths).
    pub fn row_vector(&self, i: usize) -> SparseVector {
        SparseVector::from_sorted_pairs(self.iter_row(i))
    }

    /// Squared Euclidean norm of row `i`, accumulated in stored order —
    /// bit-identical to [`SparseVector::norm_sq`] on the same row.
    pub fn row_norm_sq(&self, i: usize) -> f64 {
        let (_, val) = self.row(i);
        val.iter().map(|v| v * v).sum()
    }

    /// Dot product of row `i` with a dense vector, accumulated in stored
    /// (ascending-index) order — bit-identical to
    /// [`SparseVector::dot_dense`] on the same row whenever
    /// `w.len() >= self.dim()`.
    ///
    /// # Panics
    /// Panics when `w.len() < self.dim()` (the construction invariant then
    /// guarantees every stored index is in bounds, so the inner loop runs
    /// without per-element checks).
    #[inline]
    pub fn row_dot_dense(&self, i: usize, w: &[f64]) -> f64 {
        assert!(
            w.len() >= self.dim,
            "dense vector too short: {} < {}",
            w.len(),
            self.dim
        );
        let (lo, hi) = (self.indptr[i], self.indptr[i + 1]);
        debug_assert!(lo <= hi && hi <= self.values.len());
        let mut sum = 0.0;
        // SAFETY: `lo..hi` is a valid entry range by construction (`indptr`
        // is built monotonically with final value `indices.len() ==
        // values.len()`), and every stored index is < self.dim <= w.len()
        // (`dim` is the max stored index + 1, re-derived from the entries at
        // construction; the assert above checks `w`).
        unsafe {
            for k in lo..hi {
                sum += self.values.get_unchecked(k)
                    * w.get_unchecked(*self.indices.get_unchecked(k) as usize);
            }
        }
        sum
    }

    /// `w[j] += factor * row[i][j]` for every stored entry of row `i`, in
    /// stored order — the scatter step of the SVM solvers, bit-identical to
    /// the per-entry loop over [`SparseVector::iter`].
    ///
    /// # Panics
    /// Panics when `w.len() < self.dim()`.
    #[inline]
    pub fn row_axpy_into(&self, i: usize, factor: f64, w: &mut [f64]) {
        assert!(
            w.len() >= self.dim,
            "dense vector too short: {} < {}",
            w.len(),
            self.dim
        );
        let (lo, hi) = (self.indptr[i], self.indptr[i + 1]);
        debug_assert!(lo <= hi && hi <= self.values.len());
        // SAFETY: same invariant as `row_dot_dense`: `lo..hi` indexes valid
        // entries of the parallel `indices`/`values` arrays, and each stored
        // index `j` satisfies `j < self.dim <= w.len()` (construction
        // derives `dim` from the stored entries; the assert above checks
        // `w`), so `get_unchecked_mut(j)` stays in bounds.
        unsafe {
            for k in lo..hi {
                let j = *self.indices.get_unchecked(k) as usize;
                *w.get_unchecked_mut(j) += factor * self.values.get_unchecked(k);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<SparseVector> {
        vec![
            SparseVector::from_pairs([(0, 1.0), (4, -2.0)]),
            SparseVector::new(),
            SparseVector::from_pairs([(2, 0.5), (3, 1.5), (7, 3.0)]),
        ]
    }

    #[test]
    fn layout_matches_source_rows() {
        let rows = rows();
        let csr = CsrMatrix::from_vectors(&rows);
        assert_eq!(csr.num_rows(), 3);
        assert_eq!(csr.nnz(), 5);
        assert_eq!(csr.dim(), 8);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(csr.row_nnz(i), r.nnz());
            assert_eq!(csr.row(i).0, r.indices());
            assert_eq!(csr.row(i).1, r.values());
            assert_eq!(csr.row_vector(i), *r);
            assert!(csr.iter_row(i).eq(r.iter()));
        }
    }

    #[test]
    fn row_kernels_are_bit_identical_to_sparse_vector_ops() {
        let rows = rows();
        let csr = CsrMatrix::from_vectors(&rows);
        let w: Vec<f64> = (0..csr.dim()).map(|j| 0.3 * j as f64 - 1.0).collect();
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                csr.row_dot_dense(i, &w).to_bits(),
                r.dot_dense(&w).to_bits()
            );
            assert_eq!(csr.row_norm_sq(i).to_bits(), r.norm_sq().to_bits());
            let mut a = w.clone();
            let mut b = w.clone();
            csr.row_axpy_into(i, 0.7, &mut a);
            for (idx, v) in r.iter() {
                b[idx as usize] += 0.7 * v;
            }
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn empty_matrix_is_well_formed() {
        let csr = CsrMatrix::from_vectors(&[]);
        assert!(csr.is_empty());
        assert_eq!(csr.dim(), 0);
        assert_eq!(csr.nnz(), 0);
        // Default must be the same well-formed empty matrix (a derived
        // Default would leave indptr without its leading 0).
        let default = CsrMatrix::default();
        assert_eq!(default, csr);
        assert!(default.is_empty());
        assert_eq!(default.num_rows(), 0);
        // A zero-dim matrix accepts any dense vector.
        let csr2 = CsrMatrix::from_vectors(&[SparseVector::new()]);
        assert_eq!(csr2.num_rows(), 1);
        assert_eq!(csr2.row_dot_dense(0, &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "dense vector too short")]
    fn short_dense_vector_panics() {
        let csr = CsrMatrix::from_vectors(&rows());
        csr.row_dot_dense(0, &[0.0; 4]);
    }
}
