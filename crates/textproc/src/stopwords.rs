//! Stop-word and sensitive-word filtering.
//!
//! The paper removes both generic stop words ("that contain little recognition
//! value (e.g., a, for, and, not, etc)") and *user-specified sensitive words*
//! from all documents before any information is shared with other peers.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Default English stop-word list (a compact, standard IR list).
pub const DEFAULT_STOP_WORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "am",
    "an",
    "and",
    "any",
    "are",
    "aren",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "could",
    "couldn",
    "did",
    "didn",
    "do",
    "does",
    "doesn",
    "doing",
    "don",
    "dont",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "hadn",
    "has",
    "hasn",
    "have",
    "haven",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "isn",
    "it",
    "its",
    "itself",
    "just",
    "me",
    "more",
    "most",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "ought",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "same",
    "she",
    "should",
    "shouldn",
    "so",
    "some",
    "such",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "wasn",
    "we",
    "were",
    "weren",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "won",
    "would",
    "wouldn",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

/// Filters out stop words and user-specified sensitive words.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StopWordFilter {
    stop_words: HashSet<String>,
    sensitive_words: HashSet<String>,
}

impl Default for StopWordFilter {
    fn default() -> Self {
        Self::english()
    }
}

impl StopWordFilter {
    /// Creates a filter with the default English stop-word list and no
    /// sensitive words.
    pub fn english() -> Self {
        Self {
            stop_words: DEFAULT_STOP_WORDS.iter().map(|s| s.to_string()).collect(),
            sensitive_words: HashSet::new(),
        }
    }

    /// Creates a filter with no stop words at all (useful for tests).
    pub fn empty() -> Self {
        Self {
            stop_words: HashSet::new(),
            sensitive_words: HashSet::new(),
        }
    }

    /// Creates a filter from a custom stop-word list.
    pub fn from_words<I, S>(words: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            stop_words: words.into_iter().map(Into::into).collect(),
            sensitive_words: HashSet::new(),
        }
    }

    /// Adds an extra stop word.
    pub fn add_stop_word(&mut self, word: impl Into<String>) {
        self.stop_words.insert(word.into().to_lowercase());
    }

    /// Registers a user-specified sensitive word; sensitive words are removed
    /// from documents before any vector is built, so they never leave the peer.
    pub fn add_sensitive_word(&mut self, word: impl Into<String>) {
        self.sensitive_words.insert(word.into().to_lowercase());
    }

    /// Registers many sensitive words at once.
    pub fn add_sensitive_words<I, S>(&mut self, words: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        for w in words {
            self.add_sensitive_word(w);
        }
    }

    /// Number of configured stop words.
    pub fn stop_word_count(&self) -> usize {
        self.stop_words.len()
    }

    /// Number of configured sensitive words.
    pub fn sensitive_word_count(&self) -> usize {
        self.sensitive_words.len()
    }

    /// Returns `true` if `word` should be removed.
    pub fn is_filtered(&self, word: &str) -> bool {
        self.stop_words.contains(word) || self.sensitive_words.contains(word)
    }

    /// Retains only the tokens that pass the filter.
    pub fn filter(&self, tokens: Vec<String>) -> Vec<String> {
        tokens
            .into_iter()
            .filter(|t| !self.is_filtered(t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_list_filters_common_words() {
        let f = StopWordFilter::english();
        assert!(f.is_filtered("the"));
        assert!(f.is_filtered("and"));
        assert!(f.is_filtered("not"));
        assert!(!f.is_filtered("peer"));
    }

    #[test]
    fn sensitive_words_are_filtered() {
        let mut f = StopWordFilter::english();
        f.add_sensitive_word("Confidential");
        assert!(f.is_filtered("confidential"));
        assert!(!f.is_filtered("public"));
    }

    #[test]
    fn filter_removes_tokens() {
        let mut f = StopWordFilter::english();
        f.add_sensitive_words(["salary"]);
        let toks = vec![
            "the".to_string(),
            "salary".to_string(),
            "report".to_string(),
        ];
        assert_eq!(f.filter(toks), vec!["report".to_string()]);
    }

    #[test]
    fn empty_filter_keeps_everything() {
        let f = StopWordFilter::empty();
        assert!(!f.is_filtered("the"));
    }

    #[test]
    fn custom_list() {
        let f = StopWordFilter::from_words(["foo", "bar"]);
        assert!(f.is_filtered("foo"));
        assert!(!f.is_filtered("the"));
        assert_eq!(f.stop_word_count(), 2);
    }
}
