//! Word tokenization.
//!
//! The tokenizer splits raw text into lower-cased word tokens, mirroring the
//! information-retrieval-style preprocessing described in §2 of the paper.

use serde::{Deserialize, Serialize};

/// Configuration and implementation of the word tokenizer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tokenizer {
    /// Convert tokens to lower case (default `true`).
    pub lowercase: bool,
    /// Minimum token length in characters; shorter tokens are dropped (default 2).
    pub min_len: usize,
    /// Maximum token length in characters; longer tokens are dropped (default 40).
    pub max_len: usize,
    /// Keep tokens that contain digits (default `false`, i.e. purely numeric or
    /// alphanumeric tokens such as `42` or `x86` are dropped).
    pub keep_numeric: bool,
}

impl Default for Tokenizer {
    fn default() -> Self {
        Self {
            lowercase: true,
            min_len: 2,
            max_len: 40,
            keep_numeric: false,
        }
    }
}

impl Tokenizer {
    /// Creates a tokenizer with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Splits `text` into tokens according to the configuration.
    ///
    /// Tokens are maximal runs of alphanumeric characters (plus `'` which is
    /// stripped, so that "don't" becomes "dont").
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        let mut tokens = Vec::new();
        let mut current = String::new();
        for ch in text.chars() {
            if ch.is_alphanumeric() {
                if self.lowercase {
                    current.extend(ch.to_lowercase());
                } else {
                    current.push(ch);
                }
            } else if ch == '\'' {
                // apostrophes are dropped but do not break the token: don't -> dont
            } else if !current.is_empty() {
                self.push_token(&mut tokens, std::mem::take(&mut current));
            }
        }
        if !current.is_empty() {
            self.push_token(&mut tokens, current);
        }
        tokens
    }

    fn push_token(&self, tokens: &mut Vec<String>, token: String) {
        let char_len = token.chars().count();
        if char_len < self.min_len || char_len > self.max_len {
            return;
        }
        if !self.keep_numeric && token.chars().any(|c| c.is_ascii_digit()) {
            return;
        }
        tokens.push(token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_non_alphanumeric() {
        let t = Tokenizer::new();
        assert_eq!(
            t.tokenize("Peer-to-peer networks, share resources!"),
            vec!["peer", "to", "peer", "networks", "share", "resources"]
        );
    }

    #[test]
    fn lowercases_and_strips_apostrophes() {
        let t = Tokenizer::new();
        assert_eq!(t.tokenize("Don't STOP"), vec!["dont", "stop"]);
    }

    #[test]
    fn drops_short_and_numeric_tokens() {
        let t = Tokenizer::new();
        assert_eq!(t.tokenize("a I x86 42 ok"), vec!["ok"]);
    }

    #[test]
    fn keep_numeric_option() {
        let t = Tokenizer {
            keep_numeric: true,
            ..Tokenizer::default()
        };
        assert_eq!(t.tokenize("ipv6 42"), vec!["ipv6", "42"]);
    }

    #[test]
    fn respects_max_len() {
        let t = Tokenizer {
            max_len: 5,
            ..Tokenizer::default()
        };
        assert_eq!(t.tokenize("short verylongword"), vec!["short"]);
    }

    #[test]
    fn empty_input() {
        let t = Tokenizer::new();
        assert!(t.tokenize("").is_empty());
        assert!(t.tokenize("   ,,, !!").is_empty());
    }

    #[test]
    fn unicode_tokens() {
        let t = Tokenizer::new();
        assert_eq!(t.tokenize("Müller straße"), vec!["müller", "straße"]);
    }
}
