//! The Porter stemming algorithm.
//!
//! P2PDocTagger normalizes words "using the porter stemming algorithm to remove
//! the commoner morphological and inflexional endings (English)" (§2). This is a
//! faithful port of M. F. Porter's original 1980 algorithm (the classic ANSI C
//! reference implementation), operating on lower-case ASCII words. Words
//! containing non-ASCII-alphabetic characters are returned unchanged.

use serde::{Deserialize, Serialize};

/// Stateless Porter stemmer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PorterStemmer;

impl PorterStemmer {
    /// Creates a new stemmer.
    pub fn new() -> Self {
        Self
    }

    /// Stems a single lower-case word.
    ///
    /// Words shorter than three characters, or containing characters outside
    /// `a..=z`, are returned unchanged (the algorithm is defined for English
    /// ASCII words only).
    pub fn stem(&self, word: &str) -> String {
        if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
            return word.to_string();
        }
        let mut s = Stem {
            b: word.as_bytes().to_vec(),
            k: word.len() - 1,
            j: 0,
        };
        s.step1ab();
        s.step1c();
        s.step2();
        s.step3();
        s.step4();
        s.step5();
        String::from_utf8(s.b[..=s.k].to_vec()).expect("stemmer output is ASCII")
    }

    /// Stems every token in place.
    pub fn stem_all(&self, tokens: &mut [String]) {
        for t in tokens.iter_mut() {
            *t = self.stem(t);
        }
    }
}

struct Stem {
    b: Vec<u8>,
    /// Index of the last character of the current word.
    k: usize,
    /// General offset used by the `ends`/`setto` machinery.
    j: usize,
}

impl Stem {
    /// Is the character at position `i` a consonant?
    fn cons(&self, i: usize) -> bool {
        match self.b[i] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => {
                if i == 0 {
                    true
                } else {
                    !self.cons(i - 1)
                }
            }
            _ => true,
        }
    }

    /// Measures the number of consonant sequences between 0 and `j`.
    fn m(&self) -> usize {
        let mut n = 0;
        let mut i = 0;
        loop {
            if i > self.j {
                return n;
            }
            if !self.cons(i) {
                break;
            }
            i += 1;
        }
        i += 1;
        loop {
            loop {
                if i > self.j {
                    return n;
                }
                if self.cons(i) {
                    break;
                }
                i += 1;
            }
            i += 1;
            n += 1;
            loop {
                if i > self.j {
                    return n;
                }
                if !self.cons(i) {
                    break;
                }
                i += 1;
            }
            i += 1;
        }
    }

    /// True when 0..=j contains a vowel.
    fn vowel_in_stem(&self) -> bool {
        (0..=self.j).any(|i| !self.cons(i))
    }

    /// True when `j-1`, `j` contain a double consonant.
    fn doublec(&self, j: usize) -> bool {
        if j < 1 {
            return false;
        }
        if self.b[j] != self.b[j - 1] {
            return false;
        }
        self.cons(j)
    }

    /// True when `i-2`, `i-1`, `i` is consonant-vowel-consonant and the second
    /// consonant is not w, x or y.
    fn cvc(&self, i: usize) -> bool {
        if i < 2 || !self.cons(i) || self.cons(i - 1) || !self.cons(i - 2) {
            return false;
        }
        !matches!(self.b[i], b'w' | b'x' | b'y')
    }

    /// True when the word ends with `s`; sets `j` to the end of the stem.
    fn ends(&mut self, s: &[u8]) -> bool {
        let len = s.len();
        // The suffix must leave at least one character of stem so that `j`
        // (an unsigned index) stays valid; whole-word "suffixes" never match.
        if len > self.k {
            return false;
        }
        if &self.b[self.k + 1 - len..=self.k] != s {
            return false;
        }
        self.j = self.k - len;
        true
    }

    /// Replaces `b[j+1..=k]` with `s`, readjusting `k`.
    fn setto(&mut self, s: &[u8]) {
        self.b.truncate(self.j + 1);
        self.b.extend_from_slice(s);
        self.k = self.j + s.len();
    }

    /// `setto(s)` when `m() > 0`.
    fn r(&mut self, s: &[u8]) {
        if self.m() > 0 {
            self.setto(s);
        }
    }

    /// Removes plurals and -ed / -ing endings.
    fn step1ab(&mut self) {
        if self.b[self.k] == b's' {
            if self.ends(b"sses") {
                self.k -= 2;
            } else if self.ends(b"ies") {
                self.setto(b"i");
            } else if self.b[self.k - 1] != b's' {
                self.k -= 1;
            }
        }
        if self.ends(b"eed") {
            if self.m() > 0 {
                self.k -= 1;
            }
        } else if (self.ends(b"ed") || self.ends(b"ing")) && self.vowel_in_stem() {
            self.k = self.j;
            if self.ends(b"at") {
                self.setto(b"ate");
            } else if self.ends(b"bl") {
                self.setto(b"ble");
            } else if self.ends(b"iz") {
                self.setto(b"ize");
            } else if self.doublec(self.k) {
                self.k -= 1;
                if matches!(self.b[self.k], b'l' | b's' | b'z') {
                    self.k += 1;
                }
            } else if self.m() == 1 && self.cvc(self.k) {
                self.setto(b"e");
            }
        }
    }

    /// Turns terminal y into i when there is another vowel in the stem.
    fn step1c(&mut self) {
        if self.ends(b"y") && self.vowel_in_stem() {
            self.b[self.k] = b'i';
        }
    }

    /// Maps double suffices to single ones (e.g. -ization -> -ize) when m() > 0.
    // The single-branch match arms mirror the layout of Porter's reference
    // implementation (switch on the penultimate letter); match guards can't
    // replace them because `ends` needs `&mut self`.
    #[allow(clippy::collapsible_match)]
    fn step2(&mut self) {
        if self.k == 0 {
            return;
        }
        match self.b[self.k - 1] {
            b'a' => {
                if self.ends(b"ational") {
                    self.r(b"ate");
                } else if self.ends(b"tional") {
                    self.r(b"tion");
                }
            }
            b'c' => {
                if self.ends(b"enci") {
                    self.r(b"ence");
                } else if self.ends(b"anci") {
                    self.r(b"ance");
                }
            }
            b'e' => {
                if self.ends(b"izer") {
                    self.r(b"ize");
                }
            }
            b'l' => {
                if self.ends(b"bli") {
                    self.r(b"ble");
                } else if self.ends(b"alli") {
                    self.r(b"al");
                } else if self.ends(b"entli") {
                    self.r(b"ent");
                } else if self.ends(b"eli") {
                    self.r(b"e");
                } else if self.ends(b"ousli") {
                    self.r(b"ous");
                }
            }
            b'o' => {
                if self.ends(b"ization") {
                    self.r(b"ize");
                } else if self.ends(b"ation") || self.ends(b"ator") {
                    self.r(b"ate");
                }
            }
            b's' => {
                if self.ends(b"alism") {
                    self.r(b"al");
                } else if self.ends(b"iveness") {
                    self.r(b"ive");
                } else if self.ends(b"fulness") {
                    self.r(b"ful");
                } else if self.ends(b"ousness") {
                    self.r(b"ous");
                }
            }
            b't' => {
                if self.ends(b"aliti") {
                    self.r(b"al");
                } else if self.ends(b"iviti") {
                    self.r(b"ive");
                } else if self.ends(b"biliti") {
                    self.r(b"ble");
                }
            }
            b'g' => {
                if self.ends(b"logi") {
                    self.r(b"log");
                }
            }
            _ => {}
        }
    }

    /// Deals with -ic-, -full, -ness etc., similarly to step2.
    #[allow(clippy::collapsible_match)]
    fn step3(&mut self) {
        match self.b[self.k] {
            b'e' => {
                if self.ends(b"icate") {
                    self.r(b"ic");
                } else if self.ends(b"ative") {
                    self.r(b"");
                } else if self.ends(b"alize") {
                    self.r(b"al");
                }
            }
            b'i' => {
                if self.ends(b"iciti") {
                    self.r(b"ic");
                }
            }
            b'l' => {
                if self.ends(b"ical") {
                    self.r(b"ic");
                } else if self.ends(b"ful") {
                    self.r(b"");
                }
            }
            b's' => {
                if self.ends(b"ness") {
                    self.r(b"");
                }
            }
            _ => {}
        }
    }

    /// Takes off -ant, -ence etc., in context <c>vcvc<v>.
    fn step4(&mut self) {
        if self.k == 0 {
            return;
        }
        let matched = match self.b[self.k - 1] {
            b'a' => self.ends(b"al"),
            b'c' => self.ends(b"ance") || self.ends(b"ence"),
            b'e' => self.ends(b"er"),
            b'i' => self.ends(b"ic"),
            b'l' => self.ends(b"able") || self.ends(b"ible"),
            b'n' => {
                self.ends(b"ant") || self.ends(b"ement") || self.ends(b"ment") || self.ends(b"ent")
            }
            b'o' => {
                (self.ends(b"ion") && self.j > 0 && matches!(self.b[self.j], b's' | b't'))
                    || self.ends(b"ou")
            }
            b's' => self.ends(b"ism"),
            b't' => self.ends(b"ate") || self.ends(b"iti"),
            b'u' => self.ends(b"ous"),
            b'v' => self.ends(b"ive"),
            b'z' => self.ends(b"ize"),
            _ => false,
        };
        if matched && self.m() > 1 {
            self.k = self.j;
        }
    }

    /// Removes a final -e if m() > 1, and changes -ll to -l if m() > 1.
    fn step5(&mut self) {
        self.j = self.k;
        if self.b[self.k] == b'e' {
            let a = self.m();
            if a > 1 || (a == 1 && !self.cvc(self.k - 1)) {
                self.k -= 1;
            }
        }
        if self.b[self.k] == b'l' && self.doublec(self.k) && self.m() > 1 {
            self.k -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stem(w: &str) -> String {
        PorterStemmer::new().stem(w)
    }

    #[test]
    fn classic_examples() {
        assert_eq!(stem("caresses"), "caress");
        assert_eq!(stem("ponies"), "poni");
        assert_eq!(stem("ties"), "ti");
        assert_eq!(stem("caress"), "caress");
        assert_eq!(stem("cats"), "cat");
        assert_eq!(stem("feed"), "feed");
        assert_eq!(stem("agreed"), "agre");
        assert_eq!(stem("plastered"), "plaster");
        assert_eq!(stem("bled"), "bled");
        assert_eq!(stem("motoring"), "motor");
        assert_eq!(stem("sing"), "sing");
    }

    #[test]
    fn derivational_suffixes() {
        assert_eq!(stem("relational"), "relat");
        assert_eq!(stem("conditional"), "condit");
        assert_eq!(stem("rational"), "ration");
        assert_eq!(stem("valenci"), "valenc");
        assert_eq!(stem("hesitanci"), "hesit");
        assert_eq!(stem("digitizer"), "digit");
        assert_eq!(stem("conformabli"), "conform");
        assert_eq!(stem("radicalli"), "radic");
        assert_eq!(stem("differentli"), "differ");
        assert_eq!(stem("vileli"), "vile");
        assert_eq!(stem("analogousli"), "analog");
        assert_eq!(stem("vietnamization"), "vietnam");
        assert_eq!(stem("predication"), "predic");
        assert_eq!(stem("operator"), "oper");
        assert_eq!(stem("feudalism"), "feudal");
        assert_eq!(stem("decisiveness"), "decis");
        assert_eq!(stem("hopefulness"), "hope");
        assert_eq!(stem("callousness"), "callous");
        assert_eq!(stem("formaliti"), "formal");
        assert_eq!(stem("sensitiviti"), "sensit");
        assert_eq!(stem("sensibiliti"), "sensibl");
    }

    #[test]
    fn step3_and_4_examples() {
        assert_eq!(stem("triplicate"), "triplic");
        assert_eq!(stem("formative"), "form");
        assert_eq!(stem("formalize"), "formal");
        assert_eq!(stem("electriciti"), "electr");
        assert_eq!(stem("electrical"), "electr");
        assert_eq!(stem("hopeful"), "hope");
        assert_eq!(stem("goodness"), "good");
        assert_eq!(stem("revival"), "reviv");
        assert_eq!(stem("allowance"), "allow");
        assert_eq!(stem("inference"), "infer");
        assert_eq!(stem("airliner"), "airlin");
        assert_eq!(stem("gyroscopic"), "gyroscop");
        assert_eq!(stem("adjustable"), "adjust");
        assert_eq!(stem("defensible"), "defens");
        assert_eq!(stem("irritant"), "irrit");
        assert_eq!(stem("replacement"), "replac");
        assert_eq!(stem("adjustment"), "adjust");
        assert_eq!(stem("dependent"), "depend");
        assert_eq!(stem("adoption"), "adopt");
        assert_eq!(stem("homologou"), "homolog");
        assert_eq!(stem("communism"), "commun");
        assert_eq!(stem("activate"), "activ");
        assert_eq!(stem("angulariti"), "angular");
        assert_eq!(stem("homologous"), "homolog");
        assert_eq!(stem("effective"), "effect");
        assert_eq!(stem("bowdlerize"), "bowdler");
    }

    #[test]
    fn step5_examples() {
        assert_eq!(stem("probate"), "probat");
        assert_eq!(stem("rate"), "rate");
        assert_eq!(stem("cease"), "ceas");
        assert_eq!(stem("controll"), "control");
        assert_eq!(stem("roll"), "roll");
    }

    #[test]
    fn domain_words() {
        assert_eq!(stem("classification"), "classif");
        assert_eq!(stem("tagging"), "tag");
        assert_eq!(stem("documents"), "document");
        assert_eq!(stem("networks"), "network");
        assert_eq!(stem("distributed"), "distribut");
        assert_eq!(stem("collaborative"), "collabor");
    }

    #[test]
    fn short_and_non_ascii_unchanged() {
        assert_eq!(stem("go"), "go");
        assert_eq!(stem("a"), "a");
        assert_eq!(stem("straße"), "straße");
        assert_eq!(stem("naïve"), "naïve");
    }

    #[test]
    fn stem_all_in_place() {
        let mut tokens = vec!["running".to_string(), "dogs".to_string()];
        PorterStemmer::new().stem_all(&mut tokens);
        assert_eq!(tokens, vec!["run".to_string(), "dog".to_string()]);
    }

    #[test]
    fn idempotent_on_common_words() {
        let stemmer = PorterStemmer::new();
        for w in [
            "running",
            "classification",
            "documents",
            "relational",
            "tagging",
        ] {
            let once = stemmer.stem(w);
            let twice = stemmer.stem(&once);
            // Porter is not idempotent in general, but for these words it is;
            // this guards against gross regressions in the implementation.
            assert_eq!(once, twice, "word {w}");
        }
    }
}
