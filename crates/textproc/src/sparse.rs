//! Sparse feature vectors.
//!
//! A document `d` is represented by a vector `{w_1, …, w_m}` where `w_j` is the
//! weight of the word with id `j` and `m` is the size of the lexicon (§2 of the
//! paper). Since `m` is typically tens of thousands while a single document only
//! contains a few hundred distinct words, vectors are stored sparsely as sorted
//! `(index, value)` pairs.
//!
//! # Shared storage
//!
//! The parallel index/value arrays live behind [`Arc`]s, so **cloning a
//! `SparseVector` is two reference-count bumps**, never a copy of the
//! underlying entries. The same document vector is held simultaneously by a
//! peer's local dataset, kernel support-vector sets, cascade pools, k-means
//! seeds and LSH index keys; with shared backing all of these point at one
//! allocation. Mutating methods ([`SparseVector::set`],
//! [`SparseVector::scale`], the normalizers) copy-on-write: they only clone
//! the storage when it is actually shared.

use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};

/// The shared index/value backing arrays of a [`SparseVector`].
type SharedBacking = (Arc<Vec<u32>>, Arc<Vec<f64>>);

/// The shared backing of the canonical empty vector, so `SparseVector::new()`
/// stays allocation-free despite the `Arc` indirection.
fn empty_backing() -> SharedBacking {
    static EMPTY: OnceLock<SharedBacking> = OnceLock::new();
    let (i, v) = EMPTY.get_or_init(|| (Arc::new(Vec::new()), Arc::new(Vec::new())));
    (Arc::clone(i), Arc::clone(v))
}

/// A sparse vector stored as parallel, index-sorted arrays behind shared
/// (`Arc`) storage — see the module docs for the sharing contract.
///
/// Invariants maintained by all constructors:
/// * indices are strictly increasing (no duplicates),
/// * no stored value is exactly `0.0`,
/// * `indices.len() == values.len()`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseVector {
    indices: Arc<Vec<u32>>,
    values: Arc<Vec<f64>>,
}

impl Default for SparseVector {
    fn default() -> Self {
        let (indices, values) = empty_backing();
        Self { indices, values }
    }
}

impl SparseVector {
    /// Creates an empty vector (the zero vector).
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps freshly built parallel arrays in shared storage.
    fn from_parts(indices: Vec<u32>, values: Vec<f64>) -> Self {
        Self {
            indices: Arc::new(indices),
            values: Arc::new(values),
        }
    }

    /// Whether this vector shares its backing storage with another clone —
    /// diagnostics for the shared-storage contract (two clones of one vector
    /// report `true` until one of them is mutated).
    pub fn shares_storage_with(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.indices, &other.indices) && Arc::ptr_eq(&self.values, &other.values)
    }

    /// Creates a vector from unsorted `(index, value)` pairs.
    ///
    /// Duplicate indices are summed; zero-valued entries are dropped.
    pub fn from_pairs<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (u32, f64)>,
    {
        let mut pairs: Vec<(u32, f64)> = pairs.into_iter().collect();
        pairs.sort_unstable_by_key(|&(i, _)| i);
        let mut indices = Vec::with_capacity(pairs.len());
        let mut values = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            if let Some(&last) = indices.last() {
                if last == i {
                    *values.last_mut().expect("values parallel to indices") += v;
                    continue;
                }
            }
            indices.push(i);
            values.push(v);
        }
        Self::pruned(indices, values)
    }

    /// Creates a vector from `(index, value)` pairs that are **already in
    /// strictly increasing index order**, skipping the sort-and-merge pass of
    /// [`Self::from_pairs`]. Zero-valued entries are dropped. This is the
    /// construction path for producers whose enumeration is naturally sorted
    /// (dense slices, `BTreeMap` iterations, CSR rows).
    ///
    /// # Panics
    /// Debug builds panic when the indices are not strictly increasing.
    pub fn from_sorted_pairs<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (u32, f64)>,
    {
        let pairs = pairs.into_iter();
        let (lower, _) = pairs.size_hint();
        let mut indices = Vec::with_capacity(lower);
        let mut values = Vec::with_capacity(lower);
        for (i, v) in pairs {
            if let Some(&last) = indices.last() {
                debug_assert!(
                    last < i,
                    "indices must be strictly increasing: {last} >= {i}"
                );
            }
            if v != 0.0 {
                indices.push(i);
                values.push(v);
            }
        }
        Self::from_parts(indices, values)
    }

    /// Creates a vector from a dense slice, skipping zero entries. Dense
    /// enumeration is already index-sorted, so this uses the direct
    /// [`Self::from_sorted_pairs`] path (no sort).
    pub fn from_dense(dense: &[f64]) -> Self {
        Self::from_sorted_pairs(dense.iter().enumerate().map(|(i, &v)| (i as u32, v)))
    }

    /// Converts to a dense vector of length `dim`.
    ///
    /// Entries with index `>= dim` are ignored.
    pub fn to_dense(&self, dim: usize) -> Vec<f64> {
        let mut out = vec![0.0; dim];
        for (&i, &v) in self.indices.iter().zip(self.values.iter()) {
            if (i as usize) < dim {
                out[i as usize] = v;
            }
        }
        out
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Returns `true` when the vector has no non-zero entries.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Largest stored index plus one, or 0 for an empty vector.
    pub fn dim_lower_bound(&self) -> usize {
        self.indices.last().map_or(0, |&i| i as usize + 1)
    }

    /// Returns the value stored at `index` (0.0 if absent).
    pub fn get(&self, index: u32) -> f64 {
        match self.indices.binary_search(&index) {
            Ok(pos) => self.values[pos],
            Err(_) => 0.0,
        }
    }

    /// Sets the value at `index`, inserting, overwriting, or removing as
    /// needed (copy-on-write when the storage is shared).
    pub fn set(&mut self, index: u32, value: f64) {
        match self.indices.binary_search(&index) {
            Ok(pos) => {
                if value == 0.0 {
                    Arc::make_mut(&mut self.indices).remove(pos);
                    Arc::make_mut(&mut self.values).remove(pos);
                } else {
                    Arc::make_mut(&mut self.values)[pos] = value;
                }
            }
            Err(pos) => {
                if value != 0.0 {
                    Arc::make_mut(&mut self.indices).insert(pos, index);
                    Arc::make_mut(&mut self.values).insert(pos, value);
                }
            }
        }
    }

    /// Iterates over `(index, value)` pairs in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.indices
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// Stored indices (sorted, strictly increasing).
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Stored values, parallel to [`Self::indices`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Dot product with another sparse vector.
    pub fn dot(&self, other: &Self) -> f64 {
        // Merge-join over the two sorted index lists.
        let mut sum = 0.0;
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.indices.len() && b < other.indices.len() {
            match self.indices[a].cmp(&other.indices[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    sum += self.values[a] * other.values[b];
                    a += 1;
                    b += 1;
                }
            }
        }
        sum
    }

    /// Dot product with a dense weight vector (entries beyond `dense.len()` are ignored).
    pub fn dot_dense(&self, dense: &[f64]) -> f64 {
        let mut sum = 0.0;
        for (&i, &v) in self.indices.iter().zip(self.values.iter()) {
            if let Some(w) = dense.get(i as usize) {
                sum += w * v;
            }
        }
        sum
    }

    /// Squared Euclidean norm.
    pub fn norm_sq(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Sum of all stored values.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Squared Euclidean distance to another sparse vector.
    pub fn distance_sq(&self, other: &Self) -> f64 {
        self.norm_sq() + other.norm_sq() - 2.0 * self.dot(other)
    }

    /// Euclidean distance to another sparse vector.
    pub fn distance(&self, other: &Self) -> f64 {
        self.distance_sq(other).max(0.0).sqrt()
    }

    /// Cosine similarity with another vector; 0.0 if either vector is zero.
    pub fn cosine(&self, other: &Self) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            0.0
        } else {
            self.dot(other) / denom
        }
    }

    /// Multiplies every entry by `factor` in place (copy-on-write when the
    /// storage is shared).
    pub fn scale(&mut self, factor: f64) {
        if factor == 0.0 {
            let (indices, values) = empty_backing();
            self.indices = indices;
            self.values = values;
            return;
        }
        for v in Arc::make_mut(&mut self.values) {
            *v *= factor;
        }
    }

    /// Returns `self + factor * other` as a new vector.
    pub fn add_scaled(&self, other: &Self, factor: f64) -> Self {
        let mut out_idx = Vec::with_capacity(self.nnz() + other.nnz());
        let mut out_val = Vec::with_capacity(self.nnz() + other.nnz());
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.indices.len() || b < other.indices.len() {
            let take_a = b >= other.indices.len()
                || (a < self.indices.len() && self.indices[a] < other.indices[b]);
            let take_b = a >= self.indices.len()
                || (b < other.indices.len() && other.indices[b] < self.indices[a]);
            if take_a {
                out_idx.push(self.indices[a]);
                out_val.push(self.values[a]);
                a += 1;
            } else if take_b {
                out_idx.push(other.indices[b]);
                out_val.push(factor * other.values[b]);
                b += 1;
            } else {
                out_idx.push(self.indices[a]);
                out_val.push(self.values[a] + factor * other.values[b]);
                a += 1;
                b += 1;
            }
        }
        Self::pruned(out_idx, out_val)
    }

    /// Returns `self + other`.
    pub fn add(&self, other: &Self) -> Self {
        self.add_scaled(other, 1.0)
    }

    /// Returns `self - other`.
    pub fn sub(&self, other: &Self) -> Self {
        self.add_scaled(other, -1.0)
    }

    /// Normalizes the vector to unit Euclidean length (no-op on the zero vector).
    pub fn l2_normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            self.scale(1.0 / n);
        }
    }

    /// Normalizes the vector so its entries sum to one (no-op if the sum is zero).
    pub fn l1_normalize(&mut self) {
        let s: f64 = self.values.iter().map(|v| v.abs()).sum();
        if s > 0.0 {
            self.scale(1.0 / s);
        }
    }

    /// Approximate number of bytes required to transmit this vector over the
    /// network (index + value per entry). Used by the communication-cost
    /// accounting of the P2P protocols.
    pub fn wire_size(&self) -> usize {
        self.nnz() * (std::mem::size_of::<u32>() + std::mem::size_of::<f64>())
            + std::mem::size_of::<u32>()
    }

    /// Wraps parallel arrays in shared storage, dropping exactly-zero entries.
    fn pruned(mut indices: Vec<u32>, mut values: Vec<f64>) -> Self {
        if values.contains(&0.0) {
            let mut keep = 0usize;
            for k in 0..values.len() {
                if values[k] != 0.0 {
                    indices[keep] = indices[k];
                    values[keep] = values[k];
                    keep += 1;
                }
            }
            indices.truncate(keep);
            values.truncate(keep);
        }
        Self::from_parts(indices, values)
    }
}

impl FromIterator<(u32, f64)> for SparseVector {
    fn from_iter<T: IntoIterator<Item = (u32, f64)>>(iter: T) -> Self {
        Self::from_pairs(iter)
    }
}

/// Computes the (dense) mean of a set of sparse vectors.
///
/// Returns the zero vector when `vectors` is empty.
pub fn mean(vectors: &[SparseVector]) -> SparseVector {
    mean_iter(vectors)
}

/// [`mean`] over borrowed vectors from any iterator — the clone-free form the
/// k-means update step uses (members are accumulated straight off the point
/// slice instead of being copied into a scratch `Vec` first). Accumulation
/// order is the iterator order, so for the same sequence of vectors the
/// result is bit-identical to [`mean`].
pub fn mean_iter<'a, I>(vectors: I) -> SparseVector
where
    I: IntoIterator<Item = &'a SparseVector>,
{
    let mut acc = SparseVector::new();
    let mut n = 0usize;
    for v in vectors {
        acc = acc.add(v);
        n += 1;
    }
    if n > 0 {
        acc.scale(1.0 / n as f64);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_sorts_and_merges_duplicates() {
        let v = SparseVector::from_pairs([(5, 1.0), (2, 2.0), (5, 3.0), (9, 0.0)]);
        assert_eq!(v.indices(), &[2, 5]);
        assert_eq!(v.values(), &[2.0, 4.0]);
    }

    #[test]
    fn get_and_set_roundtrip() {
        let mut v = SparseVector::new();
        v.set(10, 2.5);
        v.set(3, 1.0);
        assert_eq!(v.get(10), 2.5);
        assert_eq!(v.get(3), 1.0);
        assert_eq!(v.get(7), 0.0);
        v.set(10, 0.0);
        assert_eq!(v.get(10), 0.0);
        assert_eq!(v.nnz(), 1);
    }

    #[test]
    fn dot_product_matches_dense() {
        let a = SparseVector::from_pairs([(0, 1.0), (2, 3.0), (7, -1.0)]);
        let b = SparseVector::from_pairs([(2, 2.0), (3, 5.0), (7, 4.0)]);
        assert!((a.dot(&b) - (3.0 * 2.0 - 1.0 * 4.0)).abs() < 1e-12);
        let da = a.to_dense(8);
        assert!((a.dot_dense(&da) - a.norm_sq()).abs() < 1e-12);
    }

    #[test]
    fn add_scaled_and_sub() {
        let a = SparseVector::from_pairs([(1, 1.0), (4, 2.0)]);
        let b = SparseVector::from_pairs([(1, 1.0), (3, 3.0)]);
        let c = a.add_scaled(&b, -1.0);
        assert_eq!(c.get(1), 0.0);
        assert_eq!(c.get(3), -3.0);
        assert_eq!(c.get(4), 2.0);
        // Entries cancelled to zero are not stored.
        assert_eq!(c.nnz(), 2);
        assert_eq!(a.sub(&b), c);
    }

    #[test]
    fn normalization() {
        let mut v = SparseVector::from_pairs([(0, 3.0), (1, 4.0)]);
        v.l2_normalize();
        assert!((v.norm() - 1.0).abs() < 1e-12);
        let mut u = SparseVector::from_pairs([(0, 3.0), (1, 1.0)]);
        u.l1_normalize();
        assert!((u.sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_and_distance() {
        let a = SparseVector::from_pairs([(0, 1.0)]);
        let b = SparseVector::from_pairs([(1, 1.0)]);
        assert_eq!(a.cosine(&b), 0.0);
        assert!((a.distance(&b) - 2f64.sqrt()).abs() < 1e-12);
        assert!((a.cosine(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_of_vectors() {
        let a = SparseVector::from_pairs([(0, 2.0)]);
        let b = SparseVector::from_pairs([(1, 4.0)]);
        let m = mean(&[a, b]);
        assert_eq!(m.get(0), 1.0);
        assert_eq!(m.get(1), 2.0);
        assert!(mean(&[]).is_empty());
    }

    #[test]
    fn mean_iter_is_bit_identical_to_mean() {
        let vs: Vec<SparseVector> = (0..7)
            .map(|i| SparseVector::from_pairs([(i, 1.0 + 0.3 * i as f64), (i + 2, -0.7)]))
            .collect();
        let a = mean(&vs);
        let b = mean_iter(vs.iter());
        assert_eq!(a, b);
        for (x, y) in a.values().iter().zip(b.values()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert!(mean_iter(std::iter::empty()).is_empty());
    }

    #[test]
    fn clones_share_storage_until_mutated() {
        let a = SparseVector::from_pairs([(0, 1.0), (3, 2.0)]);
        let b = a.clone();
        assert!(a.shares_storage_with(&b));
        // Copy-on-write: mutating one clone must not disturb the other.
        let mut c = a.clone();
        c.set(3, 9.0);
        assert!(!c.shares_storage_with(&a));
        assert_eq!(a.get(3), 2.0);
        assert_eq!(c.get(3), 9.0);
        let mut d = a.clone();
        d.scale(2.0);
        assert_eq!(a.get(0), 1.0);
        assert_eq!(d.get(0), 2.0);
        // The empty vector is allocation-shared globally.
        assert!(SparseVector::new().shares_storage_with(&SparseVector::default()));
    }

    #[test]
    fn dense_roundtrip() {
        let dense = [0.0, 1.5, 0.0, -2.0];
        let v = SparseVector::from_dense(&dense);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.to_dense(4), dense.to_vec());
    }

    #[test]
    fn from_sorted_pairs_matches_from_pairs_on_sorted_input() {
        let pairs = [(1u32, 0.5), (4, 0.0), (7, -2.0), (9, 1.0)];
        let direct = SparseVector::from_sorted_pairs(pairs);
        let sorted = SparseVector::from_pairs(pairs);
        assert_eq!(direct, sorted);
        assert_eq!(direct.nnz(), 3);
        assert!(SparseVector::from_sorted_pairs([]).is_empty());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "strictly increasing")]
    fn from_sorted_pairs_rejects_unsorted_input_in_debug() {
        SparseVector::from_sorted_pairs([(5u32, 1.0), (2, 1.0)]);
    }
}
