//! The shared lexicon mapping words to numeric ids.
//!
//! Every peer represents a word by its id ("the attribute id represents the
//! word id", §2). The vocabulary is the only piece of preprocessing state that
//! must be consistent across peers; in the simulator it is built once from the
//! corpus generator (in a deployment it would be agreed upon via a shared
//! dictionary or feature hashing).

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Bidirectional word ↔ id mapping with document-frequency statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    word_to_id: HashMap<String, u32>,
    id_to_word: Vec<String>,
    /// Number of documents each word id appeared in (for IDF weighting).
    doc_freq: Vec<u32>,
    /// Number of documents observed while fitting.
    num_docs: u64,
    /// When `true`, unknown words are no longer added by [`Self::observe_document`].
    frozen: bool,
}

impl Vocabulary {
    /// Creates an empty, unfrozen vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct words (the lexicon size `m`).
    pub fn len(&self) -> usize {
        self.id_to_word.len()
    }

    /// Returns `true` when no word has been added.
    pub fn is_empty(&self) -> bool {
        self.id_to_word.is_empty()
    }

    /// Number of documents observed during fitting.
    pub fn num_docs(&self) -> u64 {
        self.num_docs
    }

    /// Freezes the vocabulary: subsequently observed unknown words are ignored
    /// instead of being assigned new ids.
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// Whether the vocabulary is frozen.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Returns the id of `word`, inserting it if absent and not frozen.
    pub fn get_or_insert(&mut self, word: &str) -> Option<u32> {
        if let Some(&id) = self.word_to_id.get(word) {
            return Some(id);
        }
        if self.frozen {
            return None;
        }
        let id = self.id_to_word.len() as u32;
        self.word_to_id.insert(word.to_string(), id);
        self.id_to_word.push(word.to_string());
        self.doc_freq.push(0);
        Some(id)
    }

    /// Returns the id of `word` if it is known.
    pub fn id_of(&self, word: &str) -> Option<u32> {
        self.word_to_id.get(word).copied()
    }

    /// Returns the word with the given id.
    pub fn word_of(&self, id: u32) -> Option<&str> {
        self.id_to_word.get(id as usize).map(String::as_str)
    }

    /// Document frequency of the word with the given id.
    pub fn doc_freq(&self, id: u32) -> u32 {
        self.doc_freq.get(id as usize).copied().unwrap_or(0)
    }

    /// Smoothed inverse document frequency of a word id:
    /// `ln((1 + N) / (1 + df)) + 1`.
    pub fn idf(&self, id: u32) -> f64 {
        let n = self.num_docs as f64;
        let df = self.doc_freq(id) as f64;
        ((1.0 + n) / (1.0 + df)).ln() + 1.0
    }

    /// Observes one document's tokens: updates ids and document frequencies.
    ///
    /// Returns the per-document term counts keyed by word id, in ascending
    /// id order (a `BTreeMap`, so every consumer iterates deterministically
    /// — hash order must never reach an accumulation).
    pub fn observe_document<'a, I>(&mut self, tokens: I) -> BTreeMap<u32, u32>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
        for tok in tokens {
            if let Some(id) = self.get_or_insert(tok) {
                *counts.entry(id).or_insert(0) += 1;
            }
        }
        for &id in counts.keys() {
            self.doc_freq[id as usize] += 1;
        }
        self.num_docs += 1;
        counts
    }

    /// Converts tokens of an already-fitted document into term counts without
    /// touching document frequencies (used at transform/prediction time).
    /// Counts come back in ascending id order, like
    /// [`Self::observe_document`].
    pub fn count_tokens<'a, I>(&self, tokens: I) -> BTreeMap<u32, u32>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
        for tok in tokens {
            if let Some(id) = self.id_of(tok) {
                *counts.entry(id).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Iterates over `(word, id)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u32)> + '_ {
        self.id_to_word
            .iter()
            .enumerate()
            .map(|(i, w)| (w.as_str(), i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut v = Vocabulary::new();
        assert_eq!(v.get_or_insert("alpha"), Some(0));
        assert_eq!(v.get_or_insert("beta"), Some(1));
        assert_eq!(v.get_or_insert("alpha"), Some(0));
        assert_eq!(v.len(), 2);
        assert_eq!(v.word_of(1), Some("beta"));
        assert_eq!(v.id_of("gamma"), None);
    }

    #[test]
    fn frozen_vocabulary_rejects_new_words() {
        let mut v = Vocabulary::new();
        v.get_or_insert("alpha");
        v.freeze();
        assert!(v.is_frozen());
        assert_eq!(v.get_or_insert("beta"), None);
        assert_eq!(v.get_or_insert("alpha"), Some(0));
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn observe_document_updates_doc_freq() {
        let mut v = Vocabulary::new();
        let c1 = v.observe_document(["cat", "dog", "cat"]);
        let c2 = v.observe_document(["dog", "fish"]);
        assert_eq!(c1[&v.id_of("cat").unwrap()], 2);
        assert_eq!(c2[&v.id_of("fish").unwrap()], 1);
        assert_eq!(v.doc_freq(v.id_of("cat").unwrap()), 1);
        assert_eq!(v.doc_freq(v.id_of("dog").unwrap()), 2);
        assert_eq!(v.num_docs(), 2);
    }

    #[test]
    fn idf_decreases_with_document_frequency() {
        let mut v = Vocabulary::new();
        v.observe_document(["common", "rare"]);
        v.observe_document(["common"]);
        v.observe_document(["common"]);
        let rare = v.idf(v.id_of("rare").unwrap());
        let common = v.idf(v.id_of("common").unwrap());
        assert!(rare > common);
    }

    #[test]
    fn count_tokens_ignores_unknown() {
        let mut v = Vocabulary::new();
        v.observe_document(["known"]);
        v.freeze();
        let counts = v.count_tokens(["known", "unknown", "known"]);
        assert_eq!(counts.len(), 1);
        assert_eq!(counts[&0], 2);
    }
}
