//! CEMPaR — Communication-Efficient classification in P2P networks (cascade
//! SVM over a DHT with super-peers).
//!
//! Protocol phases, following §2 of the P2PDocTagger paper:
//!
//! 1. **Local training** — every peer constructs a non-linear (kernel) SVM per
//!    tag from its local tagged documents.
//! 2. **Model propagation** — the local models (their support vectors) are
//!    propagated *once* to the super-peer of the peer's DHT region. Super-peers
//!    are elected deterministically from the identifier ring, so every peer can
//!    locate its super-peer with a plain DHT lookup.
//! 3. **Cascading** — each super-peer cascades the collected local models into
//!    a *regional* cascaded model (per tag) by pooling support vectors and
//!    retraining.
//! 4. **Prediction** — untagged document vectors are routed to the super-peers,
//!    whose regional models predict; tags are selected by weighted majority
//!    voting over the regional votes (weight = how many peers contributed to
//!    the region).
//! 5. **Refinement** — when a user corrects tags, the peer retrains its local
//!    model and re-propagates it; the super-peer re-cascades.
//!
//! Only support vectors (word-id/weight pairs) ever leave a peer — never raw
//! text — which is the privacy argument the paper makes.

use crate::error::ProtocolError;
use crate::protocol::{
    combine_weighted_scores, P2PTagClassifier, PeerDataMap, ScoringBackend, TrainingBackend,
};
use crate::reliable::{LinkStats, ReliableLink, SendOutcome};
use crate::wire::{self, WireConfig, WireCost};
use ml::batch::BatchKernelScorer;
use ml::cascade::{CascadeConfig, CascadeSvm};
use ml::multilabel::{OneVsAllModel, OneVsAllTrainer, TagPrediction};
use ml::svm::{BinaryClassifier, KernelSvm, KernelSvmTrainer};
use ml::{MultiLabelDataset, MultiLabelExample, TagId};
use p2psim::message::MessageKind;
use p2psim::network::DeliveryError;
use p2psim::overlay::SuperPeerDirectory;
use p2psim::{P2PNetwork, PeerId};
use std::collections::BTreeMap;
use textproc::SparseVector;

/// Configuration of the CEMPaR protocol.
#[derive(Debug, Clone)]
pub struct CemparConfig {
    /// Number of super-peer regions the identifier ring is divided into.
    pub regions: usize,
    /// Trainer for the per-tag local kernel SVMs.
    pub svm: KernelSvmTrainer,
    /// One-vs-all reduction settings.
    pub one_vs_all: OneVsAllTrainer,
    /// Cascade-merge settings used by super-peers.
    pub cascade: CascadeConfig,
    /// Decision threshold for assigning a tag after voting.
    pub vote_threshold: f64,
    /// Relative vote cutoff: a tag must also reach this fraction of the best
    /// tag's score (calibrates ensemble votes; see
    /// [`crate::protocol::select_tags_adaptive`]).
    pub rel_threshold: f64,
    /// Minimum number of tags assigned when nothing reaches the threshold.
    pub min_tags: usize,
    /// Query-time scoring implementation. [`ScoringBackend::Batched`] (the
    /// default) shares kernel-row evaluations across a region's per-tag
    /// cascaded models; [`ScoringBackend::Scalar`] keeps the pre-refactor
    /// per-tag kernel expansions. Both produce identical predictions.
    pub backend: ScoringBackend,
    /// Training-time implementation. [`TrainingBackend::Csr`] computes each
    /// peer's kernel (Gram) matrix once and shares it across every per-tag
    /// SMO fit; [`TrainingBackend::Scalar`] keeps the pre-refactor per-tag
    /// recomputation as the reference. Both produce bit-identical models.
    pub train_backend: TrainingBackend,
    /// Wire accounting. Under [`WireCost::Measured`] (the default) model
    /// propagations, prediction queries and responses are really encoded —
    /// sends charge the frame length, super-peers score the *decoded* query
    /// and requesters vote with the *decoded* response.
    /// [`WireCost::Estimated`] keeps the legacy `wire_size()` reference
    /// accounting.
    pub wire: WireConfig,
}

impl Default for CemparConfig {
    fn default() -> Self {
        // Text classification on TF-IDF vectors is close to linearly separable;
        // a linear kernel with a softer margin fits the small per-peer
        // collections far better than a narrow RBF and keeps the cascade's
        // support-vector sets compact. RBF remains available through `svm`.
        let svm = KernelSvmTrainer {
            kernel: ml::Kernel::Linear,
            c: 10.0,
            ..KernelSvmTrainer::default()
        };
        Self {
            regions: 8,
            cascade: CascadeConfig {
                trainer: svm.clone(),
                retrain: true,
                fan_in: 0,
            },
            svm,
            one_vs_all: OneVsAllTrainer::default(),
            vote_threshold: 0.0,
            rel_threshold: 0.5,
            min_tags: 1,
            backend: ScoringBackend::default(),
            train_backend: TrainingBackend::default(),
            wire: WireConfig::default(),
        }
    }
}

impl CemparConfig {
    /// A configuration whose number of super-peer regions is scaled to the
    /// network size (roughly one region per eight peers, at least two), so
    /// that every regional cascade aggregates the knowledge of several peers.
    pub fn for_network(num_peers: usize) -> Self {
        let regions = (num_peers / 8).clamp(2, 32);
        Self {
            regions,
            ..Self::default()
        }
    }
}

/// Trains a peer's local one-vs-all kernel model — the protocol body shared
/// by the monolithic [`Cempar`] instance and the per-peer sans-io
/// [`crate::sansio::CemparCore`], so a peer's contribution is identical
/// whichever driver runs it.
pub(crate) fn train_cempar_local(
    config: &CemparConfig,
    data: &MultiLabelDataset,
) -> Option<OneVsAllModel<KernelSvm>> {
    if data.is_empty() {
        return None;
    }
    let model = match config.train_backend {
        TrainingBackend::Csr => config.one_vs_all.train_kernel_shared(data, &config.svm),
        TrainingBackend::Scalar => config.one_vs_all.train_kernel(data, &config.svm),
    };
    if model.num_tags() == 0 {
        None
    } else {
        Some(model)
    }
}

/// Cascades a region's contributed local models into the per-tag regional
/// models (support-vector pooling + retrain). Pure, and iteration is in
/// `BTreeMap` order over contributors, so the cascaded result depends only
/// on the *set* of contributed `(peer, model)` pairs — never on their
/// arrival order. That order-independence is what lets the sans-io core
/// reach the same regional models over real sockets (arbitrary delivery
/// interleaving) as the simulator's sequential loop.
pub(crate) fn cascade_region_tags<'a>(
    config: &CemparConfig,
    contributed: impl Iterator<Item = &'a OneVsAllModel<KernelSvm>>,
) -> BTreeMap<TagId, KernelSvm> {
    let cascade = CascadeSvm::new(config.cascade.clone());
    let mut tags: BTreeMap<TagId, Vec<KernelSvm>> = BTreeMap::new();
    for model in contributed {
        for (tag, clf) in model.iter() {
            tags.entry(tag).or_default().push(clf.clone());
        }
    }
    tags.into_iter()
        .filter_map(|(tag, models)| cascade.merge(&models).map(|m| (tag, m)))
        .collect()
}

/// Scores a query against one region's cascaded models — the super-peer's
/// half of CEMPaR prediction, shared by both drivers. The scalar and batched
/// branches produce identical `TagPrediction`s in ascending-tag order.
pub(crate) fn region_scores(
    backend: ScoringBackend,
    regional: &BTreeMap<TagId, KernelSvm>,
    scorer: &BatchKernelScorer,
    x: &SparseVector,
) -> Vec<TagPrediction> {
    match backend {
        // Pre-refactor reference: every tag expands its own kernel
        // sum, re-evaluating K(sv, x) for support vectors shared
        // between tags.
        ScoringBackend::Scalar => regional
            .iter()
            .map(|(&tag, clf)| {
                let score = clf.decision(x);
                TagPrediction {
                    tag,
                    score,
                    confidence: 1.0 / (1.0 + (-score).exp()),
                }
            })
            .collect(),
        // Batched: one kernel row over the region's distinct support
        // vectors, shared by every tag. Decisions (and their
        // ascending-tag order) are identical to the scalar branch.
        ScoringBackend::Batched => scorer
            .decisions(x)
            .into_iter()
            .map(|(tag, score)| TagPrediction {
                tag,
                score,
                confidence: 1.0 / (1.0 + (-score).exp()),
            })
            .collect(),
    }
}

/// State of one super-peer region.
#[derive(Debug, Clone)]
struct RegionState {
    /// The super-peer elected for this region at training time.
    super_peer: PeerId,
    /// Local models contributed by peers of this region.
    contributed: BTreeMap<PeerId, OneVsAllModel<KernelSvm>>,
    /// The cascaded regional model, per tag.
    regional: BTreeMap<TagId, KernelSvm>,
    /// Batched scorer over `regional`: kernel rows are evaluated once per
    /// distinct support vector and shared by every tag that retains it.
    /// Rebuilt whenever the region is re-cascaded.
    scorer: BatchKernelScorer,
}

impl RegionState {
    fn weight(&self) -> f64 {
        self.contributed.len() as f64
    }
}

/// The CEMPaR protocol instance.
#[derive(Debug, Clone)]
pub struct Cempar {
    config: CemparConfig,
    directory: SuperPeerDirectory,
    regions: Vec<Option<RegionState>>,
    /// Per-peer local data retained for refinement retraining.
    local_data: Vec<MultiLabelDataset>,
    /// Per-peer examples not yet absorbed into that peer's propagated model
    /// (the peer was offline, or its propagation failed): retried on the next
    /// incremental round. An empty entry marks a peer that has *never*
    /// trained (its whole local collection is outstanding).
    pending: BTreeMap<PeerId, MultiLabelDataset>,
    /// The send path: passthrough by default, ack/retransmit when
    /// [`WireConfig::reliability`] is set. Also the ledger of every send
    /// outcome (losses, retransmits, re-syncs).
    link: ReliableLink,
    trained: bool,
}

impl Cempar {
    /// Creates an untrained CEMPaR instance.
    pub fn new(config: CemparConfig) -> Self {
        let directory = SuperPeerDirectory::new(config.regions);
        let link = ReliableLink::new(config.wire.reliability);
        Self {
            config,
            directory,
            regions: Vec::new(),
            local_data: Vec::new(),
            pending: BTreeMap::new(),
            link,
            trained: false,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CemparConfig {
        &self.config
    }

    /// The super-peers elected at training time (one per region that received
    /// at least one model).
    pub fn super_peers(&self) -> Vec<PeerId> {
        self.regions
            .iter()
            .flatten()
            .map(|r| r.super_peer)
            .collect()
    }

    /// Total number of support vectors held by the regional models (a proxy
    /// for global model size).
    pub fn regional_support_vectors(&self) -> usize {
        self.regions
            .iter()
            .flatten()
            .flat_map(|r| r.regional.values())
            .map(KernelSvm::num_support_vectors)
            .sum()
    }

    /// The region index a peer belongs to.
    fn region_of_peer(&self, peer: PeerId) -> usize {
        self.directory.region_of_key(peer.ring_key())
    }

    /// Trains a peer's local one-vs-all kernel model.
    fn train_local(&self, data: &MultiLabelDataset) -> Option<OneVsAllModel<KernelSvm>> {
        train_cempar_local(&self.config, data)
    }

    /// Computes the cascaded per-tag regional models of one region from all
    /// contributed local models (pure — does not touch `self.regions`, so
    /// several regions can cascade concurrently).
    fn cascade_tags(&self, state: &RegionState) -> BTreeMap<TagId, KernelSvm> {
        cascade_region_tags(&self.config, state.contributed.values())
    }

    /// Cascades one region's contributed models and builds the matching
    /// batched scorer (pure; the single source of the cascade + scorer
    /// pairing used by [`Self::cascade_region`] and `train`).
    fn cascaded_with_scorer(
        &self,
        state: &RegionState,
    ) -> (BTreeMap<TagId, KernelSvm>, BatchKernelScorer) {
        let regional = self.cascade_tags(state);
        let scorer = BatchKernelScorer::from_classifiers(regional.iter().map(|(&t, m)| (t, m)));
        (regional, scorer)
    }

    /// Re-cascades the regional per-tag models of one region and rebuilds its
    /// batched scorer.
    fn cascade_region(&mut self, region: usize) {
        let Some(state) = self.regions[region].as_ref() else {
            return;
        };
        let (regional, scorer) = self.cascaded_with_scorer(state);
        let state = self.regions[region].as_mut().expect("checked above");
        state.regional = regional;
        state.scorer = scorer;
    }

    /// Re-cascades a set of touched regions: deduplicates, computes the
    /// merged per-tag models (and their batched scorers) in parallel, then
    /// installs them in region order.
    fn cascade_regions(&mut self, mut touched: Vec<usize>) {
        touched.sort_unstable();
        touched.dedup();
        let cascaded = parallel::par_map(&touched, |&region| {
            self.regions[region]
                .as_ref()
                .map(|state| self.cascaded_with_scorer(state))
        });
        for (&region, result) in touched.iter().zip(cascaded) {
            if let Some((regional, scorer)) = result {
                let state = self.regions[region].as_mut().expect("region populated");
                state.regional = regional;
                state.scorer = scorer;
            }
        }
    }

    /// Propagates a peer's local model to its region's super-peer, charging the
    /// DHT lookup and the model transfer. Returns the region index on success.
    ///
    /// Under [`WireCost::Measured`] the support-vector model is encoded into
    /// a real frame, the send charges the frame length, and the super-peer
    /// records the *decoded* model — the copy every later cascade and
    /// regional scorer is built from.
    fn propagate_model(
        &mut self,
        net: &mut P2PNetwork,
        peer: PeerId,
        model: OneVsAllModel<KernelSvm>,
        kind: MessageKind,
    ) -> Result<usize, ProtocolError> {
        let region = self.region_of_peer(peer);
        let anchor = self.directory.anchor_key(region);
        let (super_peer, _hops) = net.dht_lookup(peer, anchor)?;
        let model = match self.config.wire.cost {
            WireCost::Estimated => {
                self.link
                    .send_sized(net, peer, super_peer, kind, model.wire_size())?;
                model
            }
            WireCost::Measured => {
                let frame = wire::encode_kernel_model(&model, self.config.wire.precision);
                let delivered = self.link.send_frame(net, peer, super_peer, kind, &frame)?;
                // The super-peer records what it decodes off the delivered
                // bytes; a frame damaged beyond decoding was never
                // contributed (the sender's pending queue retries it).
                wire::decode_kernel_model(&delivered)
                    .map_err(|_| ProtocolError::Delivery(DeliveryError::Lost))?
            }
        };
        let state = self.regions[region].get_or_insert_with(|| RegionState {
            super_peer,
            contributed: BTreeMap::new(),
            regional: BTreeMap::new(),
            scorer: BatchKernelScorer::default(),
        });
        // The DHT may have re-elected a successor since the region was first
        // populated (churn); the latest resolved owner is authoritative.
        state.super_peer = super_peer;
        state.contributed.insert(peer, model);
        Ok(region)
    }
}

impl P2PTagClassifier for Cempar {
    fn name(&self) -> &'static str {
        "cempar"
    }

    fn train(
        &mut self,
        net: &mut P2PNetwork,
        peer_data: &PeerDataMap,
    ) -> Result<(), ProtocolError> {
        self.regions = vec![None; self.config.regions];
        self.pending = BTreeMap::new();
        self.local_data = peer_data.clone();
        self.local_data
            .resize(net.num_peers(), MultiLabelDataset::new());

        // Per-peer kernel-SVM training is the expensive phase and every
        // peer's models depend only on its own data, so it fans out across
        // cores; the ordered reduction hands models back in peer order and
        // the sequential propagation below performs the same DHT lookups and
        // sends in the same order as the pre-refactor loop.
        let jobs: Vec<(PeerId, &MultiLabelDataset)> = peer_data
            .iter()
            .enumerate()
            .map(|(i, data)| (PeerId::from(i), data))
            .collect();
        let net_ref: &P2PNetwork = net;
        let local_models = parallel::par_map(&jobs, |&(peer, data)| {
            if !net_ref.is_online(peer) {
                return None;
            }
            self.train_local(data).map(|model| (peer, model))
        });

        // Offline peers' knowledge is outstanding: the next incremental
        // round contributes it once they are back online.
        for &(peer, data) in &jobs {
            if !data.is_empty() && !net_ref.is_online(peer) {
                self.pending.insert(peer, MultiLabelDataset::new());
            }
        }
        let mut touched_regions = Vec::new();
        for (peer, model) in local_models.into_iter().flatten() {
            match self.propagate_model(net, peer, model, MessageKind::ModelPropagation) {
                Ok(region) => touched_regions.push(region),
                Err(_) => {
                    // The peer could not reach its super-peer; its knowledge is
                    // simply not contributed this round (no global failure).
                    self.pending.insert(peer, MultiLabelDataset::new());
                    let now = net.now();
                    net.log_mut().log(
                        now,
                        Some(peer),
                        "cempar",
                        "model propagation failed; peer not contributing",
                    );
                }
            }
        }
        // Regions cascade independently; compute the merged per-tag models
        // (and their batched scorers) in parallel, then install them in
        // region order.
        self.cascade_regions(touched_regions);
        self.trained = true;
        Ok(())
    }

    fn train_incremental(
        &mut self,
        net: &mut P2PNetwork,
        new_data: &PeerDataMap,
    ) -> Result<(), ProtocolError> {
        if !self.trained {
            return Err(ProtocolError::NotTrained);
        }
        if self.local_data.len() < net.num_peers() {
            self.local_data
                .resize(net.num_peers(), MultiLabelDataset::new());
        }
        for (i, data) in new_data.iter().enumerate() {
            if data.is_empty() {
                continue;
            }
            if i >= self.local_data.len() {
                self.local_data.resize(i + 1, MultiLabelDataset::new());
            }
            self.local_data[i].extend_from(data);
            self.pending
                .entry(PeerId::from(i))
                .or_default()
                .extend_from(data);
        }
        // Warm-start refits fan out across every peer with outstanding
        // examples: each refit retrains on the previous model's support
        // vectors pooled with the peer's unabsorbed examples (the classic
        // incremental SVM), instead of an SMO solve over the peer's full
        // local collection.
        let touched: Vec<PeerId> = self.pending.keys().copied().collect();
        let net_ref: &P2PNetwork = net;
        let local_models = parallel::par_map(&touched, |&peer| {
            if !net_ref.is_online(peer) {
                return None;
            }
            let full = &self.local_data[peer.index()];
            let new = &self.pending[&peer];
            let region = self.region_of_peer(peer);
            let prev = self.regions[region]
                .as_ref()
                .and_then(|s| s.contributed.get(&peer));
            let model = match prev {
                Some(prev) if !new.is_empty() => {
                    self.config
                        .one_vs_all
                        .train_kernel_warm(full, new, &self.config.svm, prev)
                }
                // Never trained (or nothing recorded since a failed
                // propagation): cold-train on the full local collection.
                _ => return self.train_local(full).map(|m| (peer, m)),
            };
            (model.num_tags() > 0).then_some((peer, model))
        });

        let mut touched_regions = Vec::new();
        for (peer, model) in local_models.into_iter().flatten() {
            match self.propagate_model(net, peer, model, MessageKind::ModelPropagation) {
                Ok(region) => {
                    self.pending.remove(&peer);
                    touched_regions.push(region);
                }
                Err(_) => {
                    // Keep the peer's pending examples for the next round.
                    let now = net.now();
                    net.log_mut().log(
                        now,
                        Some(peer),
                        "cempar",
                        "incremental propagation failed; peer not contributing",
                    );
                }
            }
        }
        // Only the regions that received a refreshed model re-cascade.
        self.cascade_regions(touched_regions);
        Ok(())
    }

    fn scores(
        &self,
        net: &mut P2PNetwork,
        peer: PeerId,
        x: &SparseVector,
    ) -> Result<Vec<TagPrediction>, ProtocolError> {
        if !self.trained {
            return Err(ProtocolError::NotTrained);
        }
        if !net.is_online(peer) {
            return Err(ProtocolError::PeerOffline);
        }
        // The same query payload travels to every region: encode it once.
        // Under the measured wire the super-peers score the vector *decoded
        // from the frame* (bit-identical to `x` with the lossless default).
        let (query_bytes, decoded_query) = match self.config.wire.cost {
            WireCost::Estimated => (x.wire_size(), None),
            WireCost::Measured => {
                let frame = wire::encode_query(x);
                let decoded = wire::decode_query(&frame).expect("self-encoded query frame decodes");
                (frame.len(), Some(decoded))
            }
        };
        let x_eval = decoded_query.as_ref().unwrap_or(x);
        let mut votes: Vec<(f64, Vec<TagPrediction>)> = Vec::new();
        for state in self.regions.iter().flatten() {
            if state.regional.is_empty() {
                continue;
            }
            // Route the query to the region's super-peer: DHT lookup + the
            // document vector itself + the response.
            let anchor_owner = net.dht_lookup(peer, state.super_peer.ring_key());
            if anchor_owner.is_err() {
                continue;
            }
            if net
                .send(
                    peer,
                    state.super_peer,
                    MessageKind::PredictionQuery,
                    query_bytes,
                )
                .is_err()
            {
                // Super-peer offline: this region's vote is lost (fault
                // tolerance: remaining regions still answer).
                continue;
            }
            let scores = region_scores(self.config.backend, &state.regional, &state.scorer, x_eval);
            // The response travels back as a real frame too: the requester
            // votes with the scores decoded from it.
            let (response_size, scores) = match self.config.wire.cost {
                WireCost::Estimated => (scores.len() * (std::mem::size_of::<TagId>() + 8), scores),
                WireCost::Measured => {
                    let frame = wire::encode_scores(&scores);
                    let decoded =
                        wire::decode_scores(&frame).expect("self-encoded score frame decodes");
                    (frame.len(), decoded)
                }
            };
            // A region whose response never reaches the requester contributes
            // no vote (previously a lost response still voted). Query-path
            // sends cannot route through the reliable link (`scores` is
            // `&self`); their losses are visible in the network's fault
            // counters, and fault-free runs never take the error arm — both
            // endpoints were online a moment ago and nothing advances time
            // mid-query.
            if net
                .send(
                    state.super_peer,
                    peer,
                    MessageKind::PredictionResponse,
                    response_size,
                )
                .is_ok()
            {
                votes.push((state.weight(), scores));
            }
        }
        if votes.is_empty() {
            return Err(ProtocolError::NoModelReachable);
        }
        Ok(combine_weighted_scores(&votes))
    }

    fn predict(
        &self,
        net: &mut P2PNetwork,
        peer: PeerId,
        x: &SparseVector,
    ) -> Result<std::collections::BTreeSet<TagId>, ProtocolError> {
        let scores = self.scores(net, peer, x)?;
        Ok(crate::protocol::select_tags_adaptive(
            &scores,
            self.config.vote_threshold,
            self.config.rel_threshold,
            self.config.min_tags,
        ))
    }

    fn refine(
        &mut self,
        net: &mut P2PNetwork,
        peer: PeerId,
        example: &MultiLabelExample,
    ) -> Result<(), ProtocolError> {
        if !self.trained {
            return Err(ProtocolError::NotTrained);
        }
        if !net.is_online(peer) {
            return Err(ProtocolError::PeerOffline);
        }
        let idx = peer.index();
        if idx >= self.local_data.len() {
            self.local_data.resize(idx + 1, MultiLabelDataset::new());
        }
        self.local_data[idx].push(example.clone());
        // Warm refit: previous support vectors + any pending examples + the
        // correction itself; cold train only when the peer never contributed.
        let model = {
            let full = &self.local_data[idx];
            let region = self.region_of_peer(peer);
            let prev = self.regions[region]
                .as_ref()
                .and_then(|s| s.contributed.get(&peer));
            match prev {
                Some(prev) => {
                    let mut new = self.pending.get(&peer).cloned().unwrap_or_default();
                    new.push(example.clone());
                    let m = self.config.one_vs_all.train_kernel_warm(
                        full,
                        &new,
                        &self.config.svm,
                        prev,
                    );
                    (m.num_tags() > 0).then_some(m)
                }
                None => self.train_local(full),
            }
        };
        let Some(model) = model else {
            return Ok(());
        };
        match self.propagate_model(net, peer, model, MessageKind::RefinementUpdate) {
            Ok(region) => {
                self.pending.remove(&peer);
                self.cascade_region(region);
                Ok(())
            }
            Err(e) => {
                // Roll the correction back out of the local store: the error
                // tells the caller to retry the whole refine(), and a retry
                // must not find a duplicate of the example already recorded.
                let len = self.local_data[idx].len();
                self.local_data[idx].truncate(len - 1);
                Err(e)
            }
        }
    }

    fn on_crash_restart(&mut self, _net: &mut P2PNetwork, peer: PeerId) {
        // A crashed super-peer loses its in-memory region state: every
        // contributed model and the cascaded regional models. Its
        // contributors are re-marked pending so the next incremental round
        // rebuilds the region from their durable local data. A regular
        // peer's restart wipes nothing the protocol tracks for it — its
        // contribution lives at the super-peer and its local data is durable.
        for state in self.regions.iter_mut().flatten() {
            if state.super_peer != peer {
                continue;
            }
            for &contributor in state.contributed.keys() {
                self.pending.entry(contributor).or_default();
            }
            state.contributed.clear();
            state.regional.clear();
            state.scorer = BatchKernelScorer::default();
        }
    }

    fn resync(&mut self, net: &mut P2PNetwork, peer: PeerId) -> usize {
        if !self.trained || !net.is_online(peer) {
            return 0;
        }
        let region = self.region_of_peer(peer);
        let Some(state) = self.regions.get(region).and_then(Option::as_ref) else {
            return 0;
        };
        let super_peer = state.super_peer;
        let contributed = state.contributed.contains_key(&peer);
        let has_data = self
            .local_data
            .get(peer.index())
            .is_some_and(|d| !d.is_empty());
        if peer == super_peer || !has_data || contributed {
            return 0;
        }
        // Digest exchange: the rejoining peer advertises its contribution;
        // the super-peer's (implicit) reply reveals it is missing, so the
        // peer queues a re-contribution — the model re-propagation itself is
        // trained and charged on the next incremental round.
        let digest = wire::encode_digest(&[(peer.0, 0)]);
        let arrived = match self.config.wire.cost {
            WireCost::Measured => self.link.deliver_frame(
                net,
                peer,
                super_peer,
                MessageKind::AntiEntropy,
                &digest,
                |b| wire::decode_digest(b).is_ok(),
            ),
            WireCost::Estimated => self.link.deliver_sized(
                net,
                peer,
                super_peer,
                MessageKind::AntiEntropy,
                digest.len(),
            ),
        };
        if arrived != SendOutcome::Arrived {
            return 0;
        }
        self.pending.entry(peer).or_default();
        self.link.note_resync();
        net.note_resync();
        1
    }

    fn link_stats(&self) -> LinkStats {
        *self.link.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::P2PTagClassifier;
    use ml::MultiLabelExample;
    use p2psim::SimConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeSet;

    /// Builds per-peer datasets for a toy 2-tag problem: tag 1 fires on feature
    /// 0, tag 2 on feature 1.
    fn toy_peer_data(num_peers: usize, per_peer: usize, seed: u64) -> PeerDataMap {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..num_peers)
            .map(|_| {
                let mut ds = MultiLabelDataset::new();
                for _ in 0..per_peer {
                    let which = rng.gen_range(0..3);
                    let a = 0.8 + rng.gen_range(0.0..0.4);
                    let b = 0.8 + rng.gen_range(0.0..0.4);
                    let (vector, tags): (SparseVector, Vec<TagId>) = match which {
                        0 => (SparseVector::from_pairs([(0, a)]), vec![1]),
                        1 => (SparseVector::from_pairs([(1, b)]), vec![2]),
                        _ => (SparseVector::from_pairs([(0, a), (1, b)]), vec![1, 2]),
                    };
                    ds.push(MultiLabelExample::new(vector, tags));
                }
                ds
            })
            .collect()
    }

    fn network(num_peers: usize) -> P2PNetwork {
        P2PNetwork::new(SimConfig {
            num_peers,
            horizon_secs: 100_000,
            ..Default::default()
        })
    }

    #[test]
    fn trains_and_predicts_correct_tags() {
        let mut net = network(16);
        let data = toy_peer_data(16, 12, 1);
        let mut cempar = Cempar::new(CemparConfig {
            regions: 4,
            ..Default::default()
        });
        cempar.train(&mut net, &data).unwrap();
        assert!(!cempar.super_peers().is_empty());

        let query_peer = PeerId(3);
        let pred1 = cempar
            .predict(&mut net, query_peer, &SparseVector::from_pairs([(0, 1.0)]))
            .unwrap();
        assert!(pred1.contains(&1), "prediction {pred1:?}");
        let pred2 = cempar
            .predict(&mut net, query_peer, &SparseVector::from_pairs([(1, 1.0)]))
            .unwrap();
        assert!(pred2.contains(&2), "prediction {pred2:?}");
        let both = cempar
            .predict(
                &mut net,
                query_peer,
                &SparseVector::from_pairs([(0, 1.0), (1, 1.0)]),
            )
            .unwrap();
        assert_eq!(both, BTreeSet::from([1, 2]));
    }

    #[test]
    fn model_propagation_is_accounted() {
        let mut net = network(16);
        let data = toy_peer_data(16, 10, 2);
        let mut cempar = Cempar::new(CemparConfig::default());
        cempar.train(&mut net, &data).unwrap();
        let stats = net.stats();
        assert!(stats.kind(MessageKind::ModelPropagation).messages >= 10);
        assert!(stats.kind(MessageKind::ModelPropagation).bytes > 0);
        assert!(stats.kind(MessageKind::DhtLookup).messages > 0);
        // No raw training data is ever shipped.
        assert_eq!(stats.kind(MessageKind::TrainingData).messages, 0);
    }

    #[test]
    fn prediction_queries_cost_communication() {
        let mut net = network(16);
        let data = toy_peer_data(16, 10, 3);
        let mut cempar = Cempar::new(CemparConfig {
            regions: 4,
            ..Default::default()
        });
        cempar.train(&mut net, &data).unwrap();
        let before = net.stats().kind(MessageKind::PredictionQuery).messages;
        cempar
            .predict(&mut net, PeerId(0), &SparseVector::from_pairs([(0, 1.0)]))
            .unwrap();
        let after = net.stats().kind(MessageKind::PredictionQuery).messages;
        assert!(after > before);
    }

    #[test]
    fn untrained_protocol_errors() {
        let mut net = network(4);
        let cempar = Cempar::new(CemparConfig::default());
        let r = cempar.scores(&mut net, PeerId(0), &SparseVector::from_pairs([(0, 1.0)]));
        assert_eq!(r.unwrap_err(), ProtocolError::NotTrained);
    }

    #[test]
    fn refinement_updates_the_model() {
        let mut net = network(8);
        // Initially tag 3 is unknown anywhere.
        let data = toy_peer_data(8, 10, 4);
        let mut cempar = Cempar::new(CemparConfig {
            regions: 2,
            ..Default::default()
        });
        cempar.train(&mut net, &data).unwrap();
        let probe = SparseVector::from_pairs([(5, 1.5)]);
        let before = cempar.predict(&mut net, PeerId(1), &probe).unwrap();
        assert!(!before.contains(&3));
        // The user of peer 1 refines several documents with the new tag 3.
        for i in 0..8 {
            let v = SparseVector::from_pairs([(5, 1.0 + i as f64 * 0.1)]);
            cempar
                .refine(&mut net, PeerId(1), &MultiLabelExample::new(v, [3]))
                .unwrap();
        }
        let scores = cempar.scores(&mut net, PeerId(1), &probe).unwrap();
        assert!(
            scores.iter().any(|p| p.tag == 3),
            "tag 3 now known: {scores:?}"
        );
        assert!(
            net.stats().kind(MessageKind::RefinementUpdate).messages >= 1,
            "refinement traffic accounted"
        );
    }

    #[test]
    fn incremental_training_recascades_only_touched_regions() {
        let mut net = network(16);
        let data = toy_peer_data(16, 10, 9);
        let mut cempar = Cempar::new(CemparConfig {
            regions: 4,
            ..Default::default()
        });
        assert_eq!(
            cempar.train_incremental(&mut net, &data).unwrap_err(),
            ProtocolError::NotTrained
        );
        cempar.train(&mut net, &data).unwrap();
        let probe = SparseVector::from_pairs([(4, 1.3)]);
        let before = cempar.predict(&mut net, PeerId(2), &probe).unwrap();
        assert!(!before.contains(&7));
        let mut new_data = vec![MultiLabelDataset::new(); 16];
        for i in 0..10 {
            new_data[2].push(MultiLabelExample::new(
                SparseVector::from_pairs([(4, 1.0 + 0.05 * i as f64)]),
                [7],
            ));
        }
        let msgs_before = net.stats().kind(MessageKind::ModelPropagation).messages;
        cempar.train_incremental(&mut net, &new_data).unwrap();
        // One refreshed local model travelled to one super-peer.
        let msgs_after = net.stats().kind(MessageKind::ModelPropagation).messages;
        assert_eq!(msgs_after - msgs_before, 1);
        let scores = cempar.scores(&mut net, PeerId(2), &probe).unwrap();
        assert!(scores.iter().any(|p| p.tag == 7), "{scores:?}");
    }

    #[test]
    fn super_peer_failure_degrades_gracefully() {
        use p2psim::churn::ChurnModel;
        let mut net = P2PNetwork::new(SimConfig {
            num_peers: 32,
            churn: ChurnModel::Exponential {
                mean_session_secs: 400.0,
                mean_offline_secs: 200.0,
            },
            horizon_secs: 100_000,
            ..Default::default()
        });
        let data = toy_peer_data(32, 10, 5);
        let mut cempar = Cempar::new(CemparConfig {
            regions: 8,
            ..Default::default()
        });
        cempar.train(&mut net, &data).unwrap();
        // Let a lot of time pass so some super-peers churn out.
        net.advance(p2psim::SimTime::from_secs(20_000));
        let online_peer = net.online_peers().next();
        let Some(peer) = online_peer else { return };
        // Prediction must either succeed (some region reachable) or fail with
        // NoModelReachable — it must never panic or hang.
        let result = cempar.predict(&mut net, peer, &SparseVector::from_pairs([(0, 1.0)]));
        match result {
            Ok(tags) => assert!(!tags.is_empty()),
            Err(e) => assert_eq!(e, ProtocolError::NoModelReachable),
        }
    }

    #[test]
    fn regional_models_compress_the_contributed_support_vectors() {
        let mut net = network(16);
        let data = toy_peer_data(16, 20, 6);
        let mut cempar = Cempar::new(CemparConfig {
            regions: 2,
            ..Default::default()
        });
        cempar.train(&mut net, &data).unwrap();
        let total_training: usize = data.iter().map(|d| d.len()).sum();
        assert!(cempar.regional_support_vectors() > 0);
        assert!(cempar.regional_support_vectors() < 2 * total_training);
    }
}
