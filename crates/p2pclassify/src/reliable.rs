//! Reliable delivery over the lossy round-based network.
//!
//! [`ReliableLink`] is the send path every protocol routes its frames
//! through. With [`ReliabilityConfig`] unset (the default) it is a strict
//! passthrough to [`P2PNetwork::send_frame`] — same bytes charged, same RNG
//! stream, bit-identical to the pre-reliability send path. With it set, each
//! frame travels as a sequence-numbered, checksummed
//! [`crate::wire::PayloadKind::Reliable`] wrapper:
//!
//! * every attempt (first try and each retransmit) charges the full wrapped
//!   frame in **measured wire bytes** — reliability is never free;
//! * the receiver acks intact frames with a real reverse
//!   [`MessageKind::Ack`] message that can itself be lost or corrupted;
//! * a corrupted frame (checksum mismatch, truncation) is treated as never
//!   delivered: dropped without an ack, never decoded into protocol state;
//! * a missing ack triggers a retransmit after an exponential backoff
//!   (`base * 2^attempt`), accounted as virtual latency — no wall clocks;
//! * the retry budget is bounded by [`ReliabilityConfig::max_attempts`];
//!   exhausting it surfaces [`DeliveryError::Lost`] so the caller can track
//!   the gap and repair it later via anti-entropy.
//!
//! Duplicate delivery (data arrived, ack lost, sender retransmitted) is
//! deduplicated by sequence number: the first intact copy is what the
//! receiver installs, later copies only re-arm the ack.

use crate::wire::{self, ReliabilityConfig};
use p2psim::message::MessageKind;
use p2psim::network::{DeliveryError, P2PNetwork};
use p2psim::peer::PeerId;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;

/// Per-protocol send-path counters, surfaced by
/// [`crate::protocol::P2PTagClassifier::link_stats`].
///
/// Every protocol owns one [`ReliableLink`]; these counters make silently
/// ignored send failures impossible — the `send-unchecked` lint enforces the
/// routing, this struct makes the outcomes observable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Logical payloads handed to the link (not counting retransmits).
    pub sends: u64,
    /// Payloads the receiver ended up holding an intact copy of.
    pub delivered: u64,
    /// Individual attempts dropped in transit (loss, burst, partition).
    pub lost_sends: u64,
    /// Sends that failed because a peer was offline (churn, crash).
    pub offline_drops: u64,
    /// Retransmission attempts after a missing or corrupted ack.
    pub retransmits: u64,
    /// Payloads that needed at least one retransmit but got through.
    pub recovered: u64,
    /// Frames that arrived damaged and were rejected by checksum/decode.
    pub corrupted_rx: u64,
    /// Payloads abandoned after the retry budget was exhausted.
    pub gave_up: u64,
    /// Anti-entropy re-sync payloads shipped after a crash or heal.
    pub resyncs: u64,
    /// Virtual exponential-backoff latency accumulated by retransmits.
    pub backoff_ms: u64,
}

impl LinkStats {
    /// All attempt-level drops: in-transit losses plus offline failures.
    pub fn total_drops(&self) -> u64 {
        self.lost_sends + self.offline_drops
    }
}

/// How a frame delivery ended, for the protocols' "who received what"
/// bookkeeping. The split matters because the two failure classes carry
/// different semantics: a fault drop means the receiver provably missed the
/// payload (anti-entropy must repair it), while an offline failure keeps the
/// pre-fault churn semantics (the data waits for the peer's return).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The receiver holds an intact (or validly decodable) copy.
    Arrived,
    /// Dropped by the fault layer (loss, partition, retry budget exhausted,
    /// or delivered corrupted and rejected by the receiver's strict decoder).
    FaultLost,
    /// A peer was offline — churn/crash, not transit loss.
    Offline,
}

/// Virtual-ms delay charged before retransmit `attempt` (1-based):
/// `base · 2^(attempt−1)`, **saturating** at `u64::MAX` once the doubling
/// would overflow. A plain shift wraps past 63 doublings (and panics in
/// debug builds), which a large [`ReliabilityConfig::max_attempts`] budget
/// can legitimately reach; past that point the delay is astronomically
/// larger than any simulation horizon, so the saturated value is the honest
/// ceiling. Shared by [`ReliableLink`] and the sans-io
/// [`crate::sansio::ReliableCore`].
pub(crate) fn backoff_delay_ms(base_ms: u64, attempt: u32) -> u64 {
    if base_ms == 0 {
        return 0;
    }
    let shift = attempt.saturating_sub(1);
    base_ms
        .checked_shl(shift)
        .filter(|v| v >> shift == base_ms)
        .unwrap_or(u64::MAX)
}

/// Sequence-numbered reliable sender (one per protocol instance).
#[derive(Debug, Clone, Default)]
pub struct ReliableLink {
    reliability: Option<ReliabilityConfig>,
    next_seq: u64,
    stats: LinkStats,
}

impl ReliableLink {
    /// A link with the given retry policy (`None` = plain passthrough).
    pub fn new(reliability: Option<ReliabilityConfig>) -> Self {
        Self {
            reliability,
            next_seq: 0,
            stats: LinkStats::default(),
        }
    }

    /// The accumulated send-path counters.
    pub fn stats(&self) -> &LinkStats {
        &self.stats
    }

    /// Counts an anti-entropy payload shipped through this link.
    pub fn note_resync(&mut self) {
        self.stats.resyncs += 1;
    }

    /// Size-only send for the [`crate::wire::WireCost::Estimated`] backend
    /// (no frame exists to wrap, so the retry policy does not apply): a bare
    /// [`P2PNetwork::send`] whose outcome lands in [`LinkStats`] instead of
    /// being silently discarded.
    pub fn send_sized(
        &mut self,
        net: &mut P2PNetwork,
        from: PeerId,
        to: PeerId,
        kind: MessageKind,
        size_bytes: usize,
    ) -> Result<p2psim::SimTime, DeliveryError> {
        self.stats.sends += 1;
        match net.send(from, to, kind, size_bytes) {
            Ok(latency) => {
                self.stats.delivered += 1;
                Ok(latency)
            }
            Err(e) => {
                self.record_failure(e);
                Err(e)
            }
        }
    }

    /// Sends `frame` from `from` to `to`, returning the bytes the receiver
    /// actually holds afterwards (borrowed when they arrived intact).
    ///
    /// Passthrough mode charges and fails exactly like a bare
    /// [`P2PNetwork::send_frame`] — corrupted deliveries are returned as-is
    /// for the caller's strict decoder to reject. Reliable mode runs the
    /// ack/retransmit loop documented on the module and only ever returns
    /// intact, deduplicated payload bytes.
    pub fn send_frame<'a>(
        &mut self,
        net: &mut P2PNetwork,
        from: PeerId,
        to: PeerId,
        kind: MessageKind,
        frame: &'a [u8],
    ) -> Result<Cow<'a, [u8]>, DeliveryError> {
        self.stats.sends += 1;
        match self.reliability {
            None => match net.send_frame(from, to, kind, frame) {
                Ok(delivery) => {
                    self.stats.delivered += 1;
                    Ok(match delivery.corrupted {
                        Some(damaged) => {
                            self.stats.corrupted_rx += 1;
                            Cow::Owned(damaged)
                        }
                        None => Cow::Borrowed(frame),
                    })
                }
                Err(e) => {
                    self.record_failure(e);
                    Err(e)
                }
            },
            Some(cfg) => self.send_reliable(net, from, to, kind, frame, cfg),
        }
    }

    fn send_reliable<'a>(
        &mut self,
        net: &mut P2PNetwork,
        from: PeerId,
        to: PeerId,
        kind: MessageKind,
        frame: &'a [u8],
        cfg: ReliabilityConfig,
    ) -> Result<Cow<'a, [u8]>, DeliveryError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let wrapped = wire::encode_reliable(seq, frame);
        // Set once the receiver holds an intact copy (dedup by `seq`): later
        // attempts only try to get the ack back to the sender.
        let mut delivered = false;
        let mut last_err = DeliveryError::Lost;
        for attempt in 0..cfg.max_attempts {
            if attempt > 0 {
                self.stats.retransmits += 1;
                self.stats.backoff_ms = self
                    .stats
                    .backoff_ms
                    .saturating_add(backoff_delay_ms(cfg.backoff_base_ms, attempt));
                net.note_retransmit();
            }
            if !delivered {
                match net.send_frame(from, to, kind, &wrapped) {
                    Ok(delivery) => {
                        let seen: &[u8] = delivery.corrupted.as_deref().unwrap_or(&wrapped);
                        match wire::decode_reliable(seen) {
                            Ok((got_seq, _)) if got_seq == seq => delivered = true,
                            // Damaged in transit: no ack, sender times out.
                            _ => {
                                self.stats.corrupted_rx += 1;
                                last_err = DeliveryError::Lost;
                                continue;
                            }
                        }
                    }
                    Err(e @ (DeliveryError::SenderOffline | DeliveryError::ReceiverOffline)) => {
                        // Churn/crash, not loss: retrying at the same instant
                        // cannot help, and the offline paths keep their
                        // pre-reliability semantics.
                        self.record_failure(e);
                        return Err(e);
                    }
                    Err(e) => {
                        self.record_failure(e);
                        last_err = e;
                        continue;
                    }
                }
            }
            // Data is in: ack travels back over the same lossy channel.
            let ack = wire::encode_ack(seq);
            match net.send_frame(to, from, MessageKind::Ack, &ack) {
                Ok(delivery) => {
                    let seen: &[u8] = delivery.corrupted.as_deref().unwrap_or(&ack);
                    if wire::decode_ack(seen) == Ok(seq) {
                        self.stats.delivered += 1;
                        if attempt > 0 {
                            self.stats.recovered += 1;
                            net.note_recovered();
                        }
                        return Ok(Cow::Borrowed(frame));
                    }
                    self.stats.corrupted_rx += 1;
                }
                Err(e @ (DeliveryError::SenderOffline | DeliveryError::ReceiverOffline)) => {
                    // The receiver installed the payload before going quiet;
                    // the sender just never learns. Report success — the
                    // payload IS there — without a recovery claim.
                    self.record_failure(e);
                    self.stats.delivered += 1;
                    return Ok(Cow::Borrowed(frame));
                }
                Err(e) => self.record_failure(e),
            }
        }
        if delivered {
            // Every ack died but the data landed: the receiver holds it.
            self.stats.delivered += 1;
            self.stats.recovered += 1;
            net.note_recovered();
            return Ok(Cow::Borrowed(frame));
        }
        self.stats.gave_up += 1;
        Err(last_err)
    }

    /// [`Self::send_frame`] reduced to a [`SendOutcome`]: `validate` is the
    /// receiver's strict decoder, applied only when the delivered bytes were
    /// damaged in transit — a frame it rejects is dropped, never installed.
    pub fn deliver_frame(
        &mut self,
        net: &mut P2PNetwork,
        from: PeerId,
        to: PeerId,
        kind: MessageKind,
        frame: &[u8],
        validate: impl Fn(&[u8]) -> bool,
    ) -> SendOutcome {
        match self.send_frame(net, from, to, kind, frame) {
            Ok(Cow::Borrowed(_)) => SendOutcome::Arrived,
            Ok(Cow::Owned(damaged)) => {
                if validate(&damaged) {
                    SendOutcome::Arrived
                } else {
                    SendOutcome::FaultLost
                }
            }
            Err(DeliveryError::Lost | DeliveryError::Partitioned) => SendOutcome::FaultLost,
            Err(_) => SendOutcome::Offline,
        }
    }

    /// [`Self::send_sized`] reduced to a [`SendOutcome`].
    pub fn deliver_sized(
        &mut self,
        net: &mut P2PNetwork,
        from: PeerId,
        to: PeerId,
        kind: MessageKind,
        size_bytes: usize,
    ) -> SendOutcome {
        match self.send_sized(net, from, to, kind, size_bytes) {
            Ok(_) => SendOutcome::Arrived,
            Err(DeliveryError::Lost | DeliveryError::Partitioned) => SendOutcome::FaultLost,
            Err(_) => SendOutcome::Offline,
        }
    }

    fn record_failure(&mut self, e: DeliveryError) {
        match e {
            DeliveryError::Lost | DeliveryError::Partitioned => self.stats.lost_sends += 1,
            _ => self.stats.offline_drops += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2psim::config::SimConfig;
    use p2psim::faults::FaultPlan;
    use p2psim::time::SimTime;

    fn net_with(loss: f64, corruption: f64, seed: u64) -> P2PNetwork {
        let faults = FaultPlan {
            loss,
            corruption: (corruption > 0.0).then_some(p2psim::faults::CorruptionFaults {
                probability: corruption,
                truncation: 0.3,
            }),
            ..FaultPlan::default()
        };
        P2PNetwork::new(SimConfig {
            num_peers: 8,
            seed,
            faults,
            ..SimConfig::default()
        })
    }

    fn frame() -> Vec<u8> {
        wire::encode_ack(0xABCD) // any valid frame works as a payload
    }

    #[test]
    fn passthrough_link_charges_like_bare_send() {
        let mut reliable_net = net_with(0.0, 0.0, 7);
        let mut bare_net = net_with(0.0, 0.0, 7);
        let mut link = ReliableLink::new(None);
        let payload = frame();
        for _ in 0..10 {
            let out = link
                .send_frame(
                    &mut reliable_net,
                    PeerId(1),
                    PeerId(2),
                    MessageKind::ModelPropagation,
                    &payload,
                )
                .unwrap();
            assert!(matches!(out, Cow::Borrowed(_)));
            bare_net
                .send_frame(
                    PeerId(1),
                    PeerId(2),
                    MessageKind::ModelPropagation,
                    &payload,
                )
                .unwrap();
        }
        assert_eq!(
            format!("{:?}", reliable_net.stats()),
            format!("{:?}", bare_net.stats())
        );
        assert_eq!(link.stats().sends, 10);
        assert_eq!(link.stats().delivered, 10);
        assert_eq!(link.stats().retransmits, 0);
    }

    #[test]
    fn reliable_link_recovers_from_heavy_loss() {
        let mut net = net_with(0.4, 0.0, 11);
        let mut link = ReliableLink::new(Some(ReliabilityConfig {
            max_attempts: 10,
            backoff_base_ms: 100,
        }));
        let payload = frame();
        let mut ok = 0;
        for _ in 0..50 {
            if link
                .send_frame(
                    &mut net,
                    PeerId(1),
                    PeerId(2),
                    MessageKind::ModelPropagation,
                    &payload,
                )
                .is_ok()
            {
                ok += 1;
            }
        }
        // 10 attempts at 40% loss: failure odds per payload ~ 1e-4.
        assert_eq!(ok, 50);
        assert!(link.stats().retransmits > 0);
        assert!(link.stats().recovered > 0);
        assert!(link.stats().backoff_ms > 0);
        assert_eq!(net.stats().faults.retransmits, link.stats().retransmits);
        assert_eq!(net.stats().faults.recovered, link.stats().recovered);
    }

    #[test]
    fn reliable_link_never_returns_corrupted_bytes() {
        let mut net = net_with(0.0, 0.5, 13);
        let mut link = ReliableLink::new(Some(ReliabilityConfig {
            max_attempts: 12,
            backoff_base_ms: 50,
        }));
        let payload = frame();
        for _ in 0..40 {
            let out = link
                .send_frame(
                    &mut net,
                    PeerId(3),
                    PeerId(4),
                    MessageKind::ModelPropagation,
                    &payload,
                )
                .unwrap();
            assert_eq!(out.as_ref(), payload.as_slice());
        }
        assert!(link.stats().corrupted_rx > 0, "corruption never exercised");
        assert!(net.stats().faults.corrupted > 0);
    }

    #[test]
    fn retry_budget_is_bounded() {
        let mut net = net_with(1.0, 0.0, 17); // every send drops
        let mut link = ReliableLink::new(Some(ReliabilityConfig {
            max_attempts: 3,
            backoff_base_ms: 100,
        }));
        let payload = frame();
        let before = net.stats().total_bytes();
        let err = link
            .send_frame(
                &mut net,
                PeerId(1),
                PeerId(2),
                MessageKind::ModelPropagation,
                &payload,
            )
            .unwrap_err();
        assert_eq!(err, DeliveryError::Lost);
        assert_eq!(link.stats().gave_up, 1);
        assert_eq!(link.stats().retransmits, 2); // attempts 2 and 3
                                                 // Every attempt charged the full wrapped frame.
        let wrapped_len = wire::encode_reliable(0, &payload).len() as u64;
        assert_eq!(net.stats().total_bytes() - before, 3 * wrapped_len);
        // Backoff doubles: 100 + 200.
        assert_eq!(link.stats().backoff_ms, 300);
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing_past_63_doublings() {
        // The shift itself saturates…
        assert_eq!(backoff_delay_ms(250, 1), 250);
        assert_eq!(backoff_delay_ms(250, 2), 500);
        assert_eq!(backoff_delay_ms(250, 57), 250 << 56);
        assert_eq!(backoff_delay_ms(250, 58), u64::MAX); // 250·2^57 > u64::MAX
        assert_eq!(backoff_delay_ms(250, 64), u64::MAX);
        assert_eq!(backoff_delay_ms(250, 200), u64::MAX); // shift ≥ 64 (checked_shl arm)
        assert_eq!(backoff_delay_ms(1, 64), 1 << 63);
        assert_eq!(backoff_delay_ms(1, 65), u64::MAX);
        assert_eq!(backoff_delay_ms(0, 200), 0);
        // …and a link with a huge retry budget on a dead channel accumulates
        // the saturated ledger instead of panicking (debug) or wrapping
        // (release) on the 64th retransmit.
        let mut net = net_with(1.0, 0.0, 23); // every send drops
        let mut link = ReliableLink::new(Some(ReliabilityConfig {
            max_attempts: 80,
            backoff_base_ms: 250,
        }));
        let payload = frame();
        let err = link
            .send_frame(
                &mut net,
                PeerId(1),
                PeerId(2),
                MessageKind::ModelPropagation,
                &payload,
            )
            .unwrap_err();
        assert_eq!(err, DeliveryError::Lost);
        assert_eq!(link.stats().retransmits, 79);
        assert_eq!(link.stats().backoff_ms, u64::MAX);
    }

    #[test]
    fn replays_are_bit_identical_under_loss() {
        let run = |seed| {
            let mut net = net_with(0.25, 0.2, seed);
            let mut link = ReliableLink::new(Some(ReliabilityConfig::default()));
            let payload = frame();
            let mut outcomes = String::new();
            for i in 0..30u64 {
                let from = PeerId(i % 7);
                let to = PeerId((i + 1) % 7);
                let sent =
                    link.send_frame(&mut net, from, to, MessageKind::ModelPropagation, &payload);
                outcomes.push(if sent.is_ok() { '+' } else { '-' });
                net.advance(SimTime::from_millis(250));
            }
            (
                format!("{:?} {outcomes}", net.stats()),
                format!("{:?}", link.stats()),
            )
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99).0, run(100).0);
    }
}
