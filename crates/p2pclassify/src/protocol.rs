//! The common interface of all P2P tagging classifiers.

use crate::error::ProtocolError;
use crate::reliable::LinkStats;
use ml::multilabel::TagPrediction;
use ml::{MultiLabelDataset, MultiLabelExample, TagId};
use p2psim::{P2PNetwork, PeerId};
use std::collections::BTreeSet;
use textproc::SparseVector;

/// Per-peer local training data: `data[i]` is the tagged-document collection
/// of peer `i` (its manually tagged documents).
pub type PeerDataMap = Vec<MultiLabelDataset>;

/// Which scoring implementation a protocol uses at query time.
///
/// Both backends produce identical `TagPrediction`s (the equivalence tests in
/// `tests/equivalence.rs` pin this); they differ only in cost. The scalar
/// backend is retained as the pre-refactor reference — it is what the
/// throughput benchmark measures the batched engine against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoringBackend {
    /// One dot product / kernel expansion per (tag, classifier): the
    /// pre-refactor nested scalar loops.
    Scalar,
    /// Batched scoring through [`ml::TagWeightMatrix`] /
    /// [`ml::BatchKernelScorer`]: one pass over the document nonzeros (or one
    /// kernel row shared by all tags) per consulted model.
    #[default]
    Batched,
}

/// Which training implementation a protocol uses for its one-vs-all fits.
///
/// Both backends produce **bit-identical models** (and therefore identical
/// predictions — `tests/equivalence.rs` pins this across every protocol,
/// including `train_incremental` warm starts); they differ only in memory
/// traffic. The scalar backend is retained as the reference the throughput
/// benchmark measures the shared-storage engine against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrainingBackend {
    /// Per-tag fits over the `&[SparseVector]` view, each re-deriving the
    /// problem dimension, DCD diagonal, shuffle orders (linear) or the full
    /// kernel matrix (kernel) per tag: the pre-refactor reference loops.
    Scalar,
    /// Shared-storage training: linear one-vs-all runs off one row-major CSR
    /// arena through a shared [`ml::svm::CsrLinearTrainer`] context (shared
    /// diagonal/orders, reused scratch, bounds-check-free row kernels);
    /// kernel one-vs-all shares one precomputed Gram matrix across tags.
    #[default]
    Csr,
}

/// A distributed tagging classifier that trains and predicts over a simulated
/// P2P network, paying for every byte it exchanges.
pub trait P2PTagClassifier {
    /// Short protocol name for experiment tables ("cempar", "pace", …).
    fn name(&self) -> &'static str;

    /// Trains the global (distributed) model from each peer's local tagged
    /// documents. Offline peers do not participate — their data is simply not
    /// contributed, as in a real deployment.
    fn train(&mut self, net: &mut P2PNetwork, peer_data: &PeerDataMap)
        -> Result<(), ProtocolError>;

    /// Returns per-tag scores for an untagged document vector, on behalf of the
    /// querying peer (which pays the communication cost of the query, if any).
    fn scores(
        &self,
        net: &mut P2PNetwork,
        peer: PeerId,
        x: &SparseVector,
    ) -> Result<Vec<TagPrediction>, ProtocolError>;

    /// Predicts the tag set of an untagged document vector.
    fn predict(
        &self,
        net: &mut P2PNetwork,
        peer: PeerId,
        x: &SparseVector,
    ) -> Result<BTreeSet<TagId>, ProtocolError> {
        let scores = self.scores(net, peer, x)?;
        Ok(select_tags(&scores, 0.0, 1))
    }

    /// Predicts the tag sets of a whole batch of `(peer, document)` requests,
    /// returning one result per request in input order.
    ///
    /// The default implementation is the sequential per-request loop, which
    /// every protocol that pays communication per query keeps (message
    /// accounting must observe the same sends in the same order). Protocols
    /// whose prediction is communication-free (PACE, local-only) override
    /// this with a parallel map over the requests; the ordered reduction
    /// keeps the results identical to the sequential loop.
    fn predict_batch(
        &self,
        net: &mut P2PNetwork,
        requests: &[(PeerId, &SparseVector)],
    ) -> Vec<Result<BTreeSet<TagId>, ProtocolError>> {
        requests
            .iter()
            .map(|&(peer, x)| self.predict(net, peer, x))
            .collect()
    }

    /// Folds a batch of newly tagged examples into the existing models
    /// without a full retrain: `new_data[i]` holds peer `i`'s *new* manually
    /// tagged documents since the last training round (most entries are
    /// empty in a streaming session).
    ///
    /// Protocols warm-start from the per-peer models they already hold —
    /// linear models refit with a few SGD passes from the stored weights
    /// ([`ml::svm::LinearSvmTrainer::train_warm`]), kernel models retrain on
    /// their retained support vectors pooled with the new examples — and
    /// re-propagate only the affected models/regions. A full
    /// [`Self::train`] on the cumulative data remains the accuracy
    /// reference; the session regression suite bounds the gap between the
    /// two.
    ///
    /// Errors with [`ProtocolError::NotTrained`] before an initial
    /// [`Self::train`]. In protocols where training has a communication
    /// side (model or data propagation), peers that are currently offline
    /// keep their new data locally but neither retrain nor propagate this
    /// round — the data is folded in the next time that peer trains.
    /// Protocols whose training is entirely local (the local-only baseline)
    /// refit regardless of overlay membership, mirroring their
    /// [`Self::train`].
    fn train_incremental(
        &mut self,
        net: &mut P2PNetwork,
        new_data: &PeerDataMap,
    ) -> Result<(), ProtocolError>;

    /// Incorporates a user's tag refinement (a corrected example) and updates
    /// the local and global models accordingly.
    fn refine(
        &mut self,
        net: &mut P2PNetwork,
        peer: PeerId,
        example: &MultiLabelExample,
    ) -> Result<(), ProtocolError>;

    /// Wipes the in-memory protocol state a crash-restarted `peer` would lose
    /// (received remote models, pooled uploads, pending buffers). Its durable
    /// local training data survives — a restart is not amnesia about what the
    /// user tagged, only about what the protocol had fetched over the wire.
    /// The default is a no-op for protocols that keep no remote state.
    fn on_crash_restart(&mut self, _net: &mut P2PNetwork, _peer: PeerId) {}

    /// Anti-entropy repair after a crash restart or partition heal: `peer`
    /// exchanges digests with a partner and re-fetches whatever it is missing
    /// or holds stale. Returns the number of payloads re-shipped, all charged
    /// through the network as [`p2psim::message::MessageKind::AntiEntropy`]
    /// traffic. The default no-op suits protocols with no remote state.
    fn resync(&mut self, _net: &mut P2PNetwork, _peer: PeerId) -> usize {
        0
    }

    /// The protocol's send-path counters: losses, retransmits, recoveries,
    /// re-syncs. Protocols that never send (local-only) report all zeros.
    fn link_stats(&self) -> LinkStats {
        LinkStats::default()
    }
}

/// The `min_tags` fallback shared by [`select_tags`] and
/// [`select_tags_adaptive`]: the best-scored tags under `f64::total_cmp`,
/// with NaN scores filtered out *before* the take. The previous
/// `partial_cmp(..).unwrap_or(Equal)` comparator let a single NaN vote
/// poison the whole ordering non-deterministically (`sort_by` with an
/// inconsistent comparator gives an unspecified permutation), and could then
/// hand the NaN-scored tag itself to the caller. One implementation serves
/// every predict path — this is [`ml::multilabel::top_scored_tags`], the
/// same fallback the scalar and batched model predicts use.
fn top_scored_fallback(scores: &[TagPrediction], min_tags: usize) -> BTreeSet<TagId> {
    ml::multilabel::top_scored_tags(scores, min_tags)
}

/// Turns a scored tag list into a tag set: every tag with `score >= threshold`,
/// or the `min_tags` best-scored tags when none reaches the threshold.
pub fn select_tags(scores: &[TagPrediction], threshold: f64, min_tags: usize) -> BTreeSet<TagId> {
    let above: BTreeSet<TagId> = scores
        .iter()
        .filter(|p| p.score >= threshold)
        .map(|p| p.tag)
        .collect();
    if !above.is_empty() {
        return above;
    }
    top_scored_fallback(scores, min_tags)
}

/// Turns a scored tag list into a tag set using an *adaptive* cutoff: a tag is
/// assigned when its score reaches both `abs_threshold` and `rel_factor` times
/// the best score. The relative component calibrates ensemble votes whose
/// absolute scale depends on how many voters know each tag (weak spurious
/// votes are suppressed while genuinely co-occurring tags with comparable
/// scores survive). Falls back to the `min_tags` best-scored tags when nothing
/// passes.
pub fn select_tags_adaptive(
    scores: &[TagPrediction],
    abs_threshold: f64,
    rel_factor: f64,
    min_tags: usize,
) -> BTreeSet<TagId> {
    let top = scores
        .iter()
        .map(|p| p.score)
        .fold(f64::NEG_INFINITY, f64::max);
    if !top.is_finite() {
        return BTreeSet::new();
    }
    let cutoff = abs_threshold.max(rel_factor * top);
    let above: BTreeSet<TagId> = scores
        .iter()
        .filter(|p| p.score >= cutoff)
        .map(|p| p.tag)
        .collect();
    if !above.is_empty() {
        return above;
    }
    top_scored_fallback(scores, min_tags)
}

/// Combines per-tag *confidence* vote lists (scores in `(0, 1)`) into one,
/// normalizing each tag by the weight of the voters that actually know it.
///
/// This is the ensemble combination PACE needs: raw SVM margins from
/// different peers' models are not calibrated against each other, and with
/// interest locality only a minority of peers has ever seen any given tag.
/// Normalizing a tag's vote mass by *total* ensemble weight (as
/// [`combine_weighted_scores`] does) makes every ignorant peer a strong
/// negative vote and collapses recall. Instead, for each tag:
///
/// ```text
/// score(tag) = (Σ_knowing w·conf / Σ_knowing w) · (Σ_knowing w / Σ_all w)^damping
/// ```
///
/// The first factor is the weighted mean confidence among the models that
/// know the tag; the second discounts tags known to only a sliver of the
/// ensemble (`damping = 0` trusts lone experts fully, `damping = 1` recovers
/// the abstain-is-a-no behaviour of [`combine_weighted_scores`]).
pub fn combine_confidence_votes(
    lists: &[(f64, Vec<TagPrediction>)],
    coverage_damping: f64,
) -> Vec<TagPrediction> {
    let mut acc = ConfidenceVoteAccumulator::new();
    for (weight, scores) in lists {
        acc.add_voter(*weight);
        for p in scores {
            acc.add_vote(p.tag, *weight, p.score);
        }
    }
    acc.finish(coverage_damping)
}

/// Incremental form of [`combine_confidence_votes`]: the batched PACE vote
/// streams per-tag confidences straight into this accumulator instead of
/// materializing one `Vec<TagPrediction>` per consulted model. Feeding the
/// same `(weight, tag, confidence)` triples in the same voter order produces
/// a result identical to [`combine_confidence_votes`] (same accumulation
/// order, same formula, same sort).
#[derive(Debug, Default)]
pub struct ConfidenceVoteAccumulator {
    total_weight: f64,
    /// tag → (Σ w·conf, Σ w) over the voters that know the tag.
    sums: std::collections::BTreeMap<TagId, (f64, f64)>,
}

impl ConfidenceVoteAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a voter's weight (counted once per voter, whether or not it
    /// knows any tag).
    pub fn add_voter(&mut self, weight: f64) {
        self.total_weight += weight;
    }

    /// Adds one voter's confidence vote for one tag.
    pub fn add_vote(&mut self, tag: TagId, weight: f64, confidence: f64) {
        let entry = self.sums.entry(tag).or_insert((0.0, 0.0));
        entry.0 += weight * confidence;
        entry.1 += weight;
    }

    /// Produces the combined, descending-sorted predictions.
    pub fn finish(self, coverage_damping: f64) -> Vec<TagPrediction> {
        if self.total_weight <= 0.0 {
            return Vec::new();
        }
        let total_weight = self.total_weight;
        let mut out: Vec<TagPrediction> = self
            .sums
            .into_iter()
            .filter(|&(_, (_, knowing_weight))| knowing_weight > 0.0)
            .map(|(tag, (weighted_conf, knowing_weight))| {
                let score = (weighted_conf / knowing_weight)
                    * (knowing_weight / total_weight).powf(coverage_damping);
                TagPrediction {
                    tag,
                    score,
                    confidence: score,
                }
            })
            .collect();
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        out
    }
}

/// Combines several per-tag score lists into one by weighted majority voting:
/// each voter's weight applies to every tag, and a voter that does not know a
/// tag implicitly votes 0 (abstains negatively). This keeps tags that only a
/// minority of distant models would assign from leaking into the prediction.
pub fn combine_weighted_scores(lists: &[(f64, Vec<TagPrediction>)]) -> Vec<TagPrediction> {
    use std::collections::BTreeMap;
    let total_weight: f64 = lists.iter().map(|(w, _)| *w).sum();
    let mut sums: BTreeMap<TagId, f64> = BTreeMap::new();
    for (weight, scores) in lists {
        for p in scores {
            *sums.entry(p.tag).or_insert(0.0) += weight * p.score;
        }
    }
    let mut out: Vec<TagPrediction> = sums
        .into_iter()
        .map(|(tag, weighted)| {
            let score = if total_weight > 0.0 {
                weighted / total_weight
            } else {
                0.0
            };
            TagPrediction {
                tag,
                score,
                confidence: 1.0 / (1.0 + (-score).exp()),
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred(tag: TagId, score: f64) -> TagPrediction {
        TagPrediction {
            tag,
            score,
            confidence: 0.5,
        }
    }

    #[test]
    fn select_tags_above_threshold() {
        let scores = vec![pred(1, 0.5), pred(2, -0.3), pred(3, 0.1)];
        assert_eq!(select_tags(&scores, 0.0, 1), BTreeSet::from([1, 3]));
    }

    #[test]
    fn select_tags_falls_back_to_top_k() {
        let scores = vec![pred(1, -0.5), pred(2, -0.1), pred(3, -0.9)];
        assert_eq!(select_tags(&scores, 0.0, 1), BTreeSet::from([2]));
        assert_eq!(select_tags(&scores, 0.0, 2), BTreeSet::from([1, 2]));
    }

    #[test]
    fn select_tags_empty_input() {
        assert!(select_tags(&[], 0.0, 3).is_empty());
    }

    #[test]
    fn adaptive_selection_suppresses_weak_spurious_votes() {
        let scores = vec![pred(1, 0.6), pred(2, 0.5), pred(3, 0.05), pred(4, -0.2)];
        let tags = select_tags_adaptive(&scores, 0.0, 0.5, 1);
        assert_eq!(tags, BTreeSet::from([1, 2]));
    }

    #[test]
    fn adaptive_selection_falls_back_to_best_tag() {
        let scores = vec![pred(1, -0.4), pred(2, -0.9)];
        assert_eq!(
            select_tags_adaptive(&scores, 0.0, 0.5, 1),
            BTreeSet::from([1])
        );
        assert!(select_tags_adaptive(&[], 0.0, 0.5, 1).is_empty());
    }

    #[test]
    fn nan_scores_neither_poison_ordering_nor_get_selected() {
        // One NaN vote among finite ones: the fallback must still return the
        // best finite tags, deterministically, and never the NaN tag.
        let scores = vec![
            pred(1, -0.8),
            pred(2, f64::NAN),
            pred(3, -0.1),
            pred(4, -0.5),
        ];
        assert_eq!(select_tags(&scores, 0.0, 1), BTreeSet::from([3]));
        assert_eq!(select_tags(&scores, 0.0, 2), BTreeSet::from([3, 4]));
        assert_eq!(
            select_tags_adaptive(&scores, 0.0, 0.5, 2),
            BTreeSet::from([3, 4])
        );
        // NaN in the threshold filter is never "above".
        assert_eq!(select_tags(&scores, -0.9, 1), BTreeSet::from([1, 3, 4]));
        // All-NaN input selects nothing instead of arbitrary tags.
        let all_nan = vec![pred(1, f64::NAN), pred(2, f64::NAN)];
        assert!(select_tags(&all_nan, 0.0, 1).is_empty());
        assert!(select_tags_adaptive(&all_nan, 0.0, 0.5, 1).is_empty());
    }

    #[test]
    fn combine_weighted_scores_averages() {
        let lists = vec![
            (1.0, vec![pred(1, 1.0), pred(2, -1.0)]),
            (3.0, vec![pred(1, -1.0)]),
        ];
        let combined = combine_weighted_scores(&lists);
        let tag1 = combined.iter().find(|p| p.tag == 1).unwrap();
        // (1*1 + 3*(-1)) / 4 = -0.5
        assert!((tag1.score - (-0.5)).abs() < 1e-12);
        // Tag 2 is only known to the first voter; the second voter abstains,
        // so its weight still appears in the denominator: (1*-1) / 4 = -0.25.
        let tag2 = combined.iter().find(|p| p.tag == 2).unwrap();
        assert!((tag2.score - (-0.25)).abs() < 1e-12);
        // Sorted descending by score.
        assert!(combined[0].score >= combined[1].score);
    }

    #[test]
    fn combine_empty_is_empty() {
        assert!(combine_weighted_scores(&[]).is_empty());
    }
}
