//! PACE — adaptive ensemble classification in P2P networks.
//!
//! Protocol phases, following §2 of the P2PDocTagger paper:
//!
//! 1. **Local training** — every peer trains a *linear* SVM per tag on its
//!    local data (cheap to train, tiny to ship) and clusters its local
//!    training vectors with k-means.
//! 2. **Propagation** — the linear models and the cluster centroids are
//!    propagated to all other peers. No document vectors ever travel, which is
//!    PACE's privacy and cost advantage.
//! 3. **Indexing** — receivers index the models by their centroids using
//!    locality-sensitive hashing.
//! 4. **Prediction** — given a document vector, the peer retrieves the top-k
//!    "nearest" models from its index (distance between the test vector and
//!    the models' centroids), lets them vote, and weights each vote by the
//!    model's training accuracy and its distance to the test vector — thereby
//!    *adapting to the test data distribution*. Prediction is entirely local:
//!    zero communication per query.
//! 5. **Refinement** — the peer retrains its local model with the corrected
//!    example and re-propagates it.

use crate::error::ProtocolError;
use crate::protocol::{
    combine_confidence_votes, ConfidenceVoteAccumulator, P2PTagClassifier, PeerDataMap,
    ScoringBackend, TrainingBackend,
};
use crate::reliable::{LinkStats, ReliableLink, SendOutcome};
use crate::wire::{self, WireConfig, WireCost};
use ml::batch::TagWeightMatrix;
use ml::kmeans::{KMeans, KMeansConfig};
use ml::lsh::{LshConfig, LshIndex};
use ml::multilabel::{OneVsAllModel, OneVsAllTrainer, TagPrediction};
use ml::svm::{LinearSvm, LinearSvmTrainer};
use ml::{MultiLabelDataset, MultiLabelExample, TagId};
use p2psim::message::MessageKind;
use p2psim::{P2PNetwork, PeerBitset, PeerId};
use std::collections::BTreeSet;
use textproc::SparseVector;

/// Peers trained per parallel fan-out before their models are propagated and
/// their dense classifiers dropped. Bounds the transient dense-model working
/// set to `TRAIN_CHUNK × per-model bytes` regardless of network size while
/// keeping every core busy within a chunk.
const TRAIN_CHUNK: usize = 512;

/// Configuration of the PACE protocol.
#[derive(Debug, Clone)]
pub struct PaceConfig {
    /// Trainer for the per-tag linear SVMs.
    pub svm: LinearSvmTrainer,
    /// One-vs-all reduction settings.
    pub one_vs_all: OneVsAllTrainer,
    /// K-means settings for the local-data centroids.
    pub kmeans: KMeansConfig,
    /// LSH index settings.
    pub lsh: LshConfig,
    /// Number of nearest models consulted per prediction.
    pub top_k: usize,
    /// When `false`, the LSH index is bypassed and models are ranked by exact
    /// distance (the "LSH off" ablation A1).
    pub use_lsh: bool,
    /// Decision threshold for assigning a tag after voting.
    pub vote_threshold: f64,
    /// Relative vote cutoff: a tag must also reach this fraction of the best
    /// tag's score (calibrates ensemble votes; see
    /// [`crate::protocol::select_tags_adaptive`]).
    pub rel_threshold: f64,
    /// Minimum number of tags assigned when nothing reaches the threshold.
    pub min_tags: usize,
    /// Sharpness of the distance adaptation: a consulted model's vote weight
    /// is `accuracy · exp(−sharpness · distance)`, so larger values
    /// concentrate the ensemble on models whose training data resembles the
    /// test document.
    pub distance_sharpness: f64,
    /// Coverage damping of per-tag vote normalization (see
    /// [`crate::protocol::combine_confidence_votes`]): `0.0` fully trusts the
    /// models that know a tag however few they are, `1.0` counts every
    /// ignorant model as a "no" vote.
    pub coverage_damping: f64,
    /// Query-time scoring implementation. [`ScoringBackend::Batched`] (the
    /// default) scores each consulted model's whole tag universe in one pass
    /// over the document via its packed [`TagWeightMatrix`];
    /// [`ScoringBackend::Scalar`] keeps the pre-refactor per-tag loops as a
    /// reference. Both produce identical predictions.
    pub backend: ScoringBackend,
    /// Training-time implementation. [`TrainingBackend::Csr`] (the default)
    /// runs every peer's one-vs-all fit off one shared CSR arena (shared DCD
    /// diagonal and shuffle orders, reused solver scratch);
    /// [`TrainingBackend::Scalar`] keeps the pre-refactor per-tag slice loops
    /// as the reference. Both produce bit-identical models.
    pub train_backend: TrainingBackend,
    /// Wire accounting. Under [`WireCost::Measured`] (the default) every
    /// model + centroid propagation is really encoded — sends charge the
    /// frame length and the ensemble installs the *decoded* copy, so lossy
    /// settings ([`WireConfig::precision`], [`WireConfig::prune_top_k`])
    /// honestly affect predictions. [`WireCost::Estimated`] keeps the legacy
    /// `wire_size()` reference accounting.
    pub wire: WireConfig,
}

impl Default for PaceConfig {
    fn default() -> Self {
        Self {
            svm: LinearSvmTrainer::default(),
            one_vs_all: OneVsAllTrainer::default(),
            kmeans: KMeansConfig {
                k: 3,
                ..Default::default()
            },
            lsh: LshConfig::default(),
            top_k: 7,
            use_lsh: true,
            vote_threshold: 0.0,
            rel_threshold: 0.7,
            min_tags: 1,
            distance_sharpness: 2.0,
            coverage_damping: 0.4,
            backend: ScoringBackend::default(),
            train_backend: TrainingBackend::default(),
            wire: WireConfig::default(),
        }
    }
}

/// One peer's contribution to the ensemble.
///
/// Crate-visible: the monolithic [`Pace`] instance and the per-peer sans-io
/// core ([`crate::sansio::PaceCore`]) share this one model body — training,
/// assembly and scoring live here and in the free functions below, so the
/// two drivers cannot drift apart.
#[derive(Debug, Clone)]
pub(crate) struct PaceModel {
    source: PeerId,
    /// Dense per-tag classifiers. Present while a model is being assembled
    /// and propagated (the wire paths encode from it) and kept at rest only
    /// under the Scalar backend, whose scoring walks per-classifier weights.
    /// Under the batched backend the registry drops this after storing —
    /// `matrix` carries the same weights sparsely at a fraction of the
    /// bytes, which is what keeps 10k-peer ensembles affordable — and
    /// [`Self::warm_model`] reconstructs the dense form on demand.
    model: Option<OneVsAllModel<LinearSvm>>,
    /// The per-tag weight vectors of `model` packed into one CSR matrix, so
    /// the batched backend scores the whole tag universe in a single pass.
    matrix: TagWeightMatrix,
    centroids: Vec<SparseVector>,
    /// Cached `‖c‖²` per centroid, so the batched backend's distance
    /// computation skips re-deriving centroid norms on every query.
    centroid_norms_sq: Vec<f64>,
    /// Training accuracy of the source peer's model on its own data, used as
    /// the vote weight numerator.
    accuracy: f64,
}

impl PaceModel {
    fn wire_size(&self) -> usize {
        self.warm_model().wire_size() + 8
    }

    /// The dense classifiers — borrowed directly when retained, else a
    /// transient reconstruction out of the CSR matrix (identical weights; see
    /// [`TagWeightMatrix::to_one_vs_all`]).
    pub(crate) fn warm_model(&self) -> std::borrow::Cow<'_, OneVsAllModel<LinearSvm>> {
        match &self.model {
            Some(m) => std::borrow::Cow::Borrowed(m),
            None => std::borrow::Cow::Owned(self.matrix.to_one_vs_all()),
        }
    }

    fn centroid_wire_size(&self) -> usize {
        self.centroids.iter().map(SparseVector::wire_size).sum()
    }

    /// Distance from a query vector to this model (nearest centroid), the
    /// pre-refactor way: every centroid norm is recomputed per query.
    fn distance_to_scalar(&self, x: &SparseVector) -> f64 {
        self.centroids
            .iter()
            .map(|c| c.distance(x))
            .fold(f64::INFINITY, f64::min)
    }

    /// Same distance with the cached centroid norms and a precomputed query
    /// norm: evaluates the identical expression
    /// `sqrt(max(‖c‖² + ‖x‖² − 2·c·x, 0))`, so the result is bit-for-bit the
    /// same as [`Self::distance_to_scalar`].
    fn distance_to_batched(&self, x: &SparseVector, x_norm_sq: f64) -> f64 {
        self.centroids
            .iter()
            .zip(&self.centroid_norms_sq)
            .map(|(c, &c_norm_sq)| (c_norm_sq + x_norm_sq - 2.0 * c.dot(x)).max(0.0).sqrt())
            .fold(f64::INFINITY, f64::min)
    }

    fn distance_to(&self, x: &SparseVector, backend: ScoringBackend, x_norm_sq: f64) -> f64 {
        match backend {
            ScoringBackend::Scalar => self.distance_to_scalar(x),
            ScoringBackend::Batched => self.distance_to_batched(x, x_norm_sq),
        }
    }

    /// The peer that trained this model.
    pub(crate) fn source(&self) -> PeerId {
        self.source
    }

    /// The training accuracy propagated with the model (the vote weight
    /// numerator).
    pub(crate) fn accuracy(&self) -> f64 {
        self.accuracy
    }

    /// The propagated k-means centroids.
    pub(crate) fn centroids(&self) -> &[SparseVector] {
        &self.centroids
    }

    /// Assembles an ensemble entry from its propagated parts, rebuilding the
    /// derived scoring structures (packed weight matrix, cached centroid
    /// norms). Used both when a model is trained locally and when it is
    /// decoded back out of a wire frame — the decoded path **must** rebuild
    /// these here, so lossy wire settings honestly reach every scoring path.
    pub(crate) fn assemble(
        source: PeerId,
        model: OneVsAllModel<LinearSvm>,
        centroids: Vec<SparseVector>,
        accuracy: f64,
    ) -> Self {
        let matrix = model.weight_matrix();
        let centroid_norms_sq = centroids.iter().map(SparseVector::norm_sq).collect();
        Self {
            source,
            model: Some(model),
            matrix,
            centroids,
            centroid_norms_sq,
            accuracy,
        }
    }
}

/// Trains one peer's PACE contribution — per-tag linear SVMs, guarded
/// propagation pruning, averaged training accuracy, k-means centroids — from
/// its local data, warm-starting from `warm` when given.
///
/// This is the single protocol body shared by the monolithic [`Pace`]
/// instance (simulator driver) and the per-peer sans-io
/// [`crate::sansio::PaceCore`] (socket driver): both train through here, so
/// the model a peer propagates is identical whichever driver runs it.
pub(crate) fn train_pace_model(
    config: &PaceConfig,
    peer: PeerId,
    data: &MultiLabelDataset,
    warm: Option<&OneVsAllModel<LinearSvm>>,
) -> Option<PaceModel> {
    if data.is_empty() {
        return None;
    }
    let model = match (config.train_backend, warm) {
        (TrainingBackend::Csr, Some(prev)) => {
            config
                .one_vs_all
                .train_linear_warm_csr(data, &config.svm, prev)
        }
        (TrainingBackend::Csr, None) => config.one_vs_all.train_linear_csr(data, &config.svm),
        (TrainingBackend::Scalar, Some(prev)) => {
            config.one_vs_all.train_linear_warm(data, &config.svm, prev)
        }
        (TrainingBackend::Scalar, None) => config.one_vs_all.train_linear(data, &config.svm),
    };
    if model.num_tags() == 0 {
        return None;
    }
    // Accuracy-guarded propagation pruning: when the measured wire is
    // configured to prune, the peer ships (and votes with) the top-k
    // weights per tag — unless that would cost more local training
    // accuracy than the guard allows, in which case the full model
    // stands. The accuracy below is computed on the model that actually
    // propagates.
    let model = match (config.wire.cost, config.wire.prune_top_k) {
        (WireCost::Measured, Some(k)) => {
            ml::codec::prune_model_guarded(&model, k, data, config.wire.prune_guard)
        }
        _ => model,
    };
    let matrix = model.weight_matrix();
    // Training accuracy, averaged over the per-tag binary problems. One
    // batched pass per training document scores every tag at once; the
    // per-tag correct counts (and therefore the averaged accuracy) are
    // identical to running each classifier over the corpus separately.
    let mut correct = vec![0usize; matrix.num_tags()];
    let mut decisions = Vec::new();
    for (x, tags) in data.iter() {
        matrix.decisions_into(x, &mut decisions);
        for (slot, &tag) in matrix.tags().iter().enumerate() {
            if (decisions[slot] >= 0.0) == tags.contains(&tag) {
                correct[slot] += 1;
            }
        }
    }
    let accuracy = if matrix.num_tags() > 0 {
        let acc_sum: f64 = correct.iter().map(|&c| c as f64 / data.len() as f64).sum();
        acc_sum / matrix.num_tags() as f64
    } else {
        0.5
    };
    // K-means runs on the borrowed vector slice — no per-peer clone of
    // the training corpus.
    let kmeans = KMeans::fit(data.vectors(), &config.kmeans);
    let centroids = kmeans.centroids().to_vec();
    let centroid_norms_sq = centroids.iter().map(SparseVector::norm_sq).collect();
    Some(PaceModel {
        source: peer,
        model: Some(model),
        matrix,
        centroids,
        centroid_norms_sq,
        accuracy,
    })
}

/// Ranks `candidates` by their centroid distance to the query and keeps the
/// `top_k` nearest — PACE's model-retrieval step, shared by the monolithic
/// exact-ranking path (`use_lsh: false`) and the sans-io core (which holds
/// its ensemble as a plain per-peer map and always ranks exactly).
pub(crate) fn rank_pace_models<'a>(
    config: &PaceConfig,
    candidates: impl Iterator<Item = &'a PaceModel>,
    x: &SparseVector,
    x_norm_sq: f64,
) -> Vec<(&'a PaceModel, f64)> {
    let mut ranked: Vec<(&PaceModel, f64)> = candidates
        .map(|m| (m, m.distance_to(x, config.backend, x_norm_sq)))
        .collect();
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    ranked.truncate(config.top_k.max(1));
    ranked
}

/// Combines the consulted models' votes into per-tag scores — PACE's
/// adaptation step (vote weight = accuracy · exp(−sharpness · distance)),
/// shared verbatim by [`Pace`] and [`crate::sansio::PaceCore`] so both
/// drivers vote identically over the same ensemble.
pub(crate) fn combine_pace_votes(
    config: &PaceConfig,
    nearest: &[(&PaceModel, f64)],
    x: &SparseVector,
) -> Vec<TagPrediction> {
    match config.backend {
        ScoringBackend::Scalar => {
            // Pre-refactor reference: one sorted, allocated score list per
            // consulted model, one dot product per (model, tag).
            let votes: Vec<(f64, Vec<TagPrediction>)> = nearest
                .iter()
                .map(|&(m, dist)| {
                    let weight = m.accuracy * (-config.distance_sharpness * dist).exp();
                    let scores = m
                        .model
                        .as_ref()
                        .expect("the Scalar backend retains dense classifiers")
                        .scores(x)
                        .into_iter()
                        .map(|p| TagPrediction {
                            score: p.confidence,
                            ..p
                        })
                        .collect();
                    (weight, scores)
                })
                .collect();
            combine_confidence_votes(&votes, config.coverage_damping)
        }
        ScoringBackend::Batched => {
            // Batched path: each model's packed matrix scores its whole
            // tag universe in one pass over the document's nonzeros, and
            // the confidences stream straight into the shared vote
            // accumulator (no per-model allocation, no per-model sort —
            // the combination is per-tag, so the order of a model's votes
            // is irrelevant and the result is identical to the scalar
            // path).
            let mut acc = ConfidenceVoteAccumulator::new();
            let mut decisions = Vec::new();
            let mut votes = Vec::new();
            for &(m, dist) in nearest {
                let weight = m.accuracy * (-config.distance_sharpness * dist).exp();
                acc.add_voter(weight);
                m.matrix
                    .confidence_votes_into(x, &mut decisions, &mut votes);
                for p in &votes {
                    acc.add_vote(p.tag, weight, p.score);
                }
            }
            acc.finish(config.coverage_damping)
        }
    }
}

/// The PACE protocol instance.
///
/// Peer state is arena/SoA-laid-out for scale: the model registry is a dense
/// slab indexed by peer (not a map of heap nodes), and the "who received
/// whose model" relation is a bitset matrix — n² *bits*, so 10 000 peers
/// cost ~12.5 MB where per-peer `BTreeSet`s would cost gigabytes.
#[derive(Debug, Clone)]
pub struct Pace {
    config: PaceConfig,
    /// All propagated models: a dense slab indexed by source peer
    /// (`None` = this peer has not contributed a model).
    models: Vec<Option<PaceModel>>,
    /// LSH index over model centroids → source peer.
    index: LshIndex<PeerId>,
    /// For every peer, the set of source peers whose model it received
    /// (broadcasts can fail for churned-out receivers). One bitset row per
    /// peer — the n×n delivery matrix.
    received: Vec<PeerBitset>,
    /// Per-peer local data retained for refinement retraining.
    local_data: Vec<MultiLabelDataset>,
    /// Peers whose local data grew while they were offline (or whose refit
    /// was otherwise skipped): retried on the next incremental round.
    dirty: PeerBitset,
    /// Per-source model version, bumped on every (re-)propagation — the
    /// currency of the anti-entropy digests.
    versions: Vec<u64>,
    /// The send path: passthrough by default, ack/retransmit when
    /// [`WireConfig::reliability`] is set. Also the ledger of every send
    /// outcome (losses, retransmits, re-syncs).
    link: ReliableLink,
    trained: bool,
}

impl Pace {
    /// Creates an untrained PACE instance.
    pub fn new(config: PaceConfig) -> Self {
        let index = LshIndex::new(config.lsh.clone());
        let link = ReliableLink::new(config.wire.reliability);
        Self {
            config,
            models: Vec::new(),
            index,
            received: Vec::new(),
            local_data: Vec::new(),
            dirty: PeerBitset::default(),
            versions: Vec::new(),
            link,
            trained: false,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PaceConfig {
        &self.config
    }

    /// Number of models in the ensemble.
    pub fn ensemble_size(&self) -> usize {
        self.models.iter().flatten().count()
    }

    /// The stored model slab entry for a peer, if it contributed one.
    fn model_of(&self, peer: PeerId) -> Option<&PaceModel> {
        self.models.get(peer.index()).and_then(Option::as_ref)
    }

    /// Trains one peer's local model + centroids from scratch.
    fn train_local(&self, peer: PeerId, data: &MultiLabelDataset) -> Option<PaceModel> {
        self.train_local_warm(peer, data, None)
    }

    /// Trains one peer's local model + centroids, warm-starting the per-tag
    /// SVMs from `warm` when given (the incremental path: a few SGD passes
    /// from the stored weights instead of a cold dual solve).
    fn train_local_warm(
        &self,
        peer: PeerId,
        data: &MultiLabelDataset,
        warm: Option<&OneVsAllModel<LinearSvm>>,
    ) -> Option<PaceModel> {
        train_pace_model(&self.config, peer, data, warm)
    }

    /// Broadcasts a model to all online peers, recording who received it, and
    /// installs it in the shared store and LSH index.
    ///
    /// Under [`WireCost::Measured`] the model and centroids are encoded into
    /// real wire frames **once** (every receiver gets the same payload), the
    /// sends charge the frame lengths, and the ensemble installs the model
    /// *decoded back out of the frames* — so the bytes the statistics record
    /// are exactly the bytes the predictions run on. Under
    /// [`WireCost::Estimated`] the legacy `wire_size()` estimates are charged
    /// and the in-memory model is installed untouched.
    fn propagate(&mut self, net: &mut P2PNetwork, pace_model: PaceModel, kind: MessageKind) {
        let source = pace_model.source;
        let (frames, model_bytes, centroid_bytes, pace_model) = match self.config.wire.cost {
            WireCost::Estimated => (
                None,
                pace_model.wire_size(),
                pace_model.centroid_wire_size(),
                pace_model,
            ),
            WireCost::Measured => {
                let model_frame = wire::encode_pace_model(
                    pace_model
                        .model
                        .as_ref()
                        .expect("freshly trained models carry their dense form"),
                    pace_model.accuracy,
                    self.config.wire.precision,
                );
                let centroid_frame = wire::encode_centroids(&pace_model.centroids);
                let (model, accuracy) = wire::decode_pace_model(&model_frame)
                    .expect("self-encoded PACE model frame decodes");
                let centroids = wire::decode_centroids(&centroid_frame)
                    .expect("self-encoded centroid frame decodes");
                let decoded = PaceModel::assemble(source, model, centroids, accuracy);
                let (model_len, centroid_len) = (model_frame.len(), centroid_frame.len());
                (
                    Some((model_frame, centroid_frame)),
                    model_len,
                    centroid_len,
                    decoded,
                )
            }
        };
        let n = net.num_peers();
        if self.received.len() < n {
            self.received.resize_with(n, || PeerBitset::new(n));
        }
        if self.versions.len() < n {
            self.versions.resize(n, 0);
        }
        self.versions[source.index()] += 1;
        // A peer always "has" its own model.
        self.received[source.index()].insert(source);
        // Index walk: no target list is materialized for the O(peers)
        // broadcast, so the only per-propagation allocations are the wire
        // frames encoded once above. Every send routes through the link, so
        // no outcome is silently discarded.
        for i in 0..n {
            let to = PeerId::from(i);
            if to == source {
                continue;
            }
            let (model_out, centroid_out) = match &frames {
                Some((model_frame, centroid_frame)) => (
                    self.link
                        .deliver_frame(net, source, to, kind, model_frame, |b| {
                            wire::decode_pace_model(b).is_ok()
                        }),
                    self.link.deliver_frame(
                        net,
                        source,
                        to,
                        MessageKind::CentroidPropagation,
                        centroid_frame,
                        |b| wire::decode_centroids(b).is_ok(),
                    ),
                ),
                None => (
                    self.link.deliver_sized(net, source, to, kind, model_bytes),
                    self.link.deliver_sized(
                        net,
                        source,
                        to,
                        MessageKind::CentroidPropagation,
                        centroid_bytes,
                    ),
                ),
            };
            match (model_out, centroid_out) {
                (SendOutcome::Arrived, SendOutcome::Arrived) => {
                    self.received[to.index()].insert(source);
                }
                // A fault drop means the receiver provably missed *this*
                // version while its old slab entry is gone: clear the bit so
                // anti-entropy can repair the gap. Offline failures keep the
                // pre-fault semantics (bit untouched), so fault-free runs
                // behave bit-identically to the pre-reliability send path.
                (SendOutcome::FaultLost, _) | (_, SendOutcome::FaultLost) => {
                    self.received[to.index()].remove(source);
                }
                _ => {}
            }
        }
        // Replacing a peer's model: its old centroids must leave the index,
        // otherwise incremental re-propagations accumulate stale positions
        // that crowd the candidate set and skew model retrieval.
        if self.models.len() < n {
            self.models.resize_with(n, || None);
        }
        if self.model_of(source).is_some() {
            self.index.retire_matching(|s| *s == source);
        }
        for c in &pace_model.centroids {
            self.index.insert(c.clone(), source);
        }
        let mut pace_model = pace_model;
        if matches!(self.config.backend, ScoringBackend::Batched) {
            // At rest the batched backend scores through `matrix` and
            // warm-starts reconstruct from it, so the dense classifiers are
            // dead weight — dropping them here is what keeps the registry's
            // per-peer footprint sparse-sized at 10k peers.
            pace_model.model = None;
        }
        self.models[source.index()] = Some(pace_model);
    }

    /// The top-k models available to `peer` for a query, with their distances.
    fn nearest_models(&self, peer: PeerId, x: &SparseVector) -> Vec<(&PaceModel, f64)> {
        let Some(available) = self.received.get(peer.index()).filter(|a| !a.is_empty()) else {
            return Vec::new();
        };
        let backend = self.config.backend;
        // The query norm appears in every centroid distance; the batched
        // backend computes it once per query instead of once per centroid.
        let x_norm_sq = x.norm_sq();
        if !self.config.use_lsh {
            // Exact ranking over everything this peer holds — the same
            // shared body the sans-io core ranks its ensemble map with.
            return rank_pace_models(
                &self.config,
                available.ones().filter_map(|s| self.model_of(s)),
                x,
                x_norm_sq,
            );
        }
        let mut candidates: Vec<(&PaceModel, f64)> = {
            // Over-fetch from the index (several centroids can map to the same
            // model, and some candidates may not have reached this peer).
            let want = self.config.top_k * 4 + 8;
            let hits = match backend {
                ScoringBackend::Scalar => self.index.query(x, want),
                ScoringBackend::Batched => self.index.query_batched(x, want),
            };
            let mut seen = BTreeSet::new();
            let mut out = Vec::new();
            for (source, _dist) in hits {
                if !available.contains(*source) || !seen.insert(*source) {
                    continue;
                }
                if let Some(m) = self.model_of(*source) {
                    out.push((m, m.distance_to(x, backend, x_norm_sq)));
                }
            }
            out
        };
        candidates.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        candidates.truncate(self.config.top_k.max(1));
        candidates
    }

    /// Per-tag scores for a query, computed entirely locally (PACE's
    /// prediction phase is communication-free, so this only needs shared
    /// access to the network for the online check — which is what lets
    /// [`P2PTagClassifier::predict_batch`] fan queries out in parallel).
    fn scores_local(
        &self,
        net: &P2PNetwork,
        peer: PeerId,
        x: &SparseVector,
    ) -> Result<Vec<TagPrediction>, ProtocolError> {
        if !self.trained {
            return Err(ProtocolError::NotTrained);
        }
        if !net.is_online(peer) {
            return Err(ProtocolError::PeerOffline);
        }
        let nearest = self.nearest_models(peer, x);
        if nearest.is_empty() {
            return Err(ProtocolError::NoModelReachable);
        }
        // Weight each model's vote by accuracy and distance — this is PACE's
        // adaptation to the test data distribution. Models vote with their
        // squashed confidence, not the raw SVM margin: margins from different
        // peers' models are not calibrated against each other, and averaging
        // them lets a few confidently-negative models drown out the models
        // that actually know a tag (which collapses recall). The per-tag
        // normalization and coverage damping live in
        // [`combine_confidence_votes`] / [`ConfidenceVoteAccumulator`],
        // reached through the driver-shared [`combine_pace_votes`] body.
        Ok(combine_pace_votes(&self.config, &nearest, x))
    }
}

impl P2PTagClassifier for Pace {
    fn name(&self) -> &'static str {
        "pace"
    }

    fn train(
        &mut self,
        net: &mut P2PNetwork,
        peer_data: &PeerDataMap,
    ) -> Result<(), ProtocolError> {
        let n = net.num_peers();
        self.models = (0..n).map(|_| None).collect();
        self.index = LshIndex::new(self.config.lsh.clone());
        self.received = (0..n).map(|_| PeerBitset::new(n)).collect();
        self.dirty = PeerBitset::new(n);
        self.versions = vec![0; n];
        self.local_data = peer_data.clone();
        self.local_data
            .resize(net.num_peers(), MultiLabelDataset::new());

        // Per-peer local training is embarrassingly parallel: each peer's SVMs
        // and centroids depend only on its own data (every trainer seeds its
        // own RNG, nothing is shared). The ordered par_map keeps the model
        // list in peer order, so the sequential propagation below sends the
        // same messages in the same order as the pre-refactor per-peer loop.
        let jobs: Vec<(PeerId, &MultiLabelDataset)> = peer_data
            .iter()
            .enumerate()
            .map(|(i, data)| (PeerId::from(i), data))
            .collect();
        // Training runs in bounded chunks, each propagated (and its dense
        // classifiers dropped) before the next chunk trains: at 10k peers,
        // holding every freshly trained dense model at once would dwarf the
        // sparse registry the chunks feed.
        for chunk in jobs.chunks(TRAIN_CHUNK) {
            let net_ref: &P2PNetwork = net;
            let models = parallel::par_map(chunk, |&(peer, data)| {
                if !net_ref.is_online(peer) {
                    return None;
                }
                self.train_local(peer, data)
            });
            for model in models.into_iter().flatten() {
                self.propagate(net, model, MessageKind::ModelPropagation);
            }
        }
        // Offline peers keep their data; the next incremental round folds it
        // in once they are back online.
        for &(peer, data) in &jobs {
            if !data.is_empty() && !net.is_online(peer) {
                self.dirty.insert(peer);
            }
        }
        self.trained = true;
        Ok(())
    }

    fn scores(
        &self,
        net: &mut P2PNetwork,
        peer: PeerId,
        x: &SparseVector,
    ) -> Result<Vec<TagPrediction>, ProtocolError> {
        self.scores_local(net, peer, x)
    }

    fn predict(
        &self,
        net: &mut P2PNetwork,
        peer: PeerId,
        x: &SparseVector,
    ) -> Result<BTreeSet<TagId>, ProtocolError> {
        let scores = self.scores_local(net, peer, x)?;
        Ok(crate::protocol::select_tags_adaptive(
            &scores,
            self.config.vote_threshold,
            self.config.rel_threshold,
            self.config.min_tags,
        ))
    }

    fn predict_batch(
        &self,
        net: &mut P2PNetwork,
        requests: &[(PeerId, &SparseVector)],
    ) -> Vec<Result<BTreeSet<TagId>, ProtocolError>> {
        // PACE prediction is entirely local (zero communication per query),
        // so a batch of documents fans out across cores; the ordered
        // reduction returns results in request order, identical to the
        // sequential loop.
        let net_ref: &P2PNetwork = net;
        parallel::par_map(requests, |&(peer, x)| {
            let scores = self.scores_local(net_ref, peer, x)?;
            Ok(crate::protocol::select_tags_adaptive(
                &scores,
                self.config.vote_threshold,
                self.config.rel_threshold,
                self.config.min_tags,
            ))
        })
    }

    fn train_incremental(
        &mut self,
        net: &mut P2PNetwork,
        new_data: &PeerDataMap,
    ) -> Result<(), ProtocolError> {
        if !self.trained {
            return Err(ProtocolError::NotTrained);
        }
        if self.local_data.len() < net.num_peers() {
            self.local_data
                .resize(net.num_peers(), MultiLabelDataset::new());
        }
        // Fold the new examples into the per-peer stores first, then
        // warm-start retrain every peer with unabsorbed data — the ones that
        // just received examples plus the ones still dirty from rounds they
        // spent offline.
        for (i, data) in new_data.iter().enumerate() {
            if data.is_empty() {
                continue;
            }
            if i >= self.local_data.len() {
                self.local_data.resize(i + 1, MultiLabelDataset::new());
            }
            self.local_data[i].extend_from(data);
            self.dirty.insert(PeerId::from(i));
        }
        let touched: Vec<PeerId> = self.dirty.ones().collect();
        // Same shape as train(): independent per-peer refits fan out across
        // cores in bounded chunks, the ordered reduction keeps propagation
        // order deterministic.
        for chunk in touched.chunks(TRAIN_CHUNK) {
            let net_ref: &P2PNetwork = net;
            let models = parallel::par_map(chunk, |&peer| {
                if !net_ref.is_online(peer) {
                    return None;
                }
                let warm = self.model_of(peer).map(|m| m.warm_model());
                self.train_local_warm(peer, &self.local_data[peer.index()], warm.as_deref())
            });
            for model in models.into_iter().flatten() {
                // Replaces this peer's model in the ensemble and swaps its
                // centroids in the LSH index.
                self.dirty.remove(model.source);
                self.propagate(net, model, MessageKind::ModelPropagation);
            }
        }
        Ok(())
    }

    fn refine(
        &mut self,
        net: &mut P2PNetwork,
        peer: PeerId,
        example: &MultiLabelExample,
    ) -> Result<(), ProtocolError> {
        if !self.trained {
            return Err(ProtocolError::NotTrained);
        }
        if !net.is_online(peer) {
            return Err(ProtocolError::PeerOffline);
        }
        let idx = peer.index();
        if idx >= self.local_data.len() {
            self.local_data.resize(idx + 1, MultiLabelDataset::new());
        }
        self.local_data[idx].push(example.clone());
        let warm = self.model_of(peer).map(|m| m.warm_model());
        if let Some(model) = self.train_local_warm(peer, &self.local_data[idx], warm.as_deref()) {
            // Re-propagating replaces this peer's model in the ensemble and
            // swaps its centroids in the LSH index.
            self.dirty.remove(peer);
            self.propagate(net, model, MessageKind::RefinementUpdate);
        }
        Ok(())
    }

    fn on_crash_restart(&mut self, _net: &mut P2PNetwork, peer: PeerId) {
        // A restart wipes what the peer had fetched over the wire: its row of
        // the delivery matrix empties, so every remote model must be repaired
        // by anti-entropy. Its durable local data survives, and with it its
        // own model (re-derivable locally without touching the network).
        let has_own = self.model_of(peer).is_some();
        if let Some(row) = self.received.get_mut(peer.index()) {
            row.clear();
            if has_own {
                row.insert(peer);
            }
        }
    }

    fn resync(&mut self, net: &mut P2PNetwork, peer: PeerId) -> usize {
        if !self.trained || !net.is_online(peer) || peer.index() >= self.received.len() {
            return 0;
        }
        // Deterministic anti-entropy partner: the lowest-indexed online peer
        // (other than the rejoiner) that holds any models.
        let partner = (0..net.num_peers()).map(PeerId::from).find(|&p| {
            p != peer
                && net.is_online(p)
                && self
                    .received
                    .get(p.index())
                    .is_some_and(|row| !row.is_empty())
        });
        let Some(partner) = partner else { return 0 };
        // The rejoining peer advertises its holdings as a (source, version)
        // digest; the partner replies with the models the peer lacks.
        let digest: Vec<(u64, u64)> = self.received[peer.index()]
            .ones()
            .map(|s| (s.0, self.versions.get(s.index()).copied().unwrap_or(0)))
            .collect();
        let digest_frame = wire::encode_digest(&digest);
        let digest_out = match self.config.wire.cost {
            WireCost::Measured => self.link.deliver_frame(
                net,
                peer,
                partner,
                MessageKind::AntiEntropy,
                &digest_frame,
                |b| wire::decode_digest(b).is_ok(),
            ),
            WireCost::Estimated => self.link.deliver_sized(
                net,
                peer,
                partner,
                MessageKind::AntiEntropy,
                digest_frame.len(),
            ),
        };
        if digest_out != SendOutcome::Arrived {
            return 0;
        }
        let missing: Vec<PeerId> = self.received[partner.index()]
            .ones()
            .filter(|&s| !self.received[peer.index()].contains(s))
            .collect();
        let mut repaired = 0;
        for source in missing {
            // Encode the partner's copy before touching the link (the model
            // borrow must end before the mutable send).
            let payload = self.model_of(source).map(|m| match self.config.wire.cost {
                WireCost::Measured => {
                    let model_frame = wire::encode_pace_model(
                        &m.warm_model(),
                        m.accuracy,
                        self.config.wire.precision,
                    );
                    let centroid_frame = wire::encode_centroids(&m.centroids);
                    (Some((model_frame, centroid_frame)), 0, 0)
                }
                WireCost::Estimated => (None, m.wire_size(), m.centroid_wire_size()),
            });
            let Some((frames, model_bytes, centroid_bytes)) = payload else {
                continue;
            };
            let (model_out, centroid_out) = match &frames {
                Some((model_frame, centroid_frame)) => (
                    self.link.deliver_frame(
                        net,
                        partner,
                        peer,
                        MessageKind::AntiEntropy,
                        model_frame,
                        |b| wire::decode_pace_model(b).is_ok(),
                    ),
                    self.link.deliver_frame(
                        net,
                        partner,
                        peer,
                        MessageKind::AntiEntropy,
                        centroid_frame,
                        |b| wire::decode_centroids(b).is_ok(),
                    ),
                ),
                None => (
                    self.link.deliver_sized(
                        net,
                        partner,
                        peer,
                        MessageKind::AntiEntropy,
                        model_bytes,
                    ),
                    self.link.deliver_sized(
                        net,
                        partner,
                        peer,
                        MessageKind::AntiEntropy,
                        centroid_bytes,
                    ),
                ),
            };
            if model_out == SendOutcome::Arrived && centroid_out == SendOutcome::Arrived {
                self.received[peer.index()].insert(source);
                self.link.note_resync();
                net.note_resync();
                repaired += 1;
            }
        }
        repaired
    }

    fn link_stats(&self) -> LinkStats {
        *self.link.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn toy_peer_data(num_peers: usize, per_peer: usize, seed: u64) -> PeerDataMap {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..num_peers)
            .map(|_| {
                let mut ds = MultiLabelDataset::new();
                for _ in 0..per_peer {
                    let which = rng.gen_range(0..3);
                    let a = 0.8 + rng.gen_range(0.0..0.4);
                    let b = 0.8 + rng.gen_range(0.0..0.4);
                    let (vector, tags): (SparseVector, Vec<TagId>) = match which {
                        0 => (SparseVector::from_pairs([(0, a)]), vec![1]),
                        1 => (SparseVector::from_pairs([(1, b)]), vec![2]),
                        _ => (SparseVector::from_pairs([(0, a), (1, b)]), vec![1, 2]),
                    };
                    ds.push(MultiLabelExample::new(vector, tags));
                }
                ds
            })
            .collect()
    }

    fn network(num_peers: usize) -> P2PNetwork {
        P2PNetwork::new(p2psim::SimConfig {
            num_peers,
            horizon_secs: 100_000,
            ..Default::default()
        })
    }

    #[test]
    fn trains_and_predicts_correct_tags() {
        let mut net = network(12);
        let data = toy_peer_data(12, 12, 1);
        let mut pace = Pace::new(PaceConfig::default());
        pace.train(&mut net, &data).unwrap();
        assert_eq!(pace.ensemble_size(), 12);

        let p = PeerId(5);
        let pred1 = pace
            .predict(&mut net, p, &SparseVector::from_pairs([(0, 1.0)]))
            .unwrap();
        assert!(pred1.contains(&1), "{pred1:?}");
        let pred2 = pace
            .predict(&mut net, p, &SparseVector::from_pairs([(1, 1.0)]))
            .unwrap();
        assert!(pred2.contains(&2), "{pred2:?}");
    }

    #[test]
    fn propagation_ships_models_and_centroids_but_no_training_data() {
        let mut net = network(10);
        let data = toy_peer_data(10, 10, 2);
        let mut pace = Pace::new(PaceConfig::default());
        pace.train(&mut net, &data).unwrap();
        let stats = net.stats();
        assert!(stats.kind(MessageKind::ModelPropagation).messages >= 9 * 10);
        assert!(stats.kind(MessageKind::CentroidPropagation).messages >= 9 * 10);
        assert_eq!(stats.kind(MessageKind::TrainingData).messages, 0);
        // Prediction is local: no DHT lookups, no prediction queries.
        assert_eq!(stats.kind(MessageKind::PredictionQuery).messages, 0);
    }

    #[test]
    fn prediction_is_free_of_communication() {
        let mut net = network(10);
        let data = toy_peer_data(10, 10, 3);
        let mut pace = Pace::new(PaceConfig::default());
        pace.train(&mut net, &data).unwrap();
        let before = net.stats().total_messages();
        for _ in 0..20 {
            pace.predict(&mut net, PeerId(2), &SparseVector::from_pairs([(0, 1.0)]))
                .unwrap();
        }
        assert_eq!(net.stats().total_messages(), before);
    }

    #[test]
    fn top_k_limits_the_number_of_voters() {
        let mut net = network(20);
        let data = toy_peer_data(20, 10, 4);
        let mut pace = Pace::new(PaceConfig {
            top_k: 3,
            ..Default::default()
        });
        pace.train(&mut net, &data).unwrap();
        let nearest = pace.nearest_models(PeerId(0), &SparseVector::from_pairs([(0, 1.0)]));
        assert!(nearest.len() <= 3);
        assert!(!nearest.is_empty());
    }

    #[test]
    fn lsh_and_exact_ranking_agree_on_predictions() {
        let mut net_a = network(16);
        let mut net_b = network(16);
        let data = toy_peer_data(16, 12, 5);
        let mut with_lsh = Pace::new(PaceConfig {
            use_lsh: true,
            ..Default::default()
        });
        let mut without_lsh = Pace::new(PaceConfig {
            use_lsh: false,
            ..Default::default()
        });
        with_lsh.train(&mut net_a, &data).unwrap();
        without_lsh.train(&mut net_b, &data).unwrap();
        let mut agree = 0;
        let probes = [
            SparseVector::from_pairs([(0, 1.0)]),
            SparseVector::from_pairs([(1, 1.0)]),
            SparseVector::from_pairs([(0, 1.0), (1, 1.0)]),
            SparseVector::from_pairs([(0, 0.9)]),
            SparseVector::from_pairs([(1, 1.2)]),
        ];
        for probe in &probes {
            let a = with_lsh.predict(&mut net_a, PeerId(1), probe).unwrap();
            let b = without_lsh.predict(&mut net_b, PeerId(1), probe).unwrap();
            if a == b {
                agree += 1;
            }
        }
        assert!(agree >= 4, "LSH changed too many predictions: {agree}/5");
    }

    #[test]
    fn untrained_protocol_errors() {
        let mut net = network(4);
        let pace = Pace::new(PaceConfig::default());
        assert_eq!(
            pace.scores(&mut net, PeerId(0), &SparseVector::from_pairs([(0, 1.0)]))
                .unwrap_err(),
            ProtocolError::NotTrained
        );
    }

    #[test]
    fn refinement_teaches_a_new_tag() {
        let mut net = network(8);
        let data = toy_peer_data(8, 10, 6);
        let mut pace = Pace::new(PaceConfig::default());
        pace.train(&mut net, &data).unwrap();
        let probe = SparseVector::from_pairs([(7, 1.5)]);
        let before = pace.predict(&mut net, PeerId(2), &probe).unwrap();
        assert!(!before.contains(&9));
        for i in 0..8 {
            let v = SparseVector::from_pairs([(7, 1.0 + 0.1 * i as f64)]);
            pace.refine(&mut net, PeerId(2), &MultiLabelExample::new(v, [9]))
                .unwrap();
        }
        let scores = pace.scores(&mut net, PeerId(2), &probe).unwrap();
        assert!(scores.iter().any(|p| p.tag == 9));
        assert!(net.stats().kind(MessageKind::RefinementUpdate).messages > 0);
    }

    #[test]
    fn incremental_training_folds_new_tags_in_without_full_retrain() {
        let mut net = network(10);
        let data = toy_peer_data(10, 10, 8);
        let mut pace = Pace::new(PaceConfig::default());
        assert_eq!(
            pace.train_incremental(&mut net, &data).unwrap_err(),
            ProtocolError::NotTrained
        );
        pace.train(&mut net, &data).unwrap();
        let probe = SparseVector::from_pairs([(6, 1.2)]);
        let before = pace.predict(&mut net, PeerId(3), &probe).unwrap();
        assert!(!before.contains(&5));
        // Peer 3 alone receives a batch of new documents carrying tag 5.
        let mut new_data = vec![MultiLabelDataset::new(); 10];
        for i in 0..10 {
            new_data[3].push(MultiLabelExample::new(
                SparseVector::from_pairs([(6, 1.0 + 0.05 * i as f64)]),
                [5],
            ));
        }
        let msgs_before = net.stats().kind(MessageKind::ModelPropagation).messages;
        pace.train_incremental(&mut net, &new_data).unwrap();
        // Only peer 3's refreshed model was re-propagated (one broadcast).
        let msgs_after = net.stats().kind(MessageKind::ModelPropagation).messages;
        assert_eq!(msgs_after - msgs_before, 9);
        let scores = pace.scores(&mut net, PeerId(3), &probe).unwrap();
        assert!(scores.iter().any(|p| p.tag == 5), "{scores:?}");
    }

    #[test]
    fn offline_peers_new_data_is_folded_in_once_they_return() {
        use p2psim::churn::ChurnModel;
        let mut net = P2PNetwork::new(p2psim::SimConfig {
            num_peers: 12,
            churn: ChurnModel::Exponential {
                mean_session_secs: 300.0,
                mean_offline_secs: 300.0,
            },
            horizon_secs: 1_000_000,
            seed: 3,
            ..Default::default()
        });
        let data = toy_peer_data(12, 10, 10);
        let mut pace = Pace::new(PaceConfig::default());
        pace.train(&mut net, &data).unwrap();
        // Find an offline peer and hand it new documents with a new tag.
        let mut guard = 0;
        while net.num_online() == 12 && guard < 1_000 {
            net.advance(p2psim::SimTime::from_secs(100));
            guard += 1;
        }
        let offline = net
            .peers()
            .find(|&p| !net.is_online(p))
            .expect("some peer is offline");
        let mut new_data = vec![MultiLabelDataset::new(); 12];
        for i in 0..10 {
            new_data[offline.index()].push(MultiLabelExample::new(
                SparseVector::from_pairs([(8, 1.0 + 0.05 * i as f64)]),
                [6],
            ));
        }
        pace.train_incremental(&mut net, &new_data).unwrap();
        // The peer was offline: nothing propagated yet. Wait for it to come
        // back, then an incremental round with no new data flushes its
        // outstanding examples.
        let mut guard = 0;
        while !net.is_online(offline) && guard < 10_000 {
            net.advance(p2psim::SimTime::from_secs(50));
            guard += 1;
        }
        assert!(net.is_online(offline), "peer came back online");
        let empty = vec![MultiLabelDataset::new(); 12];
        pace.train_incremental(&mut net, &empty).unwrap();
        let probe = SparseVector::from_pairs([(8, 1.2)]);
        let scores = pace.scores(&mut net, offline, &probe).unwrap();
        assert!(
            scores.iter().any(|p| p.tag == 6),
            "returning peer's knowledge reached the ensemble: {scores:?}"
        );
    }

    #[test]
    fn peers_without_data_still_receive_the_ensemble() {
        let mut net = network(6);
        let mut data = toy_peer_data(5, 10, 7);
        data.push(MultiLabelDataset::new()); // peer 5 owns no tagged documents
        let mut pace = Pace::new(PaceConfig::default());
        pace.train(&mut net, &data).unwrap();
        assert_eq!(pace.ensemble_size(), 5);
        let pred = pace
            .predict(&mut net, PeerId(5), &SparseVector::from_pairs([(0, 1.0)]))
            .unwrap();
        assert!(pred.contains(&1));
    }
}
