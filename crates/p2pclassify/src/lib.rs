//! # p2pclassify — P2P classification protocols for automated tagging
//!
//! P2PDocTagger treats the P2P classification algorithm as "a pluggable
//! component" (§2). This crate provides the two protocols the paper deploys,
//! plus the baselines the claims are measured against:
//!
//! * [`cempar::Cempar`] — **CEMPaR** (Ang et al., ECML/PKDD 2009):
//!   cascade-SVM classification over a DHT. Every peer trains a non-linear SVM
//!   per tag on its local data and propagates the support vectors *once* to a
//!   deterministically located super-peer; super-peers cascade the local models
//!   into regional models; untagged documents are sent to the super-peers,
//!   whose regional models vote (weighted majority) on the tags.
//! * [`pace::Pace`] — **PACE** (Ang et al., DASFAA 2010): an adaptive ensemble
//!   of linear SVMs. Every peer trains a linear SVM per tag plus k-means
//!   centroids of its local data and propagates models + centroids to all
//!   peers; receivers index models by centroid with LSH and, at prediction
//!   time, let the top-k nearest models vote, weighted by their accuracy and
//!   distance to the test document.
//! * [`centralized::Centralized`] — the centralized upper bound / anti-pattern:
//!   all raw training vectors are shipped to one server peer which trains a
//!   single model; queries go to the server (single point of failure).
//! * [`local::LocalOnly`] — the no-collaboration lower bound: each peer learns
//!   from its own few tagged documents only.
//!
//! All protocols implement [`protocol::P2PTagClassifier`] and run on the
//! [`p2psim::P2PNetwork`] facade so that every byte they exchange is accounted
//! and churn affects them realistically.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cempar;
pub mod centralized;
pub mod error;
pub mod local;
pub mod pace;
pub mod protocol;
pub mod reliable;
pub mod sansio;
pub mod wire;

/// Common re-exports.
pub mod prelude {
    pub use crate::cempar::{Cempar, CemparConfig};
    pub use crate::centralized::{Centralized, CentralizedConfig};
    pub use crate::error::ProtocolError;
    pub use crate::local::{LocalOnly, LocalOnlyConfig};
    pub use crate::pace::{Pace, PaceConfig};
    pub use crate::protocol::{P2PTagClassifier, PeerDataMap, ScoringBackend, TrainingBackend};
    pub use crate::reliable::{LinkStats, ReliableLink};
    pub use crate::wire::{ReliabilityConfig, WireConfig, WireCost};
}

pub use cempar::{Cempar, CemparConfig};
pub use centralized::{Centralized, CentralizedConfig};
pub use error::ProtocolError;
pub use local::{LocalOnly, LocalOnlyConfig};
pub use pace::{Pace, PaceConfig};
pub use protocol::{P2PTagClassifier, PeerDataMap, ScoringBackend, TrainingBackend};
pub use reliable::{LinkStats, ReliableLink};
pub use wire::{ReliabilityConfig, WireConfig, WireCost};
