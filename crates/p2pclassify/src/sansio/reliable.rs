//! Event-driven reliable delivery for the sans-io cores.
//!
//! [`ReliableCore`] is [`crate::reliable::ReliableLink`] re-expressed as a
//! state machine: where the link runs its ack/retransmit loop synchronously
//! against the simulated network, the core *returns* the sends and arms
//! timers, letting any driver (virtual-time simulator, wall-clock reactor)
//! execute them. The policy is identical — sequence-numbered checksummed
//! wrappers, dedup by seq, exponential backoff via the shared
//! `backoff_delay_ms`, a bounded retry budget — and the outcomes land in
//! the same [`LinkStats`] ledger.
//!
//! With reliability unset (the default, and the right choice over TCP, which
//! already retransmits) the core is a passthrough: `send` emits the frame
//! as-is, `on_frame` hands every frame straight back to the protocol.

use super::{LocalEffect, Millis, Output, TimerId};
use crate::reliable::{backoff_delay_ms, LinkStats};
use crate::wire::{self, PayloadKind, ReliabilityConfig};
use p2psim::message::MessageKind;
use p2psim::PeerId;
use std::collections::{BTreeMap, BTreeSet};

/// A payload awaiting its ack.
#[derive(Debug, Clone)]
struct Pending {
    to: PeerId,
    kind: MessageKind,
    wrapped: Vec<u8>,
    /// Transmissions so far (1 after the initial send).
    attempt: u32,
    /// When the next retransmit fires.
    deadline: Millis,
}

/// Sequence-numbered reliable sender/receiver (one per core).
#[derive(Debug, Clone, Default)]
pub struct ReliableCore {
    reliability: Option<ReliabilityConfig>,
    next_seq: u64,
    /// Unacked payloads by sequence number.
    pending: BTreeMap<u64, Pending>,
    /// Per-sender sequence numbers already delivered to the protocol, so a
    /// retransmitted copy re-arms the ack but installs nothing.
    seen: BTreeMap<u64, BTreeSet<u64>>,
    stats: LinkStats,
}

impl ReliableCore {
    /// A core with the given retry policy (`None` = plain passthrough).
    pub fn new(reliability: Option<ReliabilityConfig>) -> Self {
        Self {
            reliability,
            ..Self::default()
        }
    }

    /// The accumulated send-path counters.
    pub fn stats(&self) -> &LinkStats {
        &self.stats
    }

    /// Counts an anti-entropy payload shipped through this core.
    pub fn note_resync(&mut self) {
        self.stats.resyncs += 1;
    }

    /// Sends `frame` to `to`, pushing the emit (and, in reliable mode, the
    /// retransmit timer) onto `out`.
    pub fn send(
        &mut self,
        now: Millis,
        to: PeerId,
        kind: MessageKind,
        frame: Vec<u8>,
        out: &mut Vec<Output>,
    ) {
        self.stats.sends += 1;
        match self.reliability {
            None => {
                // Passthrough: the transport (TCP, or the lossless sim
                // queue) delivers or the driver surfaces the failure;
                // nothing here can observe a drop.
                self.stats.delivered += 1;
                out.push(Output::Emit { to, kind, frame });
            }
            Some(cfg) => {
                let seq = self.next_seq;
                self.next_seq += 1;
                let wrapped = wire::encode_reliable(seq, &frame);
                let deadline = now.saturating_add(backoff_delay_ms(cfg.backoff_base_ms, 1));
                out.push(Output::Emit {
                    to,
                    kind,
                    frame: wrapped.clone(),
                });
                out.push(Output::SetTimer {
                    id: TimerId(seq),
                    at: deadline,
                });
                self.pending.insert(
                    seq,
                    Pending {
                        to,
                        kind,
                        wrapped,
                        attempt: 1,
                        deadline,
                    },
                );
            }
        }
    }

    /// Processes one received frame. Returns the payload the protocol should
    /// decode — `None` when the frame was consumed by the reliability layer
    /// (an ack, a duplicate, a corrupted wrapper).
    ///
    /// Reliable wrappers are unwrapped (checksum-checked, deduplicated, and
    /// always re-acked); acks retire their pending entry; anything else
    /// passes through untouched.
    pub fn on_frame(
        &mut self,
        from: PeerId,
        frame: &[u8],
        out: &mut Vec<Output>,
    ) -> Option<Vec<u8>> {
        match wire::peek_kind(frame) {
            Some(PayloadKind::Reliable) => match wire::decode_reliable(frame) {
                Ok((seq, inner)) => {
                    // Ack every intact copy: the first ack may have been
                    // lost, and the sender retransmits until one lands.
                    out.push(Output::Emit {
                        to: from,
                        kind: MessageKind::Ack,
                        frame: wire::encode_ack(seq),
                    });
                    if self.seen.entry(from.0).or_default().insert(seq) {
                        Some(inner)
                    } else {
                        None
                    }
                }
                Err(_) => {
                    // Damaged in transit: never delivered, no ack — the
                    // sender's timer recovers it.
                    self.stats.corrupted_rx += 1;
                    None
                }
            },
            Some(PayloadKind::Ack) => {
                if let Ok(seq) = wire::decode_ack(frame) {
                    if let Some(p) = self.pending.remove(&seq) {
                        self.stats.delivered += 1;
                        if p.attempt > 1 {
                            self.stats.recovered += 1;
                        }
                        out.push(Output::CancelTimer { id: TimerId(seq) });
                    }
                }
                None
            }
            _ => Some(frame.to_vec()),
        }
    }

    /// Fires every retransmit deadline due at `now`: re-emits payloads whose
    /// ack is still missing, gives up on those whose retry budget ran out.
    pub fn poll_timers(&mut self, now: Millis, out: &mut Vec<Output>) {
        let Some(cfg) = self.reliability else {
            return;
        };
        let due: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.deadline <= now)
            .map(|(&seq, _)| seq)
            .collect();
        for seq in due {
            let p = self.pending.get_mut(&seq).expect("due seq is pending");
            if p.attempt >= cfg.max_attempts {
                self.pending.remove(&seq);
                self.stats.gave_up += 1;
                out.push(Output::Effect(LocalEffect::GaveUp { seq }));
                continue;
            }
            // The wait that just elapsed is the backoff ledger entry; the
            // next wait doubles (saturating, like the monolithic link).
            self.stats.backoff_ms = self
                .stats
                .backoff_ms
                .saturating_add(backoff_delay_ms(cfg.backoff_base_ms, p.attempt));
            self.stats.retransmits += 1;
            p.attempt += 1;
            p.deadline = now.saturating_add(backoff_delay_ms(cfg.backoff_base_ms, p.attempt));
            out.push(Output::Emit {
                to: p.to,
                kind: p.kind,
                frame: p.wrapped.clone(),
            });
            out.push(Output::SetTimer {
                id: TimerId(seq),
                at: p.deadline,
            });
        }
    }

    /// The earliest pending retransmit deadline, if any (drivers may use it
    /// instead of tracking `SetTimer` outputs).
    pub fn next_deadline(&self) -> Option<Millis> {
        self.pending.values().map(|p| p.deadline).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An inner payload the reliability layer must not intercept (digest
    /// frames belong to the protocol, unlike acks/reliable wrappers).
    fn payload() -> Vec<u8> {
        wire::encode_digest(&[(1, 2)])
    }

    #[test]
    fn passthrough_emits_verbatim_and_consumes_nothing() {
        let mut tx = ReliableCore::new(None);
        let mut out = Vec::new();
        tx.send(
            0,
            PeerId(2),
            MessageKind::ModelPropagation,
            payload(),
            &mut out,
        );
        assert_eq!(
            out,
            vec![Output::Emit {
                to: PeerId(2),
                kind: MessageKind::ModelPropagation,
                frame: payload(),
            }]
        );
        assert_eq!(tx.stats().sends, 1);
        assert_eq!(tx.stats().delivered, 1);
        // Receiver side: a non-reliable frame passes straight through.
        let mut rx = ReliableCore::new(None);
        let mut out = Vec::new();
        assert_eq!(
            rx.on_frame(PeerId(1), &payload(), &mut out),
            Some(payload())
        );
        assert!(out.is_empty());
    }

    #[test]
    fn reliable_roundtrip_acks_dedups_and_cancels() {
        let cfg = ReliabilityConfig {
            max_attempts: 4,
            backoff_base_ms: 100,
        };
        let mut tx = ReliableCore::new(Some(cfg));
        let mut rx = ReliableCore::new(Some(cfg));
        let mut out = Vec::new();
        tx.send(
            0,
            PeerId(2),
            MessageKind::ModelPropagation,
            payload(),
            &mut out,
        );
        let wrapped = match &out[0] {
            Output::Emit { frame, .. } => frame.clone(),
            other => panic!("expected emit, got {other:?}"),
        };
        assert_eq!(
            out[1],
            Output::SetTimer {
                id: TimerId(0),
                at: 100
            }
        );

        // First copy delivers the inner payload and acks.
        let mut rx_out = Vec::new();
        assert_eq!(
            rx.on_frame(PeerId(1), &wrapped, &mut rx_out),
            Some(payload())
        );
        let ack = match &rx_out[0] {
            Output::Emit { to, kind, frame } => {
                assert_eq!((*to, *kind), (PeerId(1), MessageKind::Ack));
                frame.clone()
            }
            other => panic!("expected ack emit, got {other:?}"),
        };
        // A duplicate re-acks but delivers nothing.
        let mut dup_out = Vec::new();
        assert_eq!(rx.on_frame(PeerId(1), &wrapped, &mut dup_out), None);
        assert_eq!(dup_out.len(), 1);

        // The ack retires the pending entry and cancels the timer.
        let mut ack_out = Vec::new();
        assert_eq!(tx.on_frame(PeerId(2), &ack, &mut ack_out), None);
        assert_eq!(ack_out, vec![Output::CancelTimer { id: TimerId(0) }]);
        assert_eq!(tx.stats().delivered, 1);
        assert_eq!(tx.next_deadline(), None);
        // A late timer poll is a no-op.
        let mut late = Vec::new();
        tx.poll_timers(10_000, &mut late);
        assert!(late.is_empty());
    }

    #[test]
    fn missing_ack_retransmits_with_doubling_backoff_then_gives_up() {
        let cfg = ReliabilityConfig {
            max_attempts: 3,
            backoff_base_ms: 100,
        };
        let mut tx = ReliableCore::new(Some(cfg));
        let mut out = Vec::new();
        tx.send(
            0,
            PeerId(2),
            MessageKind::ModelPropagation,
            payload(),
            &mut out,
        );
        assert_eq!(tx.next_deadline(), Some(100));

        // First retransmit at t=100; next deadline doubles to +200.
        let mut out = Vec::new();
        tx.poll_timers(100, &mut out);
        assert!(matches!(out[0], Output::Emit { .. }));
        assert_eq!(
            out[1],
            Output::SetTimer {
                id: TimerId(0),
                at: 300
            }
        );
        assert_eq!(tx.stats().retransmits, 1);
        assert_eq!(tx.stats().backoff_ms, 100);

        // Second retransmit at t=300.
        let mut out = Vec::new();
        tx.poll_timers(300, &mut out);
        assert!(matches!(out[0], Output::Emit { .. }));
        assert_eq!(tx.stats().retransmits, 2);
        assert_eq!(tx.stats().backoff_ms, 300); // 100 + 200, like the link

        // Budget exhausted: give-up effect, nothing pending.
        let mut out = Vec::new();
        tx.poll_timers(700, &mut out);
        assert_eq!(out, vec![Output::Effect(LocalEffect::GaveUp { seq: 0 })]);
        assert_eq!(tx.stats().gave_up, 1);
        assert_eq!(tx.next_deadline(), None);
    }

    #[test]
    fn corrupted_wrapper_is_dropped_without_ack() {
        let cfg = ReliabilityConfig::default();
        let mut rx = ReliableCore::new(Some(cfg));
        let wrapped = wire::encode_reliable(7, &payload());
        let mut corrupt = wrapped.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x40;
        let mut out = Vec::new();
        assert_eq!(rx.on_frame(PeerId(3), &corrupt, &mut out), None);
        assert!(out.is_empty(), "no ack for a damaged frame");
        assert_eq!(rx.stats().corrupted_rx, 1);
        // The intact retransmission then delivers normally.
        let mut out = Vec::new();
        assert_eq!(rx.on_frame(PeerId(3), &wrapped, &mut out), Some(payload()));
        assert_eq!(out.len(), 1);
    }
}
