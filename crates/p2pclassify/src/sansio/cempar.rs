//! The CEMPaR protocol as a per-peer sans-io core.
//!
//! One [`CemparCore`] plays both roles a peer can hold: **contributor**
//! (trains a local kernel model and installs it at its region's super-peer)
//! and **super-peer** (collects a region's contributions, cascades them into
//! per-tag regional models, answers routed prediction queries). Training,
//! cascading and scoring re-use `train_cempar_local`,
//! `cascade_region_tags` and `region_scores` — the protocol body shared
//! with the monolithic [`crate::cempar::Cempar`].
//!
//! Super-peer election is computed purely from the static peer list: the
//! super-peer of region `r` is the ring successor of the region's anchor key
//! (Chord semantics, every peer derives it locally — no DHT round-trip in
//! the core; drivers may charge lookups separately).
//!
//! Order-independence: contributions are keyed `(source, version)` and only
//! strictly newer versions install; the cascade iterates contributors in
//! `BTreeMap` order and is recomputed lazily at query time, so the regional
//! models depend only on the *set* of installed contributions, never their
//! arrival order. Prediction fans one [`crate::wire::PayloadKind::QueryRequest`]
//! out per region (request id = `query·R + region`, self-describing on both
//! ends) and combines the weighted votes only once every region answered.

use super::reliable::ReliableCore;
use super::{LocalEffect, Millis, Output, ProtocolCore};
use crate::cempar::{cascade_region_tags, region_scores, train_cempar_local, CemparConfig};
use crate::protocol::combine_weighted_scores;
use crate::reliable::LinkStats;
use crate::wire::{self, PayloadKind};
use ml::batch::BatchKernelScorer;
use ml::multilabel::{OneVsAllModel, TagPrediction};
use ml::svm::KernelSvm;
use ml::{MultiLabelDataset, TagId};
use p2psim::message::MessageKind;
use p2psim::overlay::SuperPeerDirectory;
use p2psim::PeerId;
use std::collections::{BTreeMap, BTreeSet};
use textproc::SparseVector;

/// One region's state at its super-peer.
#[derive(Debug, Clone, Default)]
struct RegionSlot {
    /// Contributed models by source id, with their install versions.
    contributed: BTreeMap<u64, (u64, OneVsAllModel<KernelSvm>)>,
    /// The cascaded per-tag regional models.
    regional: BTreeMap<TagId, KernelSvm>,
    /// Batched scorer over `regional`.
    scorer: BatchKernelScorer,
    /// Contributions changed since the last cascade.
    dirty: bool,
}

/// One in-flight prediction at the requester.
#[derive(Debug, Clone)]
struct OutstandingQuery {
    /// Regions that have not answered yet (duplicate responses are ignored).
    pending: BTreeSet<usize>,
    /// Weighted votes keyed by region (weight-0 responses are dropped), so
    /// the final combine sums in region order no matter the arrival order —
    /// float summation order is part of bit-for-bit driver equivalence.
    votes: BTreeMap<usize, (f64, Vec<TagPrediction>)>,
}

/// A single CEMPaR peer (contributor and, when elected, super-peer) as a
/// pure state machine.
#[derive(Debug, Clone)]
pub struct CemparCore {
    id: PeerId,
    config: CemparConfig,
    directory: SuperPeerDirectory,
    /// The static peer list super-peer election runs over.
    peers: Vec<PeerId>,
    local_data: MultiLabelDataset,
    /// This peer's contribution version (bumped per retrain).
    my_version: u64,
    /// The latest model this peer contributed (re-pushed by anti-entropy).
    my_model: Option<OneVsAllModel<KernelSvm>>,
    /// Super-peer state, by region index.
    regions: BTreeMap<usize, RegionSlot>,
    /// In-flight predictions by query index.
    outstanding: BTreeMap<u64, OutstandingQuery>,
    link: ReliableCore,
    next_query: u64,
}

impl CemparCore {
    /// A fresh core for `id` within the static peer set `peers`.
    pub fn new(id: PeerId, peers: Vec<PeerId>, config: CemparConfig) -> Self {
        let directory = SuperPeerDirectory::new(config.regions);
        let link = ReliableCore::new(config.wire.reliability);
        Self {
            id,
            config,
            directory,
            peers,
            local_data: MultiLabelDataset::new(),
            my_version: 0,
            my_model: None,
            regions: BTreeMap::new(),
            outstanding: BTreeMap::new(),
            link,
            next_query: 0,
        }
    }

    /// The peer this core belongs to.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// The reliable layer's counters.
    pub fn link_stats(&self) -> &LinkStats {
        self.link.stats()
    }

    /// Installed `(source, version)` pairs across every region this peer
    /// super-peers, plus its own contribution.
    pub fn installed_versions(&self) -> Vec<(u64, u64)> {
        let mut held: BTreeMap<u64, u64> = self
            .regions
            .values()
            .flat_map(|slot| slot.contributed.iter().map(|(&s, &(v, _))| (s, v)))
            .collect();
        if self.my_version > 0 {
            held.entry(self.id.0).or_insert(self.my_version);
        }
        held.into_iter().collect()
    }

    /// The super-peer of a region: the ring successor of the region's anchor
    /// key among the static peer list (deterministic, locally computable).
    pub fn super_peer_of_region(&self, region: usize) -> PeerId {
        let anchor = self.directory.anchor_key(region);
        let successor = self
            .peers
            .iter()
            .copied()
            .filter(|p| p.ring_key() >= anchor)
            .min_by_key(|p| p.ring_key());
        successor.unwrap_or_else(|| {
            // Wrap around the ring: the globally smallest key owns the top
            // arc. The peer list is never empty (this core is in it).
            self.peers
                .iter()
                .copied()
                .min_by_key(|p| p.ring_key())
                .expect("peer list contains at least this core")
        })
    }

    /// The region this peer contributes to.
    fn my_region(&self) -> usize {
        self.directory.region_of_key(self.id.ring_key())
    }

    /// Installs a contribution into a region slot if strictly newer.
    fn install(
        &mut self,
        source: u64,
        version: u64,
        model: OneVsAllModel<KernelSvm>,
    ) -> Option<Output> {
        let region = self.directory.region_of_key(PeerId(source).ring_key());
        let slot = self.regions.entry(region).or_default();
        match slot.contributed.get(&source) {
            Some(&(held, _)) if held >= version => None,
            _ => {
                slot.contributed.insert(source, (version, model));
                slot.dirty = true;
                Some(Output::Effect(LocalEffect::Installed { source, version }))
            }
        }
    }

    /// Re-cascades a region if its contributions changed. Lazy (runs at
    /// query time), so the result never depends on install order.
    fn ensure_cascade(&mut self, region: usize) {
        let Some(slot) = self.regions.get_mut(&region) else {
            return;
        };
        if !slot.dirty {
            return;
        }
        let regional = cascade_region_tags(&self.config, slot.contributed.values().map(|(_, m)| m));
        let scorer = BatchKernelScorer::from_classifiers(regional.iter().map(|(&t, m)| (t, m)));
        slot.regional = regional;
        slot.scorer = scorer;
        slot.dirty = false;
    }

    /// The install envelope carrying this peer's current contribution.
    fn my_install_frame(&self) -> Option<Vec<u8>> {
        let model = self.my_model.as_ref()?;
        let model_frame = wire::encode_kernel_model(model, self.config.wire.precision);
        Some(wire::encode_install(
            self.id.0,
            self.my_version,
            &[&model_frame],
        ))
    }

    /// Appends `data`, retrains this peer's kernel model and installs it at
    /// its region's super-peer at the next version.
    pub fn train(&mut self, now: Millis, data: &MultiLabelDataset) -> Vec<Output> {
        let mut out = Vec::new();
        self.local_data.extend_from(data);
        let Some(model) = train_cempar_local(&self.config, &self.local_data) else {
            return out;
        };
        self.my_version += 1;
        self.my_model = Some(model);
        let envelope = self.my_install_frame().expect("model was just stored");
        let sp = self.super_peer_of_region(self.my_region());
        if sp == self.id {
            // This peer super-peers its own region: install the copy decoded
            // off the wire, exactly like a remote contribution.
            if let Some(effect) = self.decode_install(&envelope) {
                out.push(effect);
            }
        } else {
            self.link
                .send(now, sp, MessageKind::ModelPropagation, envelope, &mut out);
        }
        out
    }

    /// Decodes and (maybe) installs an install envelope.
    fn decode_install(&mut self, frame: &[u8]) -> Option<Output> {
        let (source, version, parts) = wire::decode_install(frame).ok()?;
        let [model_frame] = parts.as_slice() else {
            return None;
        };
        let model = wire::decode_kernel_model(model_frame).ok()?;
        self.install(source, version, model)
    }

    /// Starts a prediction: one routed query per region (answered inline for
    /// regions this peer super-peers itself). The effect fires once every
    /// region answered.
    pub fn predict(&mut self, now: Millis, x: &SparseVector) -> (u64, Vec<Output>) {
        let query = self.next_query;
        self.next_query += 1;
        let regions = self.directory.regions() as u64;
        let mut state = OutstandingQuery {
            pending: (0..self.directory.regions()).collect(),
            votes: BTreeMap::new(),
        };
        let mut out = Vec::new();
        for region in 0..self.directory.regions() {
            let request = query * regions + region as u64;
            let sp = self.super_peer_of_region(region);
            if sp == self.id {
                // Answer locally, through the same wire round-trip a remote
                // requester would get (measured semantics).
                let frame = wire::encode_query_request(request, x);
                let (_, weight, scores) = self
                    .answer_query(&frame)
                    .expect("self-encoded query frame answers");
                state.pending.remove(&region);
                if weight > 0 {
                    state.votes.insert(region, (weight as f64, scores));
                }
            } else {
                self.link.send(
                    now,
                    sp,
                    MessageKind::PredictionQuery,
                    wire::encode_query_request(request, x),
                    &mut out,
                );
            }
        }
        if state.pending.is_empty() {
            out.push(finish_query(query, state));
        } else {
            self.outstanding.insert(query, state);
        }
        (query, out)
    }

    /// Super-peer half of a prediction: decodes a query frame, scores it
    /// against the request's region, returns `(request, weight, scores)`.
    fn answer_query(&mut self, frame: &[u8]) -> Option<(u64, u64, Vec<TagPrediction>)> {
        let (request, x) = wire::decode_query_request(frame).ok()?;
        let region = (request % self.directory.regions() as u64) as usize;
        self.ensure_cascade(region);
        let Some(slot) = self.regions.get(&region) else {
            return Some((request, 0, Vec::new()));
        };
        if slot.regional.is_empty() {
            return Some((request, 0, Vec::new()));
        }
        let scores = region_scores(self.config.backend, &slot.regional, &slot.scorer, &x);
        Some((request, slot.contributed.len() as u64, scores))
    }

    /// Sends this core's holdings digest to `partner`.
    pub fn start_anti_entropy(&mut self, now: Millis, partner: PeerId) -> Vec<Output> {
        let mut out = Vec::new();
        let entries = self.installed_versions();
        self.link.note_resync();
        self.link.send(
            now,
            partner,
            MessageKind::AntiEntropy,
            wire::encode_digest(&entries),
            &mut out,
        );
        out
    }
}

/// Reduces a completed query's votes to its prediction effect.
fn finish_query(query: u64, state: OutstandingQuery) -> Output {
    let votes: Vec<(f64, Vec<TagPrediction>)> = state.votes.into_values().collect();
    let scores = if votes.is_empty() {
        Vec::new()
    } else {
        combine_weighted_scores(&votes)
    };
    Output::Effect(LocalEffect::Prediction {
        request: query,
        scores,
    })
}

impl ProtocolCore for CemparCore {
    fn ingest(&mut self, now: Millis, from: PeerId, frame: &[u8]) -> Vec<Output> {
        let mut out = Vec::new();
        let Some(inner) = self.link.on_frame(from, frame, &mut out) else {
            return out;
        };
        match wire::peek_kind(&inner) {
            Some(PayloadKind::Install) => {
                if let Some(effect) = self.decode_install(&inner) {
                    out.push(effect);
                }
            }
            Some(PayloadKind::QueryRequest) => {
                if let Some((request, weight, scores)) = self.answer_query(&inner) {
                    self.link.send(
                        now,
                        from,
                        MessageKind::PredictionResponse,
                        wire::encode_query_response(request, weight, &scores),
                        &mut out,
                    );
                }
            }
            Some(PayloadKind::QueryResponse) => {
                if let Ok((request, weight, scores)) = wire::decode_query_response(&inner) {
                    let regions = self.directory.regions() as u64;
                    let query = request / regions;
                    let region = (request % regions) as usize;
                    if let Some(state) = self.outstanding.get_mut(&query) {
                        if state.pending.remove(&region) {
                            if weight > 0 {
                                state.votes.insert(region, (weight as f64, scores));
                            }
                            if state.pending.is_empty() {
                                let state = self.outstanding.remove(&query).expect("present");
                                out.push(finish_query(query, state));
                            }
                        }
                    }
                }
            }
            Some(PayloadKind::Digest) => {
                // Re-push this peer's own contribution when the digest shows
                // the partner (typically its super-peer) is behind on it.
                if let Ok(entries) = wire::decode_digest(&inner) {
                    let theirs: BTreeMap<u64, u64> = entries.into_iter().collect();
                    let behind = theirs.get(&self.id.0).copied().unwrap_or(0) < self.my_version;
                    if behind && self.my_model.is_some() {
                        let envelope = self.my_install_frame().expect("model present");
                        self.link.note_resync();
                        self.link.send(
                            now,
                            from,
                            MessageKind::ModelPropagation,
                            envelope,
                            &mut out,
                        );
                    }
                }
            }
            _ => {}
        }
        out
    }

    fn poll_timers(&mut self, now: Millis) -> Vec<Output> {
        let mut out = Vec::new();
        self.link.poll_timers(now, &mut out);
        out
    }
}
