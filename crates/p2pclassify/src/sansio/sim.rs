//! The deterministic simulator driver for the sans-io cores.
//!
//! [`SimDriver`] executes [`Output`]s against an in-memory, lossless FIFO
//! message queue and a virtual-time timer wheel — the simulator half of the
//! sim-vs-socket equivalence axis. Delivery is reliable and ordered (like
//! TCP), time only advances when the queue is drained, and everything is
//! plain deterministic Rust: running the same scenario twice produces the
//! same installs, the same effects, the same bytes.
//!
//! The driver is deliberately *adversarial in schedule*: `run_until_quiescent`
//! drains deliveries in strict FIFO order, but tests can also deliver
//! manually in any order — the cores' idempotent, version-monotonic installs
//! make the final state identical either way (pinned by the proptests in
//! `tests/sansio_props.rs`).

use super::{LocalEffect, Millis, Output, PeerCore, ProtocolCore};
use ml::MultiLabelDataset;
use p2psim::message::MessageKind;
use p2psim::PeerId;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use textproc::SparseVector;

/// One frame in flight.
#[derive(Debug, Clone)]
pub struct InFlight {
    /// Sending peer.
    pub from: PeerId,
    /// Destination peer.
    pub to: PeerId,
    /// Advisory traffic class.
    pub kind: MessageKind,
    /// The encoded frame.
    pub frame: Vec<u8>,
}

/// Drives a fleet of [`PeerCore`]s over a lossless in-memory network in
/// virtual time.
#[derive(Debug, Clone)]
pub struct SimDriver {
    cores: Vec<PeerCore>,
    /// Core index by peer id (cores need not be id-dense).
    index: BTreeMap<u64, usize>,
    now: Millis,
    queue: VecDeque<InFlight>,
    /// Requested wake-ups: `(deadline, core index)`.
    wakeups: BTreeSet<(Millis, usize)>,
    /// Every local effect, in emission order, tagged with its peer.
    effects: Vec<(PeerId, LocalEffect)>,
    /// Total frame bytes put on the wire (both directions, acks included).
    bytes_sent: u64,
    /// Total frames put on the wire.
    frames_sent: u64,
}

impl SimDriver {
    /// A driver over `cores` starting at virtual time 0.
    pub fn new(cores: Vec<PeerCore>) -> Self {
        let index = cores
            .iter()
            .enumerate()
            .map(|(i, c)| (c.id().0, i))
            .collect();
        Self {
            cores,
            index,
            now: 0,
            queue: VecDeque::new(),
            wakeups: BTreeSet::new(),
            effects: Vec::new(),
            bytes_sent: 0,
            frames_sent: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Millis {
        self.now
    }

    /// The driven cores.
    pub fn cores(&self) -> &[PeerCore] {
        &self.cores
    }

    /// Every local effect emitted so far, in order, tagged with its peer.
    pub fn effects(&self) -> &[(PeerId, LocalEffect)] {
        &self.effects
    }

    /// Drains and returns the effects collected so far.
    pub fn take_effects(&mut self) -> Vec<(PeerId, LocalEffect)> {
        std::mem::take(&mut self.effects)
    }

    /// Total `(frames, bytes)` put on the wire so far.
    pub fn traffic(&self) -> (u64, u64) {
        (self.frames_sent, self.bytes_sent)
    }

    fn core_index(&self, peer: PeerId) -> Option<usize> {
        self.index.get(&peer.0).copied()
    }

    /// Executes one core's outputs: emits enqueue, timers arm the wheel,
    /// effects are recorded.
    pub fn dispatch(&mut self, peer: PeerId, outputs: Vec<Output>) {
        let Some(idx) = self.core_index(peer) else {
            return;
        };
        for output in outputs {
            match output {
                Output::Emit { to, kind, frame } => {
                    self.frames_sent += 1;
                    self.bytes_sent += frame.len() as u64;
                    self.queue.push_back(InFlight {
                        from: peer,
                        to,
                        kind,
                        frame,
                    });
                }
                Output::SetTimer { at, .. } => {
                    self.wakeups.insert((at, idx));
                }
                // Cores keep their own deadline ledger; a stale wheel entry
                // just causes a harmless no-op poll.
                Output::CancelTimer { .. } => {}
                Output::Effect(effect) => {
                    self.effects.push((peer, effect));
                }
            }
        }
    }

    /// Trains `peer` on `data` and executes the resulting outputs.
    pub fn train(&mut self, peer: PeerId, data: &MultiLabelDataset) {
        let Some(idx) = self.core_index(peer) else {
            return;
        };
        let now = self.now;
        let outputs = self.cores[idx].train(now, data);
        self.dispatch(peer, outputs);
    }

    /// Starts a prediction at `peer`, executing the outputs. The scores land
    /// in [`Self::effects`] under the returned request id once the exchange
    /// completes (immediately for local protocols; after
    /// [`Self::run_until_quiescent`] for routed ones).
    pub fn predict(&mut self, peer: PeerId, x: &SparseVector) -> u64 {
        let Some(idx) = self.core_index(peer) else {
            return u64::MAX;
        };
        let now = self.now;
        let (request, outputs) = self.cores[idx].predict(now, x);
        self.dispatch(peer, outputs);
        request
    }

    /// Starts an anti-entropy exchange from `peer` towards `partner`.
    pub fn anti_entropy(&mut self, peer: PeerId, partner: PeerId) {
        let Some(idx) = self.core_index(peer) else {
            return;
        };
        let now = self.now;
        let outputs = self.cores[idx].start_anti_entropy(now, partner);
        self.dispatch(peer, outputs);
    }

    /// Delivers the oldest in-flight frame, if any.
    pub fn step(&mut self) -> bool {
        let Some(msg) = self.queue.pop_front() else {
            return false;
        };
        let Some(idx) = self.core_index(msg.to) else {
            return true; // unknown destination: dropped
        };
        let now = self.now;
        let outputs = self.cores[idx].ingest(now, msg.from, &msg.frame);
        self.dispatch(msg.to, outputs);
        true
    }

    /// Runs until no frames are in flight and no timer wheel entries remain:
    /// drains deliveries FIFO, then advances virtual time to the next
    /// wake-up and polls that core's timers, repeating until quiescent.
    pub fn run_until_quiescent(&mut self) {
        loop {
            while self.step() {}
            let Some(&(at, idx)) = self.wakeups.iter().next() else {
                return;
            };
            self.wakeups.remove(&(at, idx));
            self.now = self.now.max(at);
            let now = self.now;
            let peer = self.cores[idx].id();
            let outputs = self.cores[idx].poll_timers(now);
            self.dispatch(peer, outputs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cempar::CemparConfig;
    use crate::centralized::CentralizedConfig;
    use crate::local::LocalOnlyConfig;
    use crate::pace::PaceConfig;
    use crate::sansio::{CemparCore, CentralizedCore, LocalCore, PaceCore};
    use ml::MultiLabelExample;

    fn dataset(feature: u32, tag: ml::TagId) -> MultiLabelDataset {
        MultiLabelDataset::from_examples(
            (0..6)
                .map(|i| {
                    MultiLabelExample::new(
                        SparseVector::from_pairs([(feature, 1.0 + 0.05 * i as f64)]),
                        [tag],
                    )
                })
                .collect(),
        )
    }

    fn peer_ids(n: u64) -> Vec<PeerId> {
        (0..n).map(PeerId).collect()
    }

    fn prediction_scores(
        driver: &SimDriver,
        peer: PeerId,
        request: u64,
    ) -> Vec<ml::multilabel::TagPrediction> {
        driver
            .effects()
            .iter()
            .find_map(|(p, e)| match e {
                LocalEffect::Prediction { request: r, scores } if *p == peer && *r == request => {
                    Some(scores.clone())
                }
                _ => None,
            })
            .expect("prediction effect emitted")
    }

    #[test]
    fn pace_fleet_converges_and_predicts() {
        let peers = peer_ids(4);
        let cores = peers
            .iter()
            .map(|&p| PeerCore::Pace(PaceCore::new(p, peers.clone(), PaceConfig::default())))
            .collect();
        let mut driver = SimDriver::new(cores);
        for (i, &p) in peers.iter().enumerate() {
            driver.train(p, &dataset(i as u32, i as ml::TagId + 1));
        }
        driver.run_until_quiescent();
        // Every peer holds every model at version 1.
        let expected: Vec<(u64, u64)> = (0..4).map(|s| (s, 1)).collect();
        for core in driver.cores() {
            assert_eq!(core.installed_versions(), expected);
        }
        // Predictions answer locally and favour the trained tag.
        let req = driver.predict(PeerId(2), &SparseVector::from_pairs([(1, 1.0)]));
        let scores = prediction_scores(&driver, PeerId(2), req);
        let best = scores
            .iter()
            .max_by(|a, b| a.score.partial_cmp(&b.score).unwrap())
            .unwrap();
        assert_eq!(best.tag, 2);
        let (frames, bytes) = driver.traffic();
        assert!(frames >= 12, "4 peers × 3 install targets");
        assert!(bytes > 0);
    }

    #[test]
    fn cempar_fleet_routes_queries_to_super_peers() {
        let peers = peer_ids(6);
        let config = CemparConfig {
            regions: 2,
            ..CemparConfig::default()
        };
        let cores = peers
            .iter()
            .map(|&p| PeerCore::Cempar(CemparCore::new(p, peers.clone(), config.clone())))
            .collect();
        let mut driver = SimDriver::new(cores);
        for (i, &p) in peers.iter().enumerate() {
            driver.train(p, &dataset(i as u32, i as ml::TagId + 1));
        }
        driver.run_until_quiescent();
        let req = driver.predict(PeerId(3), &SparseVector::from_pairs([(0, 1.0)]));
        driver.run_until_quiescent();
        let scores = prediction_scores(&driver, PeerId(3), req);
        // Every peer's contribution landed in some region, and the weighted
        // combine keeps every tag any answering region knows — so the six
        // trained tags all come back.
        let tags: Vec<ml::TagId> = scores.iter().map(|p| p.tag).collect();
        for tag in 1..=6 {
            assert!(tags.contains(&tag), "missing tag {tag} in {tags:?}");
        }
        // And the routed exchange is deterministic: ask again, same answer.
        let req2 = driver.predict(PeerId(3), &SparseVector::from_pairs([(0, 1.0)]));
        driver.run_until_quiescent();
        assert_eq!(scores, prediction_scores(&driver, PeerId(3), req2));
    }

    #[test]
    fn centralized_fleet_pools_at_server_and_answers_queries() {
        let peers = peer_ids(3);
        let cores = peers
            .iter()
            .map(|&p| PeerCore::Centralized(CentralizedCore::new(p, CentralizedConfig::default())))
            .collect();
        let mut driver = SimDriver::new(cores);
        for (i, &p) in peers.iter().enumerate() {
            driver.train(p, &dataset(i as u32, i as ml::TagId + 1));
        }
        driver.run_until_quiescent();
        // The server pooled all three uploads.
        assert_eq!(
            driver.cores()[0].installed_versions(),
            vec![(0, 1), (1, 1), (2, 1)]
        );
        // A client's query answers with the pooled model.
        let req = driver.predict(PeerId(2), &SparseVector::from_pairs([(1, 1.0)]));
        driver.run_until_quiescent();
        let scores = prediction_scores(&driver, PeerId(2), req);
        let best = scores
            .iter()
            .max_by(|a, b| a.score.partial_cmp(&b.score).unwrap())
            .unwrap();
        assert_eq!(best.tag, 2);
    }

    #[test]
    fn local_fleet_never_emits_traffic() {
        let peers = peer_ids(3);
        let cores = peers
            .iter()
            .map(|&p| PeerCore::Local(LocalCore::new(p, LocalOnlyConfig::default())))
            .collect();
        let mut driver = SimDriver::new(cores);
        for (i, &p) in peers.iter().enumerate() {
            driver.train(p, &dataset(i as u32, i as ml::TagId + 1));
        }
        driver.run_until_quiescent();
        assert_eq!(driver.traffic(), (0, 0));
        let req = driver.predict(PeerId(1), &SparseVector::from_pairs([(1, 1.0)]));
        let scores = prediction_scores(&driver, PeerId(1), req);
        let best = scores
            .iter()
            .max_by(|a, b| a.score.partial_cmp(&b.score).unwrap())
            .unwrap();
        assert_eq!(best.tag, 2);
        assert_eq!(driver.traffic(), (0, 0));
    }

    #[test]
    fn anti_entropy_repairs_a_peer_that_missed_an_install() {
        let peers = peer_ids(3);
        let cores: Vec<PeerCore> = peers
            .iter()
            .map(|&p| PeerCore::Pace(PaceCore::new(p, peers.clone(), PaceConfig::default())))
            .collect();
        let mut driver = SimDriver::new(cores);
        driver.train(PeerId(0), &dataset(0, 1));
        // Drop peer 2's copy: deliver only the frame addressed to peer 1.
        let kept: Vec<InFlight> = driver
            .queue
            .drain(..)
            .filter(|m| m.to == PeerId(1))
            .collect();
        driver.queue.extend(kept);
        driver.run_until_quiescent();
        assert_eq!(driver.cores()[2].installed_versions(), vec![]);
        // Peer 2 digests its (empty) holdings at peer 1, which pushes back
        // everything peer 2 is missing.
        driver.anti_entropy(PeerId(2), PeerId(1));
        driver.run_until_quiescent();
        assert_eq!(driver.cores()[2].installed_versions(), vec![(0, 1)]);
        // The repair is idempotent: digesting again installs nothing new.
        let effects_before = driver.effects().len();
        driver.anti_entropy(PeerId(2), PeerId(1));
        driver.run_until_quiescent();
        assert_eq!(driver.effects().len(), effects_before);
    }

    #[test]
    fn reordered_and_duplicated_deliveries_converge_to_the_same_ensemble() {
        let peers = peer_ids(3);
        let build = || {
            let cores: Vec<PeerCore> = peers
                .iter()
                .map(|&p| PeerCore::Pace(PaceCore::new(p, peers.clone(), PaceConfig::default())))
                .collect();
            SimDriver::new(cores)
        };
        // Reference: FIFO delivery.
        let mut fifo = build();
        for (i, &p) in peers.iter().enumerate() {
            fifo.train(p, &dataset(i as u32, i as ml::TagId + 1));
        }
        fifo.run_until_quiescent();
        // Adversarial: reverse the queue and duplicate every frame.
        let mut chaos = build();
        for (i, &p) in peers.iter().enumerate() {
            chaos.train(p, &dataset(i as u32, i as ml::TagId + 1));
        }
        let mut frames: Vec<InFlight> = chaos.queue.drain(..).collect();
        frames.reverse();
        let dup = frames.clone();
        chaos.queue.extend(frames);
        chaos.queue.extend(dup);
        chaos.run_until_quiescent();
        for (a, b) in fifo.cores().iter().zip(chaos.cores()) {
            assert_eq!(a.installed_versions(), b.installed_versions());
        }
        // And the predictions agree bit-for-bit.
        let x = SparseVector::from_pairs([(2, 1.0)]);
        let ra = fifo.predict(PeerId(0), &x);
        let rb = chaos.predict(PeerId(0), &x);
        assert_eq!(
            prediction_scores(&fifo, PeerId(0), ra),
            prediction_scores(&chaos, PeerId(0), rb)
        );
    }
}
