//! The centralized baseline as a per-peer sans-io core.
//!
//! Clients upload their **entire** local collection as a versioned install
//! envelope (idempotent: a re-delivered or reordered upload replaces, never
//! appends); the server pools the newest version per source and lazily
//! cold-retrains at query time over the pool in source order. Both choices
//! make the server's model a pure function of the *set* of received uploads
//! — the property the sim-vs-socket equivalence axis relies on.

use super::reliable::ReliableCore;
use super::{LocalEffect, Millis, Output, ProtocolCore};
use crate::centralized::CentralizedConfig;
use crate::protocol::{ScoringBackend, TrainingBackend};
use crate::reliable::LinkStats;
use crate::wire::{self, PayloadKind};
use ml::batch::TagWeightMatrix;
use ml::multilabel::{OneVsAllModel, TagPrediction};
use ml::svm::LinearSvm;
use ml::MultiLabelDataset;
use p2psim::message::MessageKind;
use p2psim::PeerId;
use std::collections::BTreeMap;
use textproc::SparseVector;

/// A single centralized-baseline peer (client, or the server itself) as a
/// pure state machine.
#[derive(Debug, Clone)]
pub struct CentralizedCore {
    id: PeerId,
    config: CentralizedConfig,
    local_data: MultiLabelDataset,
    /// This peer's upload version (bumped per retrain).
    my_version: u64,
    /// Server role: the newest upload per source.
    uploads: BTreeMap<u64, (u64, MultiLabelDataset)>,
    /// Server role: the pooled global model (lazily retrained).
    model: Option<OneVsAllModel<LinearSvm>>,
    matrix: Option<TagWeightMatrix>,
    /// Uploads changed since the last retrain.
    dirty: bool,
    link: ReliableCore,
    next_request: u64,
}

impl CentralizedCore {
    /// A fresh core for `id`. The server peer is named by
    /// [`CentralizedConfig::server`].
    pub fn new(id: PeerId, config: CentralizedConfig) -> Self {
        let link = ReliableCore::new(config.wire.reliability);
        Self {
            id,
            config,
            local_data: MultiLabelDataset::new(),
            my_version: 0,
            uploads: BTreeMap::new(),
            model: None,
            matrix: None,
            dirty: false,
            link,
            next_request: 0,
        }
    }

    /// The peer this core belongs to.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// The reliable layer's counters.
    pub fn link_stats(&self) -> &LinkStats {
        self.link.stats()
    }

    /// Installed `(source, version)` pairs: the server's pooled uploads,
    /// plus this peer's own contribution.
    pub fn installed_versions(&self) -> Vec<(u64, u64)> {
        let mut held: BTreeMap<u64, u64> =
            self.uploads.iter().map(|(&s, &(v, _))| (s, v)).collect();
        if self.my_version > 0 {
            held.entry(self.id.0).or_insert(self.my_version);
        }
        held.into_iter().collect()
    }

    fn is_server(&self) -> bool {
        self.id == self.config.server
    }

    /// Appends `data` and uploads the full local collection to the server at
    /// the next version.
    pub fn train(&mut self, now: Millis, data: &MultiLabelDataset) -> Vec<Output> {
        let mut out = Vec::new();
        self.local_data.extend_from(data);
        if self.local_data.is_empty() {
            return out;
        }
        self.my_version += 1;
        let dataset_frame = wire::encode_dataset(&self.local_data);
        let envelope = wire::encode_install(self.id.0, self.my_version, &[&dataset_frame]);
        if self.is_server() {
            // The server pools its own collection through the same decode
            // path a remote upload takes.
            if let Some(effect) = self.decode_install(&envelope) {
                out.push(effect);
            }
        } else {
            self.link.send(
                now,
                self.config.server,
                MessageKind::TrainingData,
                envelope,
                &mut out,
            );
        }
        out
    }

    /// Decodes and (maybe) pools an upload envelope (server role).
    fn decode_install(&mut self, frame: &[u8]) -> Option<Output> {
        let (source, version, parts) = wire::decode_install(frame).ok()?;
        let [dataset_frame] = parts.as_slice() else {
            return None;
        };
        let data = wire::decode_dataset(dataset_frame).ok()?;
        match self.uploads.get(&source) {
            Some(&(held, _)) if held >= version => None,
            _ => {
                self.uploads.insert(source, (version, data));
                self.dirty = true;
                Some(Output::Effect(LocalEffect::Installed { source, version }))
            }
        }
    }

    /// Cold-retrains the pooled model if the pool changed. Pooling iterates
    /// sources in id order and the retrain is cold, so the model is a pure
    /// function of the upload set (arrival order is irrelevant).
    fn ensure_retrained(&mut self) {
        if !self.dirty {
            return;
        }
        self.dirty = false;
        let mut pooled = MultiLabelDataset::new();
        for (_, (_, data)) in self.uploads.iter() {
            pooled.extend_from(data);
        }
        if pooled.is_empty() {
            self.model = None;
            self.matrix = None;
            return;
        }
        let model = match self.config.train_backend {
            TrainingBackend::Csr => self
                .config
                .one_vs_all
                .train_linear_csr(&pooled, &self.config.svm),
            TrainingBackend::Scalar => self
                .config
                .one_vs_all
                .train_linear(&pooled, &self.config.svm),
        };
        self.model = (model.num_tags() > 0).then_some(model);
        self.matrix = self.model.as_ref().map(OneVsAllModel::weight_matrix);
    }

    /// Scores a query against the pooled model (server role).
    fn server_scores(&mut self, x: &SparseVector) -> Vec<TagPrediction> {
        self.ensure_retrained();
        match (self.config.backend, &self.model, &self.matrix) {
            (ScoringBackend::Scalar, Some(model), _) => model.scores(x),
            (ScoringBackend::Batched, _, Some(matrix)) => matrix.scores(x),
            _ => Vec::new(),
        }
    }

    /// Starts a prediction: answered inline at the server, a query
    /// round-trip from a client.
    pub fn predict(&mut self, now: Millis, x: &SparseVector) -> (u64, Vec<Output>) {
        let request = self.next_request;
        self.next_request += 1;
        let mut out = Vec::new();
        if self.is_server() {
            // Through the same wire round-trip a client gets.
            let frame = wire::encode_query_request(request, x);
            let (_, x) = wire::decode_query_request(&frame).expect("self-encoded frame decodes");
            let scores = self.server_scores(&x);
            out.push(Output::Effect(LocalEffect::Prediction { request, scores }));
        } else {
            self.link.send(
                now,
                self.config.server,
                MessageKind::PredictionQuery,
                wire::encode_query_request(request, x),
                &mut out,
            );
        }
        (request, out)
    }

    /// Sends this core's holdings digest to `partner`. A client that sees
    /// the server's digest lagging its own upload re-pushes it; a recovering
    /// server digests its (empty) pool to solicit exactly those re-pushes.
    pub fn start_anti_entropy(&mut self, now: Millis, partner: PeerId) -> Vec<Output> {
        let mut out = Vec::new();
        let entries = self.installed_versions();
        self.link.note_resync();
        self.link.send(
            now,
            partner,
            MessageKind::AntiEntropy,
            wire::encode_digest(&entries),
            &mut out,
        );
        out
    }
}

impl ProtocolCore for CentralizedCore {
    fn ingest(&mut self, now: Millis, from: PeerId, frame: &[u8]) -> Vec<Output> {
        let mut out = Vec::new();
        let Some(inner) = self.link.on_frame(from, frame, &mut out) else {
            return out;
        };
        match wire::peek_kind(&inner) {
            Some(PayloadKind::Install) => {
                if let Some(effect) = self.decode_install(&inner) {
                    out.push(effect);
                }
            }
            Some(PayloadKind::QueryRequest) => {
                if let Ok((request, x)) = wire::decode_query_request(&inner) {
                    let scores = self.server_scores(&x);
                    self.link.send(
                        now,
                        from,
                        MessageKind::PredictionResponse,
                        wire::encode_query_response(request, 1, &scores),
                        &mut out,
                    );
                }
            }
            Some(PayloadKind::QueryResponse) => {
                if let Ok((request, _weight, scores)) = wire::decode_query_response(&inner) {
                    out.push(Output::Effect(LocalEffect::Prediction { request, scores }));
                }
            }
            Some(PayloadKind::Digest) => {
                // Re-upload when the partner (the server) is behind on this
                // peer's contribution.
                if let Ok(entries) = wire::decode_digest(&inner) {
                    let theirs: BTreeMap<u64, u64> = entries.into_iter().collect();
                    let behind = theirs.get(&self.id.0).copied().unwrap_or(0) < self.my_version;
                    if behind && !self.is_server() && !self.local_data.is_empty() {
                        let dataset_frame = wire::encode_dataset(&self.local_data);
                        let envelope =
                            wire::encode_install(self.id.0, self.my_version, &[&dataset_frame]);
                        self.link.note_resync();
                        self.link
                            .send(now, from, MessageKind::TrainingData, envelope, &mut out);
                    }
                }
            }
            _ => {}
        }
        out
    }

    fn poll_timers(&mut self, now: Millis) -> Vec<Output> {
        let mut out = Vec::new();
        self.link.poll_timers(now, &mut out);
        out
    }
}
