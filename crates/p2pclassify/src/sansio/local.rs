//! The local-only baseline as a per-peer sans-io core.
//!
//! The degenerate case that anchors the driver contract: training and
//! prediction never produce an [`Output::Emit`], so a local-only fleet is
//! bitwise-trivially identical across drivers — and any network traffic a
//! driver observes from one is a bug.

use super::reliable::ReliableCore;
use super::{LocalEffect, Millis, Output, ProtocolCore};
use crate::local::{train_local_only, LocalModel, LocalOnlyConfig};
use crate::protocol::ScoringBackend;
use crate::reliable::LinkStats;
use ml::MultiLabelDataset;
use p2psim::PeerId;
use textproc::SparseVector;

/// A single local-only peer as a pure state machine.
#[derive(Debug, Clone)]
pub struct LocalCore {
    id: PeerId,
    config: LocalOnlyConfig,
    local_data: MultiLabelDataset,
    model: Option<LocalModel>,
    version: u64,
    /// Never sends; kept so [`Self::link_stats`] reports the same all-zero
    /// ledger shape as every other core.
    link: ReliableCore,
    next_request: u64,
}

impl LocalCore {
    /// A fresh core for `id`.
    pub fn new(id: PeerId, config: LocalOnlyConfig) -> Self {
        let link = ReliableCore::new(config.wire.reliability);
        Self {
            id,
            config,
            local_data: MultiLabelDataset::new(),
            model: None,
            version: 0,
            link,
            next_request: 0,
        }
    }

    /// The peer this core belongs to.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// The (necessarily all-zero) link counters.
    pub fn link_stats(&self) -> &LinkStats {
        self.link.stats()
    }

    /// This peer's own `(source, version)` — nothing else is ever installed.
    pub fn installed_versions(&self) -> Vec<(u64, u64)> {
        if self.version > 0 {
            vec![(self.id.0, self.version)]
        } else {
            Vec::new()
        }
    }

    /// Appends `data` and refits the local model (warm when one exists).
    pub fn train(&mut self, _now: Millis, data: &MultiLabelDataset) -> Vec<Output> {
        self.local_data.extend_from(data);
        let warm = self.model.as_ref().map(|m| &m.model);
        match train_local_only(&self.config, &self.local_data, warm) {
            Some(model) => {
                self.model = Some(model);
                self.version += 1;
                vec![Output::Effect(LocalEffect::Installed {
                    source: self.id.0,
                    version: self.version,
                })]
            }
            None => Vec::new(),
        }
    }

    /// Starts (and immediately finishes) a purely local prediction.
    pub fn predict(&mut self, _now: Millis, x: &SparseVector) -> (u64, Vec<Output>) {
        let request = self.next_request;
        self.next_request += 1;
        let scores = match &self.model {
            Some(local) => match self.config.backend {
                ScoringBackend::Scalar => local.model.scores(x),
                ScoringBackend::Batched => local.matrix.scores(x),
            },
            None => Vec::new(),
        };
        (
            request,
            vec![Output::Effect(LocalEffect::Prediction { request, scores })],
        )
    }
}

impl ProtocolCore for LocalCore {
    fn ingest(&mut self, _now: Millis, _from: PeerId, _frame: &[u8]) -> Vec<Output> {
        // Local-only peers ignore the network entirely.
        Vec::new()
    }

    fn poll_timers(&mut self, _now: Millis) -> Vec<Output> {
        Vec::new()
    }
}
