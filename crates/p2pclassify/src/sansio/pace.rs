//! The PACE protocol as a per-peer sans-io core.
//!
//! One [`PaceCore`] holds a single peer's ensemble: its own trained
//! `PaceModel` plus every model installed off the wire, keyed by source.
//! Training re-uses `train_pace_model`, retrieval `rank_pace_models` and
//! voting `combine_pace_votes` — the same protocol body the monolithic
//! [`crate::pace::Pace`] instance runs, so both drivers score identically
//! over the same ensemble.
//!
//! Propagation ships a [`crate::wire::PayloadKind::Install`] envelope
//! `(source, version, [model frame, centroids frame])` to every other peer.
//! Installs are idempotent and version-monotonic: a duplicate or stale
//! delivery changes nothing, so any delivery interleaving converges to the
//! same ensemble. Prediction is entirely local (PACE's defining property) —
//! [`PaceCore::predict`] answers in the same call.

use super::reliable::ReliableCore;
use super::{LocalEffect, Millis, Output, ProtocolCore};
use crate::pace::{combine_pace_votes, rank_pace_models, train_pace_model, PaceConfig, PaceModel};
use crate::reliable::LinkStats;
use crate::wire::{self, PayloadKind};
use ml::MultiLabelDataset;
use p2psim::message::MessageKind;
use p2psim::PeerId;
use std::collections::BTreeMap;
use textproc::SparseVector;

/// One installed ensemble entry.
#[derive(Debug, Clone)]
struct Installed {
    version: u64,
    model: PaceModel,
}

/// A single PACE peer as a pure state machine.
#[derive(Debug, Clone)]
pub struct PaceCore {
    id: PeerId,
    config: PaceConfig,
    /// The static peer list propagation fans out to.
    peers: Vec<PeerId>,
    local_data: MultiLabelDataset,
    /// Every model this peer holds (its own included), keyed by source id.
    ensemble: BTreeMap<u64, Installed>,
    link: ReliableCore,
    next_request: u64,
}

impl PaceCore {
    /// A fresh core for `id` within the static peer set `peers`.
    pub fn new(id: PeerId, peers: Vec<PeerId>, config: PaceConfig) -> Self {
        let link = ReliableCore::new(config.wire.reliability);
        Self {
            id,
            config,
            peers,
            local_data: MultiLabelDataset::new(),
            ensemble: BTreeMap::new(),
            link,
            next_request: 0,
        }
    }

    /// The peer this core belongs to.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// The reliable layer's counters.
    pub fn link_stats(&self) -> &LinkStats {
        self.link.stats()
    }

    /// Installed `(source, version)` pairs.
    pub fn installed_versions(&self) -> Vec<(u64, u64)> {
        self.ensemble.iter().map(|(&s, e)| (s, e.version)).collect()
    }

    /// Encodes the install envelope for one ensemble entry.
    fn install_frame(&self, entry: &Installed) -> Vec<u8> {
        let model_frame = wire::encode_pace_model(
            &entry.model.warm_model(),
            entry.model.accuracy(),
            self.config.wire.precision,
        );
        let centroid_frame = wire::encode_centroids(entry.model.centroids());
        wire::encode_install(
            entry.model.source().0,
            entry.version,
            &[&model_frame, &centroid_frame],
        )
    }

    /// Installs `(source, version, model)` if strictly newer than what is
    /// held. Returns the install effect, or `None` for stale/duplicate.
    fn install(&mut self, source: u64, version: u64, model: PaceModel) -> Option<Output> {
        match self.ensemble.get(&source) {
            Some(cur) if cur.version >= version => None,
            _ => {
                self.ensemble.insert(source, Installed { version, model });
                Some(Output::Effect(LocalEffect::Installed { source, version }))
            }
        }
    }

    /// Appends `data`, retrains this peer's model (warm when one exists) and
    /// propagates it to every other peer at the next version.
    pub fn train(&mut self, now: Millis, data: &MultiLabelDataset) -> Vec<Output> {
        let mut out = Vec::new();
        self.local_data.extend_from(data);
        let warm = self
            .ensemble
            .get(&self.id.0)
            .map(|e| e.model.warm_model().into_owned());
        let Some(model) = train_pace_model(&self.config, self.id, &self.local_data, warm.as_ref())
        else {
            return out;
        };
        let version = self
            .ensemble
            .get(&self.id.0)
            .map(|e| e.version + 1)
            .unwrap_or(1);
        let entry = Installed { version, model };
        let envelope = self.install_frame(&entry);
        // Install the copy decoded off the wire, exactly like the measured
        // monolithic path: lossy wire settings affect this peer's own votes
        // the same way they affect everyone else's.
        if let Some(output) = self.decode_install(&envelope) {
            out.push(output);
        }
        let targets: Vec<PeerId> = self
            .peers
            .iter()
            .copied()
            .filter(|&p| p != self.id)
            .collect();
        for peer in targets {
            self.link.send(
                now,
                peer,
                MessageKind::ModelPropagation,
                envelope.clone(),
                &mut out,
            );
        }
        out
    }

    /// Decodes and (maybe) installs an install envelope.
    fn decode_install(&mut self, frame: &[u8]) -> Option<Output> {
        let (source, version, parts) = wire::decode_install(frame).ok()?;
        let [model_frame, centroid_frame] = parts.as_slice() else {
            return None;
        };
        let (model, accuracy) = wire::decode_pace_model(model_frame).ok()?;
        let centroids = wire::decode_centroids(centroid_frame).ok()?;
        let model = PaceModel::assemble(PeerId(source), model, centroids, accuracy);
        self.install(source, version, model)
    }

    /// Starts a (purely local) prediction: ranks the ensemble by centroid
    /// distance, lets the nearest models vote. The effect is immediate.
    pub fn predict(&mut self, _now: Millis, x: &SparseVector) -> (u64, Vec<Output>) {
        let request = self.next_request;
        self.next_request += 1;
        let x_norm_sq = x.norm_sq();
        let candidates = self.ensemble.values().map(|e| &e.model);
        let nearest = rank_pace_models(&self.config, candidates, x, x_norm_sq);
        let scores = if nearest.is_empty() {
            Vec::new()
        } else {
            combine_pace_votes(&self.config, &nearest, x)
        };
        (
            request,
            vec![Output::Effect(LocalEffect::Prediction { request, scores })],
        )
    }

    /// Sends this core's holdings digest to `partner`; the partner pushes
    /// back anything it holds strictly newer.
    pub fn start_anti_entropy(&mut self, now: Millis, partner: PeerId) -> Vec<Output> {
        let mut out = Vec::new();
        let entries: Vec<(u64, u64)> = self.installed_versions();
        self.link.note_resync();
        self.link.send(
            now,
            partner,
            MessageKind::AntiEntropy,
            wire::encode_digest(&entries),
            &mut out,
        );
        out
    }
}

impl ProtocolCore for PaceCore {
    fn ingest(&mut self, now: Millis, from: PeerId, frame: &[u8]) -> Vec<Output> {
        let mut out = Vec::new();
        let Some(inner) = self.link.on_frame(from, frame, &mut out) else {
            return out;
        };
        match wire::peek_kind(&inner) {
            Some(PayloadKind::Install) => {
                if let Some(effect) = self.decode_install(&inner) {
                    out.push(effect);
                }
            }
            Some(PayloadKind::Digest) => {
                // Push every entry the partner is missing or behind on.
                if let Ok(entries) = wire::decode_digest(&inner) {
                    let theirs: BTreeMap<u64, u64> = entries.into_iter().collect();
                    let stale: Vec<Vec<u8>> = self
                        .ensemble
                        .iter()
                        .filter(|(s, e)| theirs.get(s).copied().unwrap_or(0) < e.version)
                        .map(|(_, e)| self.install_frame(e))
                        .collect();
                    for envelope in stale {
                        self.link.note_resync();
                        self.link.send(
                            now,
                            from,
                            MessageKind::ModelPropagation,
                            envelope,
                            &mut out,
                        );
                    }
                }
            }
            _ => {}
        }
        out
    }

    fn poll_timers(&mut self, now: Millis) -> Vec<Output> {
        let mut out = Vec::new();
        self.link.poll_timers(now, &mut out);
        out
    }
}
