//! Sans-io protocol cores: the four protocols as pure per-peer state
//! machines, decoupled from any I/O.
//!
//! The monolithic instances in [`crate::pace`], [`crate::cempar`],
//! [`crate::centralized`] and [`crate::local`] hold *all* peers' state and
//! call the simulated network directly — ideal for the deterministic
//! experiment tables, useless on a real socket. The cores in this module
//! hold **one peer's** state each and never perform I/O: every externally
//! visible action is returned as an [`Output`] for a driver to execute.
//!
//! ## The driver contract
//!
//! A driver owns the event loop (simulated or real) and feeds a core through
//! exactly two entry points plus the protocol verbs:
//!
//! * [`ProtocolCore::ingest`]`(now, from, frame)` — a frame arrived from a
//!   peer. The core decodes, updates state, and returns outputs.
//! * [`ProtocolCore::poll_timers`]`(now)` — virtual or wall time advanced to
//!   `now`. The core fires any internal deadlines that are due (retransmits,
//!   give-ups) and returns outputs.
//!
//! In return the driver must execute every [`Output`]:
//!
//! * [`Output::Emit`] — put `frame` on the wire to `to`. The [`MessageKind`]
//!   is advisory (byte accounting and tracing); the bytes are the protocol.
//! * [`Output::SetTimer`] — arrange to call `poll_timers` at (or after)
//!   `at`. Cores keep their own deadline ledger, so a driver that wakes late
//!   or spuriously is harmless; `SetTimer`/[`Output::CancelTimer`] only tell
//!   the driver when a wake-up is (no longer) useful.
//! * [`Output::Effect`] — a local, application-visible event: a model
//!   install, a finished prediction, a delivery give-up.
//!
//! Timers are **virtual milliseconds** ([`Millis`]). The simulator driver
//! ([`sim::SimDriver`]) advances them deterministically; the socket driver
//! (`peerd`) maps them onto a monotonic wall-clock timer wheel inside
//! `vendor/reactor` — the only place wall time exists, behind the same
//! audited lint boundary as `doctagger::timing` (`xtask lint` enforces it).
//!
//! ## Why both drivers converge
//!
//! Real sockets deliver frames in arbitrary interleavings; the simulator is
//! sequential. The cores are built so the *final* state depends only on the
//! **set** of delivered payloads, never their order: installs are keyed by
//! `(source, version)` and applied only when the version is strictly newer
//! (idempotent + monotonic), regional cascades and pooled retrains iterate
//! `BTreeMap`s in key order, and prediction responses are correlated by
//! request id and combined only once all regions answered. The
//! `sim_vs_socket` equivalence suite in `crates/peerd` pins this end to end.

pub mod cempar;
pub mod centralized;
pub mod local;
pub mod pace;
pub mod reliable;
pub mod sim;

pub use cempar::CemparCore;
pub use centralized::CentralizedCore;
pub use local::LocalCore;
pub use pace::PaceCore;
pub use reliable::ReliableCore;
pub use sim::SimDriver;

use crate::reliable::LinkStats;
use ml::multilabel::TagPrediction;
use ml::MultiLabelDataset;
use p2psim::message::MessageKind;
use p2psim::PeerId;
use textproc::SparseVector;

/// Virtual milliseconds — the only clock a core ever sees.
pub type Millis = u64;

/// An opaque timer handle, unique per core instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TimerId(pub u64);

/// A local, application-visible event produced by a core.
#[derive(Debug, Clone, PartialEq)]
pub enum LocalEffect {
    /// A model (or upload) from `source` at `version` was installed into
    /// this peer's state. Emitted at most once per `(source, version)` —
    /// duplicate or stale deliveries produce nothing.
    Installed {
        /// The contributing peer's id.
        source: u64,
        /// The installed version (strictly increasing per source).
        version: u64,
    },
    /// A prediction issued through [`PeerCore::predict`] completed.
    Prediction {
        /// The request id `predict` returned.
        request: u64,
        /// Per-tag scores (empty when no model was reachable).
        scores: Vec<TagPrediction>,
    },
    /// The reliable layer abandoned a payload after exhausting its retry
    /// budget (anti-entropy repairs it later).
    GaveUp {
        /// The reliable-layer sequence number of the abandoned payload.
        seq: u64,
    },
}

/// One externally visible action requested by a core.
#[derive(Debug, Clone, PartialEq)]
pub enum Output {
    /// Put `frame` on the wire to `to`.
    Emit {
        /// Destination peer.
        to: PeerId,
        /// Advisory traffic class (byte accounting / tracing).
        kind: MessageKind,
        /// The encoded frame ([`crate::wire`]).
        frame: Vec<u8>,
    },
    /// Call [`ProtocolCore::poll_timers`] at (or after) `at`.
    SetTimer {
        /// Which deadline (for driver-side bookkeeping; cores track their
        /// own ledger and tolerate late or spurious polls).
        id: TimerId,
        /// Virtual-ms deadline.
        at: Millis,
    },
    /// The deadline `id` is no longer needed (advisory).
    CancelTimer {
        /// The deadline being cancelled.
        id: TimerId,
    },
    /// A local application-visible event.
    Effect(LocalEffect),
}

/// The pure state-machine interface every protocol core implements.
pub trait ProtocolCore {
    /// Feeds one received frame into the core.
    fn ingest(&mut self, now: Millis, from: PeerId, frame: &[u8]) -> Vec<Output>;

    /// Fires every internal deadline that is due at `now`.
    fn poll_timers(&mut self, now: Millis) -> Vec<Output>;
}

/// A concrete peer core: one of the four protocols behind a uniform,
/// non-generic surface, so drivers (the sim adapter, `peerd`) and tests can
/// hold heterogeneous fleets without trait objects.
#[derive(Debug, Clone)]
pub enum PeerCore {
    /// A PACE ensemble peer.
    Pace(PaceCore),
    /// A CEMPaR contributor / super-peer.
    Cempar(CemparCore),
    /// A centralized-baseline client (or the server).
    Centralized(CentralizedCore),
    /// A local-only baseline peer.
    Local(LocalCore),
}

impl PeerCore {
    /// The peer this core belongs to.
    pub fn id(&self) -> PeerId {
        match self {
            PeerCore::Pace(c) => c.id(),
            PeerCore::Cempar(c) => c.id(),
            PeerCore::Centralized(c) => c.id(),
            PeerCore::Local(c) => c.id(),
        }
    }

    /// Appends `data` to the peer's local collection, (re)trains its local
    /// model and returns the outputs that propagate it.
    pub fn train(&mut self, now: Millis, data: &MultiLabelDataset) -> Vec<Output> {
        match self {
            PeerCore::Pace(c) => c.train(now, data),
            PeerCore::Cempar(c) => c.train(now, data),
            PeerCore::Centralized(c) => c.train(now, data),
            PeerCore::Local(c) => c.train(now, data),
        }
    }

    /// Starts a prediction for `x`. Returns the request id and the outputs;
    /// the scores arrive as [`LocalEffect::Prediction`] with that id —
    /// immediately for protocols that predict locally (PACE, local-only),
    /// after the response round-trip for the routed ones.
    pub fn predict(&mut self, now: Millis, x: &SparseVector) -> (u64, Vec<Output>) {
        match self {
            PeerCore::Pace(c) => c.predict(now, x),
            PeerCore::Cempar(c) => c.predict(now, x),
            PeerCore::Centralized(c) => c.predict(now, x),
            PeerCore::Local(c) => c.predict(now, x),
        }
    }

    /// Emits an anti-entropy digest of this core's holdings to `partner`.
    /// The partner pushes back anything it holds strictly newer; a partner
    /// whose digest reveals it is *behind* on this core's own contribution
    /// triggers a re-push from here on the next digest exchange.
    pub fn start_anti_entropy(&mut self, now: Millis, partner: PeerId) -> Vec<Output> {
        match self {
            PeerCore::Pace(c) => c.start_anti_entropy(now, partner),
            PeerCore::Cempar(c) => c.start_anti_entropy(now, partner),
            PeerCore::Centralized(c) => c.start_anti_entropy(now, partner),
            PeerCore::Local(_) => Vec::new(),
        }
    }

    /// The `(source, version)` pairs installed in this core — the equivalence
    /// suite's currency for "both drivers reached the same state".
    pub fn installed_versions(&self) -> Vec<(u64, u64)> {
        match self {
            PeerCore::Pace(c) => c.installed_versions(),
            PeerCore::Cempar(c) => c.installed_versions(),
            PeerCore::Centralized(c) => c.installed_versions(),
            PeerCore::Local(c) => c.installed_versions(),
        }
    }

    /// The reliable layer's send-path counters.
    pub fn link_stats(&self) -> &LinkStats {
        match self {
            PeerCore::Pace(c) => c.link_stats(),
            PeerCore::Cempar(c) => c.link_stats(),
            PeerCore::Centralized(c) => c.link_stats(),
            PeerCore::Local(c) => c.link_stats(),
        }
    }
}

impl ProtocolCore for PeerCore {
    fn ingest(&mut self, now: Millis, from: PeerId, frame: &[u8]) -> Vec<Output> {
        match self {
            PeerCore::Pace(c) => c.ingest(now, from, frame),
            PeerCore::Cempar(c) => c.ingest(now, from, frame),
            PeerCore::Centralized(c) => c.ingest(now, from, frame),
            PeerCore::Local(c) => c.ingest(now, from, frame),
        }
    }

    fn poll_timers(&mut self, now: Millis) -> Vec<Output> {
        match self {
            PeerCore::Pace(c) => c.poll_timers(now),
            PeerCore::Cempar(c) => c.poll_timers(now),
            PeerCore::Centralized(c) => c.poll_timers(now),
            PeerCore::Local(c) => c.poll_timers(now),
        }
    }
}
