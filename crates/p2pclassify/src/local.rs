//! Local-only baseline: no collaboration at all.
//!
//! Every peer learns exclusively from its own manually tagged documents. This
//! is the lower bound that motivates collaborative tagging in the first place:
//! a single user's "small number of tagged documents" is not enough to learn
//! accurate models, which is exactly why P2PDocTagger consolidates knowledge
//! across peers (§2).

use crate::error::ProtocolError;
use crate::protocol::{P2PTagClassifier, PeerDataMap, ScoringBackend, TrainingBackend};
use crate::wire::WireConfig;
use ml::batch::TagWeightMatrix;
use ml::multilabel::{OneVsAllModel, OneVsAllTrainer, TagPrediction};
use ml::svm::{LinearSvm, LinearSvmTrainer};
use ml::{MultiLabelDataset, MultiLabelExample, TagId};
use p2psim::{P2PNetwork, PeerId};
use std::collections::BTreeSet;
use textproc::SparseVector;

/// Configuration of the local-only baseline.
#[derive(Debug, Clone, Default)]
pub struct LocalOnlyConfig {
    /// Trainer for the per-tag linear SVMs.
    pub svm: LinearSvmTrainer,
    /// One-vs-all reduction settings.
    pub one_vs_all: OneVsAllTrainer,
    /// Query-time scoring implementation.
    pub backend: ScoringBackend,
    /// Training-time implementation (CSR shared-storage vs the scalar
    /// reference; bit-identical models either way).
    pub train_backend: TrainingBackend,
    /// Wire accounting, kept for configuration uniformity with the other
    /// protocols (the equivalence suite sweeps the same axis everywhere).
    /// Local-only training and prediction never touch the network, so no
    /// payload is ever encoded and both settings behave identically.
    pub wire: WireConfig,
}

/// A peer's local model together with its packed scoring matrix.
///
/// Crate-visible: the monolithic [`LocalOnly`] instance and the per-peer
/// sans-io core ([`crate::sansio::LocalCore`]) hold the same pairing.
#[derive(Debug, Clone)]
pub(crate) struct LocalModel {
    pub(crate) model: OneVsAllModel<LinearSvm>,
    pub(crate) matrix: TagWeightMatrix,
}

impl LocalModel {
    pub(crate) fn build(model: OneVsAllModel<LinearSvm>) -> Self {
        let matrix = model.weight_matrix();
        Self { model, matrix }
    }
}

/// Trains one peer's local-only model, warm-starting from a previous model
/// when given — the protocol body shared by the monolithic [`LocalOnly`]
/// instance and the per-peer sans-io [`crate::sansio::LocalCore`].
pub(crate) fn train_local_only(
    config: &LocalOnlyConfig,
    data: &MultiLabelDataset,
    warm: Option<&OneVsAllModel<LinearSvm>>,
) -> Option<LocalModel> {
    if data.is_empty() {
        return None;
    }
    let m = match (config.train_backend, warm) {
        (TrainingBackend::Csr, Some(prev)) => {
            config
                .one_vs_all
                .train_linear_warm_csr(data, &config.svm, prev)
        }
        (TrainingBackend::Csr, None) => config.one_vs_all.train_linear_csr(data, &config.svm),
        (TrainingBackend::Scalar, Some(prev)) => {
            config.one_vs_all.train_linear_warm(data, &config.svm, prev)
        }
        (TrainingBackend::Scalar, None) => config.one_vs_all.train_linear(data, &config.svm),
    };
    (m.num_tags() > 0).then(|| LocalModel::build(m))
}

/// The local-only baseline instance.
#[derive(Debug, Clone)]
pub struct LocalOnly {
    config: LocalOnlyConfig,
    models: Vec<Option<LocalModel>>,
    local_data: Vec<MultiLabelDataset>,
    trained: bool,
}

impl LocalOnly {
    /// Creates an untrained local-only baseline.
    pub fn new(config: LocalOnlyConfig) -> Self {
        Self {
            config,
            models: Vec::new(),
            local_data: Vec::new(),
            trained: false,
        }
    }

    /// Number of peers that managed to train a usable local model.
    pub fn peers_with_models(&self) -> usize {
        self.models.iter().flatten().count()
    }

    /// Trains one peer's local model from a dataset (pure, so the per-peer
    /// training loop can fan out across cores).
    fn trained_model(&self, data: &MultiLabelDataset) -> Option<LocalModel> {
        self.trained_model_warm(data, None)
    }

    /// Trains one peer's local model, warm-starting the per-tag SVMs from a
    /// previous model when given (the incremental path).
    fn trained_model_warm(
        &self,
        data: &MultiLabelDataset,
        warm: Option<&LocalModel>,
    ) -> Option<LocalModel> {
        train_local_only(&self.config, data, warm.map(|w| &w.model))
    }

    fn train_peer(&mut self, peer: PeerId) {
        let idx = peer.index();
        let refit = self.trained_model_warm(&self.local_data[idx], self.models[idx].as_ref());
        self.models[idx] = refit;
    }

    fn model_for(&self, peer: PeerId) -> Result<&LocalModel, ProtocolError> {
        self.models
            .get(peer.index())
            .and_then(|m| m.as_ref())
            .ok_or(ProtocolError::NoModelReachable)
    }
}

impl P2PTagClassifier for LocalOnly {
    fn name(&self) -> &'static str {
        "local-only"
    }

    fn train(
        &mut self,
        net: &mut P2PNetwork,
        peer_data: &PeerDataMap,
    ) -> Result<(), ProtocolError> {
        self.local_data = peer_data.clone();
        self.local_data
            .resize(net.num_peers(), MultiLabelDataset::new());
        // Per-peer training is independent; the ordered parallel map yields
        // the same model list as the sequential per-peer loop.
        self.models = parallel::par_map(&self.local_data, |data| self.trained_model(data));
        self.trained = true;
        Ok(())
    }

    fn scores(
        &self,
        net: &mut P2PNetwork,
        peer: PeerId,
        x: &SparseVector,
    ) -> Result<Vec<TagPrediction>, ProtocolError> {
        if !self.trained {
            return Err(ProtocolError::NotTrained);
        }
        if !net.is_online(peer) {
            return Err(ProtocolError::PeerOffline);
        }
        let local = self.model_for(peer)?;
        Ok(match self.config.backend {
            ScoringBackend::Scalar => local.model.scores(x),
            ScoringBackend::Batched => local.matrix.scores(x),
        })
    }

    fn predict(
        &self,
        net: &mut P2PNetwork,
        peer: PeerId,
        x: &SparseVector,
    ) -> Result<BTreeSet<TagId>, ProtocolError> {
        if !self.trained {
            return Err(ProtocolError::NotTrained);
        }
        if !net.is_online(peer) {
            return Err(ProtocolError::PeerOffline);
        }
        let local = self.model_for(peer)?;
        Ok(match self.config.backend {
            ScoringBackend::Scalar => local.model.predict(x),
            ScoringBackend::Batched => local.matrix.predict(x),
        })
    }

    fn predict_batch(
        &self,
        net: &mut P2PNetwork,
        requests: &[(PeerId, &SparseVector)],
    ) -> Vec<Result<BTreeSet<TagId>, ProtocolError>> {
        // Local-only prediction never communicates, so batches parallelize
        // across documents like PACE's.
        let net_ref: &P2PNetwork = net;
        parallel::par_map(requests, |&(peer, x)| {
            if !self.trained {
                return Err(ProtocolError::NotTrained);
            }
            if !net_ref.is_online(peer) {
                return Err(ProtocolError::PeerOffline);
            }
            let local = self.model_for(peer)?;
            Ok(match self.config.backend {
                ScoringBackend::Scalar => local.model.predict(x),
                ScoringBackend::Batched => local.matrix.predict(x),
            })
        })
    }

    fn train_incremental(
        &mut self,
        net: &mut P2PNetwork,
        new_data: &PeerDataMap,
    ) -> Result<(), ProtocolError> {
        if !self.trained {
            return Err(ProtocolError::NotTrained);
        }
        if self.local_data.len() < net.num_peers() {
            self.local_data
                .resize(net.num_peers(), MultiLabelDataset::new());
            self.models.resize(net.num_peers(), None);
        }
        let mut touched = Vec::new();
        for (i, data) in new_data.iter().enumerate() {
            if data.is_empty() {
                continue;
            }
            if i >= self.local_data.len() {
                self.local_data.resize(i + 1, MultiLabelDataset::new());
                self.models.resize(i + 1, None);
            }
            self.local_data[i].extend_from(data);
            touched.push(i);
        }
        // Training is purely local (no communication), so — like train() —
        // it is not gated on overlay membership; warm refits of the touched
        // peers fan out across cores.
        let refits = parallel::par_map(&touched, |&idx| {
            self.trained_model_warm(&self.local_data[idx], self.models[idx].as_ref())
        });
        for (idx, model) in touched.into_iter().zip(refits) {
            self.models[idx] = model;
        }
        Ok(())
    }

    fn refine(
        &mut self,
        net: &mut P2PNetwork,
        peer: PeerId,
        example: &MultiLabelExample,
    ) -> Result<(), ProtocolError> {
        if !self.trained {
            return Err(ProtocolError::NotTrained);
        }
        if !net.is_online(peer) {
            return Err(ProtocolError::PeerOffline);
        }
        let idx = peer.index();
        if idx >= self.local_data.len() {
            self.local_data.resize(idx + 1, MultiLabelDataset::new());
            self.models.resize(idx + 1, None);
        }
        self.local_data[idx].push(example.clone());
        self.train_peer(peer);
        Ok(())
    }

    fn on_crash_restart(&mut self, _net: &mut P2PNetwork, peer: PeerId) {
        // A crash wipes the in-memory model; the manually tagged documents
        // are on disk, so the peer refits from its own local data — the one
        // recovery that needs no network at all.
        let idx = peer.index();
        if self.trained && idx < self.local_data.len() {
            self.models[idx] = self.trained_model(&self.local_data[idx]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2psim::SimConfig;

    fn two_tag_example(feature: u32, tag: TagId, v: f64) -> MultiLabelExample {
        MultiLabelExample::new(SparseVector::from_pairs([(feature, v)]), [tag])
    }

    #[test]
    fn peers_only_know_their_own_tags() {
        let mut net = P2PNetwork::new(SimConfig::with_peers(2));
        // Peer 0 only ever saw tag 1; peer 1 only tag 2.
        let data = vec![
            MultiLabelDataset::from_examples(vec![
                two_tag_example(0, 1, 1.0),
                two_tag_example(0, 1, 1.2),
                two_tag_example(1, 5, 1.0),
                two_tag_example(1, 5, 0.9),
            ]),
            MultiLabelDataset::from_examples(vec![
                two_tag_example(2, 2, 1.0),
                two_tag_example(2, 2, 1.1),
                two_tag_example(3, 6, 1.0),
                two_tag_example(3, 6, 0.8),
            ]),
        ];
        let mut local = LocalOnly::new(LocalOnlyConfig::default());
        local.train(&mut net, &data).unwrap();
        assert_eq!(local.peers_with_models(), 2);
        // Peer 0 cannot ever produce tag 2, no matter the document.
        let scores = local
            .scores(&mut net, PeerId(0), &SparseVector::from_pairs([(2, 1.0)]))
            .unwrap();
        assert!(scores.iter().all(|p| p.tag != 2));
        // Peer 1 can.
        let scores = local
            .scores(&mut net, PeerId(1), &SparseVector::from_pairs([(2, 1.0)]))
            .unwrap();
        assert!(scores.iter().any(|p| p.tag == 2));
    }

    #[test]
    fn no_communication_at_all() {
        let mut net = P2PNetwork::new(SimConfig::with_peers(4));
        let data = vec![
            MultiLabelDataset::from_examples(vec![two_tag_example(0, 1, 1.0); 4]),
            MultiLabelDataset::from_examples(vec![two_tag_example(1, 2, 1.0); 4]),
            MultiLabelDataset::new(),
            MultiLabelDataset::new(),
        ];
        let mut local = LocalOnly::new(LocalOnlyConfig::default());
        local.train(&mut net, &data).unwrap();
        local
            .predict(&mut net, PeerId(0), &SparseVector::from_pairs([(0, 1.0)]))
            .unwrap();
        assert_eq!(net.stats().total_messages(), 0);
        assert_eq!(net.stats().total_bytes(), 0);
    }

    #[test]
    fn peer_without_data_cannot_predict() {
        let mut net = P2PNetwork::new(SimConfig::with_peers(2));
        let data = vec![
            MultiLabelDataset::from_examples(vec![two_tag_example(0, 1, 1.0); 4]),
            MultiLabelDataset::new(),
        ];
        let mut local = LocalOnly::new(LocalOnlyConfig::default());
        local.train(&mut net, &data).unwrap();
        assert_eq!(
            local
                .predict(&mut net, PeerId(1), &SparseVector::from_pairs([(0, 1.0)]))
                .unwrap_err(),
            ProtocolError::NoModelReachable
        );
    }

    #[test]
    fn incremental_training_updates_only_touched_peers() {
        let mut net = P2PNetwork::new(SimConfig::with_peers(3));
        let data = vec![
            MultiLabelDataset::from_examples(vec![two_tag_example(0, 1, 1.0); 4]),
            MultiLabelDataset::from_examples(vec![two_tag_example(1, 2, 1.0); 4]),
            MultiLabelDataset::new(),
        ];
        let mut local = LocalOnly::new(LocalOnlyConfig::default());
        assert_eq!(
            local.train_incremental(&mut net, &data).unwrap_err(),
            ProtocolError::NotTrained
        );
        local.train(&mut net, &data).unwrap();
        // Peer 2 (previously model-less) and peer 0 (warm refit) get new data.
        let mut new_data = vec![MultiLabelDataset::new(); 3];
        for i in 0..4 {
            new_data[0].push(two_tag_example(5, 9, 1.0 + 0.1 * i as f64));
            new_data[2].push(two_tag_example(6, 4, 1.0 + 0.1 * i as f64));
        }
        local.train_incremental(&mut net, &new_data).unwrap();
        assert_eq!(local.peers_with_models(), 3);
        assert_eq!(net.stats().total_messages(), 0, "still no communication");
        let p0 = local
            .predict(&mut net, PeerId(0), &SparseVector::from_pairs([(5, 1.0)]))
            .unwrap();
        assert!(p0.contains(&9));
        // Old knowledge survives the warm refit.
        let p0_old = local
            .predict(&mut net, PeerId(0), &SparseVector::from_pairs([(0, 1.0)]))
            .unwrap();
        assert!(p0_old.contains(&1));
        let p2 = local
            .predict(&mut net, PeerId(2), &SparseVector::from_pairs([(6, 1.0)]))
            .unwrap();
        assert!(p2.contains(&4));
        // Peer 1 was untouched: identical model as right after train().
        let p1 = local
            .predict(&mut net, PeerId(1), &SparseVector::from_pairs([(1, 1.0)]))
            .unwrap();
        assert!(p1.contains(&2));
    }

    #[test]
    fn refinement_gives_a_dataless_peer_a_model() {
        let mut net = P2PNetwork::new(SimConfig::with_peers(2));
        let data = vec![
            MultiLabelDataset::from_examples(vec![two_tag_example(0, 1, 1.0); 4]),
            MultiLabelDataset::new(),
        ];
        let mut local = LocalOnly::new(LocalOnlyConfig::default());
        local.train(&mut net, &data).unwrap();
        for i in 0..4 {
            local
                .refine(
                    &mut net,
                    PeerId(1),
                    &two_tag_example(4, 8, 1.0 + i as f64 * 0.1),
                )
                .unwrap();
        }
        let pred = local
            .predict(&mut net, PeerId(1), &SparseVector::from_pairs([(4, 1.0)]))
            .unwrap();
        assert!(pred.contains(&8));
    }
}
