//! Centralized baseline: ship everything to one server.
//!
//! This is the setting the paper argues *against*: "centralized solutions …
//! scalability can become an issue … system failures can result in catastrophic
//! outcomes … centralization of personal data increases the chances of privacy
//! leaks" (§1). Every peer uploads its raw training vectors to a single server
//! peer, which trains one global model; every prediction is a round trip to the
//! server. Accuracy-wise this is the upper bound the P2P protocols are compared
//! against; communication- and availability-wise it is the worst case.

use crate::error::ProtocolError;
use crate::protocol::{P2PTagClassifier, PeerDataMap, ScoringBackend, TrainingBackend};
use crate::reliable::{LinkStats, ReliableLink};
use crate::wire::{self, WireConfig, WireCost};
use ml::batch::TagWeightMatrix;
use ml::multilabel::{OneVsAllModel, OneVsAllTrainer, TagPrediction};
use ml::svm::{LinearSvm, LinearSvmTrainer};
use ml::{MultiLabelDataset, MultiLabelExample, TagId};
use p2psim::message::MessageKind;
use p2psim::{P2PNetwork, PeerId};
use std::collections::BTreeSet;
use textproc::SparseVector;

/// Configuration of the centralized baseline.
#[derive(Debug, Clone)]
pub struct CentralizedConfig {
    /// The peer acting as the central server.
    pub server: PeerId,
    /// Trainer for the per-tag linear SVMs on the pooled data.
    pub svm: LinearSvmTrainer,
    /// One-vs-all reduction settings.
    pub one_vs_all: OneVsAllTrainer,
    /// Decision threshold for assigning a tag.
    pub vote_threshold: f64,
    /// Minimum number of tags assigned when nothing reaches the threshold.
    pub min_tags: usize,
    /// Query-time scoring implementation ([`ScoringBackend::Batched`] scores
    /// the pooled model's whole tag universe in one pass per document).
    pub backend: ScoringBackend,
    /// Training-time implementation (CSR shared-storage vs the scalar
    /// reference; bit-identical models either way). The pooled server-side
    /// dataset is the largest one-vs-all problem in the system, so this is
    /// where the shared CSR arena pays the most.
    pub train_backend: TrainingBackend,
    /// Wire accounting. Under [`WireCost::Measured`] (the default) the raw
    /// training uploads, refinements, prediction queries and responses are
    /// really encoded — sends charge the frame length and the server pools /
    /// scores the *decoded* payloads. [`WireCost::Estimated`] keeps the
    /// legacy `wire_size()` reference accounting.
    pub wire: WireConfig,
}

impl Default for CentralizedConfig {
    fn default() -> Self {
        Self {
            server: PeerId(0),
            svm: LinearSvmTrainer::default(),
            one_vs_all: OneVsAllTrainer::default(),
            vote_threshold: 0.0,
            min_tags: 1,
            backend: ScoringBackend::default(),
            train_backend: TrainingBackend::default(),
            wire: WireConfig::default(),
        }
    }
}

/// The centralized baseline instance.
#[derive(Debug, Clone)]
pub struct Centralized {
    config: CentralizedConfig,
    model: Option<OneVsAllModel<LinearSvm>>,
    /// CSR-packed form of `model` for the batched backend; rebuilt alongside
    /// the model on every retrain.
    matrix: Option<TagWeightMatrix>,
    pooled: MultiLabelDataset,
    /// Per-peer examples that could not reach the server yet (sender or
    /// server offline): retried on the next incremental round.
    pending: Vec<MultiLabelDataset>,
    /// Each peer's durable record of what it successfully uploaded — the
    /// recovery source when the server crash-restarts and loses its pool.
    uploaded: Vec<MultiLabelDataset>,
    /// The send path: passthrough by default, ack/retransmit when
    /// [`WireConfig::reliability`] is set. Also the ledger of every send
    /// outcome (losses, retransmits, re-syncs).
    link: ReliableLink,
    trained: bool,
}

impl Centralized {
    /// Creates an untrained centralized baseline.
    pub fn new(config: CentralizedConfig) -> Self {
        let link = ReliableLink::new(config.wire.reliability);
        Self {
            config,
            model: None,
            matrix: None,
            pooled: MultiLabelDataset::new(),
            pending: Vec::new(),
            uploaded: Vec::new(),
            link,
            trained: false,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CentralizedConfig {
        &self.config
    }

    /// Number of training examples pooled at the server.
    pub fn pooled_examples(&self) -> usize {
        self.pooled.len()
    }

    fn retrain(&mut self) {
        if self.pooled.is_empty() {
            self.model = None;
            self.matrix = None;
            return;
        }
        let model = match self.config.train_backend {
            TrainingBackend::Csr => self
                .config
                .one_vs_all
                .train_linear_csr(&self.pooled, &self.config.svm),
            TrainingBackend::Scalar => self
                .config
                .one_vs_all
                .train_linear(&self.pooled, &self.config.svm),
        };
        self.model = (model.num_tags() > 0).then_some(model);
        self.matrix = self.model.as_ref().map(OneVsAllModel::weight_matrix);
    }

    /// Ships `data` from `from` to the server over the reliable link and
    /// returns the dataset the server actually pools — under the measured
    /// wire that is the copy decoded off the wire, so the TrainingData rows
    /// of the E3 table stay measured rather than estimated. `None` means the
    /// upload never landed (server unreachable, frame lost, or the frame was
    /// damaged in transit and rejected by strict decode).
    fn upload(
        &mut self,
        net: &mut P2PNetwork,
        from: PeerId,
        kind: MessageKind,
        data: &MultiLabelDataset,
    ) -> Option<MultiLabelDataset> {
        let server = self.config.server;
        match self.config.wire.cost {
            WireCost::Estimated => self
                .link
                .send_sized(net, from, server, kind, data.wire_size())
                .ok()
                .map(|_| data.clone()),
            WireCost::Measured => {
                let frame = wire::encode_dataset(data);
                let delivered = self.link.send_frame(net, from, server, kind, &frame).ok()?;
                // A corrupted frame that fails strict decode never reaches
                // the pool: the upload counts as lost and is retried later.
                wire::decode_dataset(&delivered).ok()
            }
        }
    }

    /// Warm-start variant of [`Self::retrain`]: the global model is refit
    /// from its stored per-tag weights with a few SGD passes over the grown
    /// pool instead of a cold dual solve (falls back to a cold train when no
    /// model exists yet).
    fn retrain_warm(&mut self) {
        if self.pooled.is_empty() || self.model.is_none() {
            // No pool to refit on (keep whatever model exists) or no model
            // to warm-start from (cold train handles both cases).
            if !self.pooled.is_empty() {
                self.retrain();
            }
            return;
        }
        let prev = self.model.take().expect("checked above");
        let model = match self.config.train_backend {
            TrainingBackend::Csr => {
                self.config
                    .one_vs_all
                    .train_linear_warm_csr(&self.pooled, &self.config.svm, &prev)
            }
            TrainingBackend::Scalar => {
                self.config
                    .one_vs_all
                    .train_linear_warm(&self.pooled, &self.config.svm, &prev)
            }
        };
        self.model = (model.num_tags() > 0).then_some(model);
        self.matrix = self.model.as_ref().map(OneVsAllModel::weight_matrix);
    }
}

impl P2PTagClassifier for Centralized {
    fn name(&self) -> &'static str {
        "centralized"
    }

    fn train(
        &mut self,
        net: &mut P2PNetwork,
        peer_data: &PeerDataMap,
    ) -> Result<(), ProtocolError> {
        self.pooled = MultiLabelDataset::new();
        let n = net.num_peers().max(peer_data.len());
        self.pending = vec![MultiLabelDataset::new(); n];
        self.uploaded = vec![MultiLabelDataset::new(); n];
        let server = self.config.server;
        for (i, data) in peer_data.iter().enumerate() {
            let peer = PeerId::from(i);
            if data.is_empty() {
                continue;
            }
            if peer == server {
                // Pooled locally — still recorded in the ledger so a server
                // crash-restart can recover its own share without a send.
                self.uploaded[i].extend_from(data);
                self.pooled.extend_from(data);
                continue;
            }
            if !net.is_online(peer) {
                // The peer uploads once it is back online (next incremental
                // round).
                self.pending[i].extend_from(data);
                continue;
            }
            // The raw document vectors travel to the server.
            match self.upload(net, peer, MessageKind::TrainingData, data) {
                Some(landed) => {
                    self.uploaded[i].extend_from(&landed);
                    self.pooled.extend_from(&landed);
                }
                None => {
                    // Server unreachable or frame lost: the upload is
                    // retried on the next incremental round.
                    self.pending[i].extend_from(data);
                }
            }
        }
        self.retrain();
        self.trained = true;
        Ok(())
    }

    fn scores(
        &self,
        net: &mut P2PNetwork,
        peer: PeerId,
        x: &SparseVector,
    ) -> Result<Vec<TagPrediction>, ProtocolError> {
        if !self.trained {
            return Err(ProtocolError::NotTrained);
        }
        if !net.is_online(peer) {
            return Err(ProtocolError::PeerOffline);
        }
        let Some(model) = &self.model else {
            return Err(ProtocolError::NoModelReachable);
        };
        let server = self.config.server;
        if peer == server {
            // Local query at the server: no communication, no codec.
            return Ok(match self.config.backend {
                ScoringBackend::Scalar => model.scores(x),
                ScoringBackend::Batched => self
                    .matrix
                    .as_ref()
                    .expect("matrix is rebuilt with the model")
                    .scores(x),
            });
        }
        // Round trip to the server; if it is down, the whole system is down
        // (the single point of failure the paper warns about). Under the
        // measured wire the server scores the query *decoded from the frame*
        // and the requester uses the scores decoded from the response.
        let (query_bytes, decoded_query) = match self.config.wire.cost {
            WireCost::Estimated => (x.wire_size(), None),
            WireCost::Measured => {
                let frame = wire::encode_query(x);
                let decoded = wire::decode_query(&frame).expect("self-encoded query frame decodes");
                (frame.len(), Some(decoded))
            }
        };
        net.send(peer, server, MessageKind::PredictionQuery, query_bytes)
            .map_err(|_| ProtocolError::NoModelReachable)?;
        let x_eval = decoded_query.as_ref().unwrap_or(x);
        let scores = match self.config.backend {
            ScoringBackend::Scalar => model.scores(x_eval),
            ScoringBackend::Batched => self
                .matrix
                .as_ref()
                .expect("matrix is rebuilt with the model")
                .scores(x_eval),
        };
        let (response_size, scores) = match self.config.wire.cost {
            WireCost::Estimated => (
                model.num_tags() * (std::mem::size_of::<TagId>() + 8),
                scores,
            ),
            WireCost::Measured => {
                let frame = wire::encode_scores(&scores);
                let decoded =
                    wire::decode_scores(&frame).expect("self-encoded score frame decodes");
                (frame.len(), decoded)
            }
        };
        // The response frame can be lost under an active fault plan, in which
        // case the requester really has no scores (query-path sends run under
        // `&self` and cannot route through the reliable link; the loss shows
        // up in the network fault counters instead). Fault-free runs never
        // take the error arm: the requester was checked online above and no
        // simulated time passes mid-query.
        net.send(server, peer, MessageKind::PredictionResponse, response_size)
            .map_err(|_| ProtocolError::NoModelReachable)?;
        Ok(scores)
    }

    fn predict(
        &self,
        net: &mut P2PNetwork,
        peer: PeerId,
        x: &SparseVector,
    ) -> Result<BTreeSet<TagId>, ProtocolError> {
        let scores = self.scores(net, peer, x)?;
        Ok(crate::protocol::select_tags(
            &scores,
            self.config.vote_threshold,
            self.config.min_tags,
        ))
    }

    fn train_incremental(
        &mut self,
        net: &mut P2PNetwork,
        new_data: &PeerDataMap,
    ) -> Result<(), ProtocolError> {
        if !self.trained {
            return Err(ProtocolError::NotTrained);
        }
        let server = self.config.server;
        if self.pending.len() < new_data.len().max(net.num_peers()) {
            self.pending.resize(
                new_data.len().max(net.num_peers()),
                MultiLabelDataset::new(),
            );
        }
        if self.uploaded.len() < self.pending.len() {
            self.uploaded
                .resize(self.pending.len(), MultiLabelDataset::new());
        }
        for (i, data) in new_data.iter().enumerate() {
            if !data.is_empty() {
                self.pending[i].extend_from(data);
            }
        }
        let mut changed = false;
        for i in 0..self.pending.len() {
            if self.pending[i].is_empty() {
                continue;
            }
            let peer = PeerId::from(i);
            let landed = if peer == server {
                std::mem::take(&mut self.pending[i])
            } else {
                if !net.is_online(peer) {
                    continue;
                }
                // Only the outstanding document vectors travel, not the whole
                // collection; failures stay queued for the next round.
                let batch = std::mem::take(&mut self.pending[i]);
                match self.upload(net, peer, MessageKind::TrainingData, &batch) {
                    // The server pools what it decoded off the wire.
                    Some(landed) => landed,
                    None => {
                        self.pending[i] = batch;
                        continue;
                    }
                }
            };
            self.uploaded[i].extend_from(&landed);
            self.pooled.extend_from(&landed);
            changed = true;
        }
        if changed {
            self.retrain_warm();
        }
        Ok(())
    }

    fn refine(
        &mut self,
        net: &mut P2PNetwork,
        peer: PeerId,
        example: &MultiLabelExample,
    ) -> Result<(), ProtocolError> {
        if !self.trained {
            return Err(ProtocolError::NotTrained);
        }
        if !net.is_online(peer) {
            return Err(ProtocolError::PeerOffline);
        }
        let server = self.config.server;
        let mut received = example.clone();
        if peer != server {
            received = match self.config.wire.cost {
                WireCost::Estimated => {
                    self.link
                        .send_sized(
                            net,
                            peer,
                            server,
                            MessageKind::RefinementUpdate,
                            example.wire_size(),
                        )
                        .map_err(|_| ProtocolError::NoModelReachable)?;
                    example.clone()
                }
                WireCost::Measured => {
                    let frame = wire::encode_example(example);
                    let delivered = self
                        .link
                        .send_frame(net, peer, server, MessageKind::RefinementUpdate, &frame)
                        .map_err(|_| ProtocolError::NoModelReachable)?;
                    // Strict decode: a frame damaged in transit is a lost
                    // refinement, never a garbage example in the pool.
                    wire::decode_example(&delivered).map_err(|_| ProtocolError::NoModelReachable)?
                }
            };
        }
        let idx = peer.index();
        if self.uploaded.len() <= idx {
            self.uploaded.resize(idx + 1, MultiLabelDataset::new());
        }
        self.uploaded[idx].push(received.clone());
        self.pooled.push(received);
        self.retrain_warm();
        Ok(())
    }

    fn on_crash_restart(&mut self, _net: &mut P2PNetwork, peer: PeerId) {
        // Only the server holds protocol state: a crash wipes the pooled
        // dataset and the global model (the catastrophic single point of
        // failure the paper warns about in §1). Contributors keep their
        // durable `uploaded` ledgers, which is what `resync` rebuilds from.
        if peer == self.config.server {
            self.pooled = MultiLabelDataset::new();
            self.model = None;
            self.matrix = None;
        }
    }

    fn resync(&mut self, net: &mut P2PNetwork, peer: PeerId) -> usize {
        let server = self.config.server;
        if !self.trained || peer != server || !self.pooled.is_empty() || !net.is_online(server) {
            return 0;
        }
        // Anti-entropy after a server crash-restart: every contributor
        // re-ships its previously acknowledged share from the durable
        // ledger. Contributors that are offline (or whose re-upload is lost
        // again) fall back to the pending queue and retry on the next
        // incremental round.
        let mut repaired = 0;
        for i in 0..self.uploaded.len() {
            if self.uploaded[i].is_empty() {
                continue;
            }
            let contributor = PeerId::from(i);
            let landed = if contributor == server {
                // The server's own share never left the machine.
                Some(self.uploaded[i].clone())
            } else if net.is_online(contributor) {
                let batch = self.uploaded[i].clone();
                self.upload(net, contributor, MessageKind::AntiEntropy, &batch)
            } else {
                None
            };
            match landed {
                Some(batch) => {
                    self.pooled.extend_from(&batch);
                    if contributor != server {
                        self.link.note_resync();
                        net.note_resync();
                    }
                    repaired += 1;
                }
                None => {
                    let batch = std::mem::take(&mut self.uploaded[i]);
                    if self.pending.len() <= i {
                        self.pending.resize(i + 1, MultiLabelDataset::new());
                    }
                    self.pending[i].extend_from(&batch);
                }
            }
        }
        if repaired > 0 {
            self.retrain();
        }
        repaired
    }

    fn link_stats(&self) -> LinkStats {
        *self.link.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2psim::churn::ChurnModel;
    use p2psim::SimConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn toy_peer_data(num_peers: usize, per_peer: usize, seed: u64) -> PeerDataMap {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..num_peers)
            .map(|_| {
                let mut ds = MultiLabelDataset::new();
                for _ in 0..per_peer {
                    let a = 0.8 + rng.gen_range(0.0..0.4);
                    if rng.gen_bool(0.5) {
                        ds.push(MultiLabelExample::new(
                            SparseVector::from_pairs([(0, a)]),
                            [1],
                        ));
                    } else {
                        ds.push(MultiLabelExample::new(
                            SparseVector::from_pairs([(1, a)]),
                            [2],
                        ));
                    }
                }
                ds
            })
            .collect()
    }

    #[test]
    fn pools_all_data_and_predicts() {
        let mut net = P2PNetwork::new(SimConfig::with_peers(8));
        let data = toy_peer_data(8, 10, 1);
        let mut c = Centralized::new(CentralizedConfig::default());
        c.train(&mut net, &data).unwrap();
        assert_eq!(c.pooled_examples(), 80);
        let pred = c
            .predict(&mut net, PeerId(3), &SparseVector::from_pairs([(0, 1.0)]))
            .unwrap();
        assert!(pred.contains(&1));
    }

    #[test]
    fn training_ships_raw_data_to_the_server() {
        let mut net = P2PNetwork::new(SimConfig::with_peers(8));
        let data = toy_peer_data(8, 10, 2);
        // Under the measured wire (the default) every upload is charged at
        // its real encoded frame length.
        let expected_bytes: usize = data
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 0)
            .map(|(_, d)| wire::encode_dataset(d).len())
            .sum();
        let mut c = Centralized::new(CentralizedConfig::default());
        c.train(&mut net, &data).unwrap();
        let stats = net.stats();
        assert_eq!(
            stats.kind(MessageKind::TrainingData).bytes as usize,
            expected_bytes
        );
        // The server is the hot spot: it receives everything.
        assert_eq!(stats.bytes_received_by(PeerId(0)) as usize, expected_bytes);
    }

    #[test]
    fn predictions_cost_a_round_trip_except_at_the_server() {
        let mut net = P2PNetwork::new(SimConfig::with_peers(4));
        let data = toy_peer_data(4, 10, 3);
        let mut c = Centralized::new(CentralizedConfig::default());
        c.train(&mut net, &data).unwrap();
        let before = net.stats().kind(MessageKind::PredictionQuery).messages;
        c.predict(&mut net, PeerId(2), &SparseVector::from_pairs([(0, 1.0)]))
            .unwrap();
        assert_eq!(
            net.stats().kind(MessageKind::PredictionQuery).messages,
            before + 1
        );
        c.predict(&mut net, PeerId(0), &SparseVector::from_pairs([(0, 1.0)]))
            .unwrap();
        assert_eq!(
            net.stats().kind(MessageKind::PredictionQuery).messages,
            before + 1
        );
    }

    #[test]
    fn server_failure_is_catastrophic() {
        // Heavy churn: when the server is offline, every remote prediction fails.
        let mut net = P2PNetwork::new(SimConfig {
            num_peers: 16,
            churn: ChurnModel::Exponential {
                mean_session_secs: 10.0,
                mean_offline_secs: 1_000.0,
            },
            horizon_secs: 100_000,
            seed: 5,
            ..Default::default()
        });
        let data = toy_peer_data(16, 5, 4);
        let mut c = Centralized::new(CentralizedConfig::default());
        c.train(&mut net, &data).unwrap();
        net.advance(p2psim::SimTime::from_secs(50_000));
        assert!(
            !net.is_online(PeerId(0)),
            "server should be offline under this churn"
        );
        if let Some(alive) = net.online_peers().find(|&p| p != PeerId(0)) {
            let r = c.predict(&mut net, alive, &SparseVector::from_pairs([(0, 1.0)]));
            assert_eq!(r.unwrap_err(), ProtocolError::NoModelReachable);
        }
    }

    #[test]
    fn refinement_updates_the_global_model() {
        let mut net = P2PNetwork::new(SimConfig::with_peers(4));
        let data = toy_peer_data(4, 10, 6);
        let mut c = Centralized::new(CentralizedConfig::default());
        c.train(&mut net, &data).unwrap();
        let probe = SparseVector::from_pairs([(9, 2.0)]);
        for i in 0..6 {
            c.refine(
                &mut net,
                PeerId(1),
                &MultiLabelExample::new(SparseVector::from_pairs([(9, 1.0 + i as f64 * 0.1)]), [7]),
            )
            .unwrap();
        }
        let scores = c.scores(&mut net, PeerId(1), &probe).unwrap();
        assert!(scores.iter().any(|p| p.tag == 7));
    }

    #[test]
    fn incremental_training_ships_only_the_new_examples() {
        let mut net = P2PNetwork::new(SimConfig::with_peers(4));
        let data = toy_peer_data(4, 10, 7);
        let mut c = Centralized::new(CentralizedConfig::default());
        assert_eq!(
            c.train_incremental(&mut net, &data).unwrap_err(),
            ProtocolError::NotTrained
        );
        c.train(&mut net, &data).unwrap();
        let bytes_before = net.stats().kind(MessageKind::TrainingData).bytes;
        let mut new_data = vec![MultiLabelDataset::new(); 4];
        for i in 0..6 {
            new_data[2].push(MultiLabelExample::new(
                SparseVector::from_pairs([(8, 1.0 + 0.1 * i as f64)]),
                [5],
            ));
        }
        let expected = wire::encode_dataset(&new_data[2]).len() as u64;
        c.train_incremental(&mut net, &new_data).unwrap();
        assert_eq!(
            net.stats().kind(MessageKind::TrainingData).bytes - bytes_before,
            expected,
            "only the delta travels to the server"
        );
        assert_eq!(c.pooled_examples(), 46);
        let pred = c
            .predict(&mut net, PeerId(1), &SparseVector::from_pairs([(8, 1.2)]))
            .unwrap();
        assert!(pred.contains(&5));
        // Old knowledge survives the warm refit.
        let old = c
            .predict(&mut net, PeerId(1), &SparseVector::from_pairs([(0, 1.0)]))
            .unwrap();
        assert!(old.contains(&1));
    }

    #[test]
    fn untrained_errors() {
        let mut net = P2PNetwork::new(SimConfig::with_peers(2));
        let c = Centralized::new(CentralizedConfig::default());
        assert_eq!(
            c.scores(&mut net, PeerId(1), &SparseVector::new())
                .unwrap_err(),
            ProtocolError::NotTrained
        );
    }
}
