//! Protocol-level errors.

use p2psim::network::DeliveryError;
use serde::{Deserialize, Serialize};

/// Errors surfaced by the P2P classification protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtocolError {
    /// The protocol has not been trained yet.
    NotTrained,
    /// No model could be reached to answer the query (e.g. every super-peer or
    /// the central server is offline).
    NoModelReachable,
    /// The querying peer is itself offline.
    PeerOffline,
    /// A network-level delivery failure.
    Delivery(DeliveryError),
}

impl From<DeliveryError> for ProtocolError {
    fn from(e: DeliveryError) -> Self {
        ProtocolError::Delivery(e)
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::NotTrained => f.write_str("protocol has not been trained"),
            ProtocolError::NoModelReachable => f.write_str("no model reachable for prediction"),
            ProtocolError::PeerOffline => f.write_str("querying peer is offline"),
            ProtocolError::Delivery(e) => write!(f, "delivery failure: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_from() {
        let e: ProtocolError = DeliveryError::ReceiverOffline.into();
        assert!(matches!(e, ProtocolError::Delivery(_)));
        assert!(e.to_string().contains("delivery failure"));
        assert!(ProtocolError::NotTrained.to_string().contains("trained"));
    }
}
