//! Protocol frame layer: every payload the four protocols put on the
//! simulated network travels as a real byte frame built on [`ml::codec`].
//!
//! A frame is `magic (0xD7) | version (1) | payload kind | payload body`.
//! The body encodings live in [`ml::codec`]; this module adds the framing,
//! strict decode validation (magic/version/kind checks, no trailing bytes)
//! and the [`WireCost`] switch that mirrors the existing
//! [`crate::protocol::ScoringBackend`] / [`crate::protocol::TrainingBackend`]
//! reference/fast pairs:
//!
//! * [`WireCost::Measured`] (the default) — payloads are **actually
//!   encoded**; `net.send(..)` charges the encoded byte length and the
//!   receiving side **decodes its copy from the frame**. Round-tripping every
//!   propagation is what makes the E3 communication tables falsifiable and
//!   surfaces any estimate-vs-reality divergence as a test failure.
//! * [`WireCost::Estimated`] — the legacy hand-rolled `wire_size()`
//!   estimators, kept as the reference backend the `wire` benchmark measures
//!   the codec against.
//!
//! With lossless settings ([`WeightPrecision::F64`], no pruning) the decoded
//! artifacts are **bit-identical** to the encoded ones, so `Measured` changes
//! no prediction anywhere — `tests/equivalence.rs` pins this for all four
//! protocols. The lossy knobs ([`WireConfig::precision`],
//! [`WireConfig::prune_top_k`]) trade bytes for a measured macro-F1 delta.

use ml::codec::{self, ByteReader, CodecError, WeightPrecision};
use ml::multilabel::TagPrediction;
use ml::svm::{KernelSvm, LinearSvm};
use ml::{MultiLabelDataset, MultiLabelExample, OneVsAllModel};
use textproc::SparseVector;

/// First byte of every frame.
pub const MAGIC: u8 = 0xD7;
/// Wire format version.
pub const VERSION: u8 = 1;

/// Discriminates the payload carried by a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PayloadKind {
    /// A PACE linear one-vs-all model plus its training accuracy.
    LinearModel = 1,
    /// PACE k-means centroids.
    Centroids = 2,
    /// A CEMPaR kernel one-vs-all model (support vectors).
    KernelModel = 3,
    /// Raw training examples (the Centralized baseline's upload).
    TrainingData = 4,
    /// A single corrected example (refinement).
    Refinement = 5,
    /// An untagged document vector sent for prediction.
    Query = 6,
    /// A scored tag list sent back to a requester.
    Scores = 7,
    /// A sequence-numbered, checksummed wrapper around another frame
    /// (reliability layer).
    Reliable = 8,
    /// An acknowledgement of a [`PayloadKind::Reliable`] frame.
    Ack = 9,
    /// An anti-entropy digest: the `(source, version)` pairs a peer holds.
    Digest = 10,
    /// A versioned install envelope: `(source, version)` plus the inner
    /// frames that together replace source's model (sans-io cores).
    Install = 11,
    /// A correlated prediction query: request id plus the document vector.
    QueryRequest = 12,
    /// A correlated prediction response: request id, vote weight, scores.
    QueryResponse = 13,
}

impl PayloadKind {
    fn from_byte(b: u8) -> Option<Self> {
        Some(match b {
            1 => PayloadKind::LinearModel,
            2 => PayloadKind::Centroids,
            3 => PayloadKind::KernelModel,
            4 => PayloadKind::TrainingData,
            5 => PayloadKind::Refinement,
            6 => PayloadKind::Query,
            7 => PayloadKind::Scores,
            8 => PayloadKind::Reliable,
            9 => PayloadKind::Ack,
            10 => PayloadKind::Digest,
            11 => PayloadKind::Install,
            12 => PayloadKind::QueryRequest,
            13 => PayloadKind::QueryResponse,
            _ => return None,
        })
    }
}

/// Why a frame could not be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The payload body was malformed.
    Codec(CodecError),
    /// The first byte was not [`MAGIC`].
    BadMagic(u8),
    /// Unknown wire format version.
    BadVersion(u8),
    /// Unknown payload kind byte.
    BadKind(u8),
    /// The frame carried a different payload kind than the decoder expected.
    WrongKind {
        /// What the decoder was asked to read.
        expected: PayloadKind,
        /// What the frame actually carried.
        got: PayloadKind,
    },
    /// Bytes were left over after the payload was fully decoded.
    TrailingBytes,
    /// A reliable frame's body failed its FNV-1a checksum (bit corruption).
    ChecksumMismatch,
}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        WireError::Codec(e)
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Codec(e) => write!(f, "payload error: {e}"),
            WireError::BadMagic(b) => write!(f, "bad frame magic 0x{b:02X}"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadKind(k) => write!(f, "unknown payload kind {k}"),
            WireError::WrongKind { expected, got } => {
                write!(f, "expected {expected:?} frame, got {got:?}")
            }
            WireError::TrailingBytes => f.write_str("trailing bytes after payload"),
            WireError::ChecksumMismatch => f.write_str("reliable frame checksum mismatch"),
        }
    }
}

impl std::error::Error for WireError {}

/// Which byte-accounting backend a protocol charges its traffic with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireCost {
    /// The legacy hand-rolled `wire_size()` estimators (nothing is
    /// serialized). Kept as the reference the `wire` benchmark compares the
    /// codec against.
    Estimated,
    /// Real encoded frames: sends charge `encoded.len()` and receivers decode
    /// from the bytes.
    #[default]
    Measured,
}

/// Wire-format settings of one protocol instance.
#[derive(Debug, Clone)]
pub struct WireConfig {
    /// Measured frames (default) or the legacy estimator.
    pub cost: WireCost,
    /// Precision of model weights on the wire. [`WeightPrecision::F64`]
    /// (default) round-trips bit-identically; `F32`/`Q8` trade bytes for a
    /// measured macro-F1 delta. Ignored under [`WireCost::Estimated`].
    pub precision: WeightPrecision,
    /// When set, linear models are pruned to the `k` largest-magnitude
    /// weights per tag before propagation — guarded by
    /// [`Self::prune_guard`] via [`ml::codec::prune_model_guarded`]. Only
    /// PACE (linear model propagation) consults this. Ignored under
    /// [`WireCost::Estimated`].
    pub prune_top_k: Option<usize>,
    /// Maximum mean per-tag training-accuracy drop a pruned model may incur
    /// before propagation falls back to the unpruned model.
    pub prune_guard: f64,
    /// When set, model propagation runs through the reliable-delivery layer
    /// ([`crate::reliable::ReliableLink`]): sequence-numbered checksummed
    /// frames, ack/timeout retransmission with exponential backoff, every
    /// attempt charged in measured wire bytes. `None` (the default) keeps the
    /// exact pre-reliability send behaviour — no wrapper bytes, no acks — so
    /// fault-free runs stay bit-identical.
    pub reliability: Option<ReliabilityConfig>,
}

impl Default for WireConfig {
    fn default() -> Self {
        Self {
            cost: WireCost::Measured,
            precision: WeightPrecision::F64,
            prune_top_k: None,
            prune_guard: 0.02,
            reliability: None,
        }
    }
}

/// Retry policy of the reliable-delivery layer.
///
/// Retransmits are charged in **measured wire bytes**: every attempt re-sends
/// the full wrapped frame and every ack is a real (lossy) reverse message, so
/// the E3 communication tables reflect the true cost of reliability under
/// loss. Backoff is accounted as virtual latency, never wall-clock sleeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityConfig {
    /// Total send attempts (first try + retransmits) before giving up.
    pub max_attempts: u32,
    /// Base retransmit timeout; attempt `n` backs off to `base * 2^n`.
    pub backoff_base_ms: u64,
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            backoff_base_ms: 250,
        }
    }
}

impl WireConfig {
    /// The legacy-estimator configuration (the pre-codec reference backend).
    pub fn estimated() -> Self {
        Self {
            cost: WireCost::Estimated,
            ..Self::default()
        }
    }

    /// Measured frames with explicit settings.
    pub fn measured(precision: WeightPrecision, prune_top_k: Option<usize>) -> Self {
        Self {
            cost: WireCost::Measured,
            precision,
            prune_top_k,
            ..Self::default()
        }
    }

    /// Whether this configuration round-trips payloads bit-identically.
    pub fn is_lossless(&self) -> bool {
        self.precision == WeightPrecision::F64 && self.prune_top_k.is_none()
    }
}

fn frame(kind: PayloadKind) -> Vec<u8> {
    vec![MAGIC, VERSION, kind as u8]
}

/// The payload kind of a frame, without decoding the body — how a sans-io
/// core routes an incoming frame to the right decoder. `None` when the
/// envelope is malformed (short, bad magic/version, unknown kind).
pub fn peek_kind(bytes: &[u8]) -> Option<PayloadKind> {
    match bytes {
        [MAGIC, VERSION, kind, ..] => PayloadKind::from_byte(*kind),
        _ => None,
    }
}

fn open(bytes: &[u8], expected: PayloadKind) -> Result<ByteReader<'_>, WireError> {
    let mut r = ByteReader::new(bytes);
    let magic = r.read_byte().map_err(WireError::from)?;
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = r.read_byte().map_err(WireError::from)?;
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let kind_byte = r.read_byte().map_err(WireError::from)?;
    let got = PayloadKind::from_byte(kind_byte).ok_or(WireError::BadKind(kind_byte))?;
    if got != expected {
        return Err(WireError::WrongKind { expected, got });
    }
    Ok(r)
}

fn finish<T>(r: ByteReader<'_>, value: T) -> Result<T, WireError> {
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes);
    }
    Ok(value)
}

/// Encodes a PACE propagation frame: the peer's linear one-vs-all model plus
/// its training accuracy (the ensemble vote weight).
pub fn encode_pace_model(
    model: &OneVsAllModel<LinearSvm>,
    accuracy: f64,
    precision: WeightPrecision,
) -> Vec<u8> {
    let mut buf = frame(PayloadKind::LinearModel);
    codec::put_f64(&mut buf, accuracy);
    codec::encode_linear_ova(model, precision, &mut buf);
    buf
}

/// Decodes a PACE propagation frame back to `(model, accuracy)`.
pub fn decode_pace_model(bytes: &[u8]) -> Result<(OneVsAllModel<LinearSvm>, f64), WireError> {
    let mut r = open(bytes, PayloadKind::LinearModel)?;
    let accuracy = r.read_f64()?;
    let model = codec::decode_linear_ova(&mut r)?;
    finish(r, (model, accuracy))
}

/// Encodes a PACE centroid frame.
pub fn encode_centroids(centroids: &[SparseVector]) -> Vec<u8> {
    let mut buf = frame(PayloadKind::Centroids);
    codec::encode_vectors(centroids, &mut buf);
    buf
}

/// Decodes a PACE centroid frame.
pub fn decode_centroids(bytes: &[u8]) -> Result<Vec<SparseVector>, WireError> {
    let mut r = open(bytes, PayloadKind::Centroids)?;
    let centroids = codec::decode_vectors(&mut r)?;
    finish(r, centroids)
}

/// Encodes a CEMPaR propagation frame: a kernel one-vs-all model.
pub fn encode_kernel_model(
    model: &OneVsAllModel<KernelSvm>,
    precision: WeightPrecision,
) -> Vec<u8> {
    let mut buf = frame(PayloadKind::KernelModel);
    codec::encode_kernel_ova(model, precision, &mut buf);
    buf
}

/// Decodes a CEMPaR propagation frame.
pub fn decode_kernel_model(bytes: &[u8]) -> Result<OneVsAllModel<KernelSvm>, WireError> {
    let mut r = open(bytes, PayloadKind::KernelModel)?;
    let model = codec::decode_kernel_ova(&mut r)?;
    finish(r, model)
}

/// Encodes a training-data upload frame (the Centralized baseline).
pub fn encode_dataset(ds: &MultiLabelDataset) -> Vec<u8> {
    let mut buf = frame(PayloadKind::TrainingData);
    codec::encode_dataset(ds, &mut buf);
    buf
}

/// Decodes a training-data upload frame.
pub fn decode_dataset(bytes: &[u8]) -> Result<MultiLabelDataset, WireError> {
    let mut r = open(bytes, PayloadKind::TrainingData)?;
    let ds = codec::decode_dataset(&mut r)?;
    finish(r, ds)
}

/// Encodes a single-example refinement frame.
pub fn encode_example(ex: &MultiLabelExample) -> Vec<u8> {
    let mut buf = frame(PayloadKind::Refinement);
    codec::encode_example(ex, &mut buf);
    buf
}

/// Decodes a single-example refinement frame.
pub fn decode_example(bytes: &[u8]) -> Result<MultiLabelExample, WireError> {
    let mut r = open(bytes, PayloadKind::Refinement)?;
    let ex = codec::decode_example(&mut r)?;
    finish(r, ex)
}

/// Encodes a prediction-query frame (the untagged document vector).
pub fn encode_query(x: &SparseVector) -> Vec<u8> {
    let mut buf = frame(PayloadKind::Query);
    codec::encode_vector(x, &mut buf);
    buf
}

/// Decodes a prediction-query frame.
pub fn decode_query(bytes: &[u8]) -> Result<SparseVector, WireError> {
    let mut r = open(bytes, PayloadKind::Query)?;
    let x = codec::decode_vector(&mut r)?;
    finish(r, x)
}

/// Encodes a prediction-response frame (a scored tag list).
pub fn encode_scores(scores: &[TagPrediction]) -> Vec<u8> {
    let mut buf = frame(PayloadKind::Scores);
    codec::encode_predictions(scores, &mut buf);
    buf
}

/// Decodes a prediction-response frame.
pub fn decode_scores(bytes: &[u8]) -> Result<Vec<TagPrediction>, WireError> {
    let mut r = open(bytes, PayloadKind::Scores)?;
    let scores = codec::decode_predictions(&mut r)?;
    finish(r, scores)
}

/// FNV-1a 64-bit hash — the reliable wrapper's corruption check. Strict
/// decoding alone cannot catch bit flips inside float bodies (most 8-byte
/// patterns are valid `f64`s), so the wrapper carries an explicit checksum.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_update(0xcbf2_9ce4_8422_2325, bytes)
}

fn fnv1a64_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The checksum covers the sequence number too: a frame whose seq was
/// corrupted in flight must be dropped, not acked under the wrong number.
fn reliable_checksum(seq: u64, inner: &[u8]) -> u64 {
    fnv1a64_update(fnv1a64(&seq.to_le_bytes()), inner)
}

/// Wraps an inner frame in a sequence-numbered, checksummed reliable frame.
pub fn encode_reliable(seq: u64, inner: &[u8]) -> Vec<u8> {
    let mut buf = frame(PayloadKind::Reliable);
    codec::put_varint(&mut buf, seq);
    buf.extend_from_slice(&reliable_checksum(seq, inner).to_le_bytes());
    codec::put_varint(&mut buf, inner.len() as u64);
    buf.extend_from_slice(inner);
    buf
}

/// Unwraps a reliable frame to `(seq, inner frame bytes)`.
///
/// Fails with [`WireError::ChecksumMismatch`] when the body does not hash to
/// the carried checksum — the receiver must treat the frame as never
/// delivered (drop, no ack) rather than decode garbage.
pub fn decode_reliable(bytes: &[u8]) -> Result<(u64, Vec<u8>), WireError> {
    let mut r = open(bytes, PayloadKind::Reliable)?;
    let seq = r.read_varint()?;
    let checksum = u64::from_le_bytes(
        r.read_bytes(8)
            .map_err(WireError::from)?
            .try_into()
            .expect("read_bytes(8) returns 8 bytes"),
    );
    let len = r.read_varint()? as usize;
    if len != r.remaining() {
        // Also rejects absurd length prefixes: len can never exceed the
        // remaining physical bytes, so no allocation is sized by the prefix
        // beyond what was actually received.
        return Err(WireError::Codec(CodecError::Invalid(
            "reliable body length mismatch",
        )));
    }
    let inner = r.read_bytes(len).map_err(WireError::from)?.to_vec();
    if reliable_checksum(seq, &inner) != checksum {
        return Err(WireError::ChecksumMismatch);
    }
    finish(r, (seq, inner))
}

/// Encodes an acknowledgement of reliable frame `seq`.
pub fn encode_ack(seq: u64) -> Vec<u8> {
    let mut buf = frame(PayloadKind::Ack);
    codec::put_varint(&mut buf, seq);
    buf
}

/// Decodes an acknowledgement frame to its sequence number.
pub fn decode_ack(bytes: &[u8]) -> Result<u64, WireError> {
    let mut r = open(bytes, PayloadKind::Ack)?;
    let seq = r.read_varint()?;
    finish(r, seq)
}

/// Encodes an anti-entropy digest: the `(source, version)` pairs of the
/// models a peer currently holds. Exchanged after a crash restart or
/// partition heal so only stale entries are re-shipped.
pub fn encode_digest(entries: &[(u64, u64)]) -> Vec<u8> {
    let mut buf = frame(PayloadKind::Digest);
    codec::put_varint(&mut buf, entries.len() as u64);
    for &(source, version) in entries {
        codec::put_varint(&mut buf, source);
        codec::put_varint(&mut buf, version);
    }
    buf
}

/// Decodes an anti-entropy digest frame.
pub fn decode_digest(bytes: &[u8]) -> Result<Vec<(u64, u64)>, WireError> {
    let mut r = open(bytes, PayloadKind::Digest)?;
    let n = r.read_varint()? as usize;
    // Each entry is at least two 1-byte varints: a count that couldn't fit in
    // the remaining bytes is corrupt, and must not size an allocation.
    if n > r.remaining() / 2 + 1 {
        return Err(WireError::Codec(CodecError::Invalid(
            "digest count exceeds frame",
        )));
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let source = r.read_varint()?;
        let version = r.read_varint()?;
        entries.push((source, version));
    }
    finish(r, entries)
}

/// Encodes a versioned install envelope: the `(source, version)` identity of
/// a model replica plus the inner frames (already framed) that together
/// replace it. PACE ships `[LinearModel, Centroids]`, CEMPaR `[KernelModel]`,
/// the Centralized baseline `[TrainingData]`. Carrying the version on the
/// envelope lets sans-io cores install idempotently and version-monotonically
/// no matter how the driver reorders or duplicates deliveries.
pub fn encode_install(source: u64, version: u64, parts: &[&[u8]]) -> Vec<u8> {
    let mut buf = frame(PayloadKind::Install);
    codec::put_varint(&mut buf, source);
    codec::put_varint(&mut buf, version);
    codec::put_varint(&mut buf, parts.len() as u64);
    for part in parts {
        codec::put_varint(&mut buf, part.len() as u64);
        buf.extend_from_slice(part);
    }
    buf
}

/// Decodes an install envelope to `(source, version, inner frames)`.
pub fn decode_install(bytes: &[u8]) -> Result<(u64, u64, Vec<Vec<u8>>), WireError> {
    let mut r = open(bytes, PayloadKind::Install)?;
    let source = r.read_varint()?;
    let version = r.read_varint()?;
    let n = r.read_varint()? as usize;
    // Each part costs at least a 1-byte length prefix; a count the remaining
    // bytes cannot hold is corrupt and must not size an allocation.
    if n > r.remaining() + 1 {
        return Err(WireError::Codec(CodecError::Invalid(
            "install part count exceeds frame",
        )));
    }
    let mut parts = Vec::with_capacity(n);
    for _ in 0..n {
        let len = r.read_varint()? as usize;
        if len > r.remaining() {
            return Err(WireError::Codec(CodecError::Invalid(
                "install part length exceeds frame",
            )));
        }
        parts.push(r.read_bytes(len).map_err(WireError::from)?.to_vec());
    }
    finish(r, (source, version, parts))
}

/// Encodes a correlated prediction query: a request id (scoped to the asking
/// peer) plus the document vector. The id lets a sans-io requester match the
/// response to the outstanding query without relying on delivery order.
pub fn encode_query_request(request: u64, x: &SparseVector) -> Vec<u8> {
    let mut buf = frame(PayloadKind::QueryRequest);
    codec::put_varint(&mut buf, request);
    codec::encode_vector(x, &mut buf);
    buf
}

/// Decodes a correlated prediction query to `(request id, vector)`.
pub fn decode_query_request(bytes: &[u8]) -> Result<(u64, SparseVector), WireError> {
    let mut r = open(bytes, PayloadKind::QueryRequest)?;
    let request = r.read_varint()?;
    let x = codec::decode_vector(&mut r)?;
    finish(r, (request, x))
}

/// Encodes a correlated prediction response: the echoed request id, the
/// responder's vote weight (e.g. contributing models behind a CEMPaR region),
/// and the scored tag list.
pub fn encode_query_response(request: u64, weight: u64, scores: &[TagPrediction]) -> Vec<u8> {
    let mut buf = frame(PayloadKind::QueryResponse);
    codec::put_varint(&mut buf, request);
    codec::put_varint(&mut buf, weight);
    codec::encode_predictions(scores, &mut buf);
    buf
}

/// Decodes a correlated prediction response to `(request id, weight, scores)`.
pub fn decode_query_response(bytes: &[u8]) -> Result<(u64, u64, Vec<TagPrediction>), WireError> {
    let mut r = open(bytes, PayloadKind::QueryResponse)?;
    let request = r.read_varint()?;
    let weight = r.read_varint()?;
    let scores = codec::decode_predictions(&mut r)?;
    finish(r, (request, weight, scores))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml::multilabel::OneVsAllTrainer;
    use ml::svm::{KernelSvmTrainer, LinearSvmTrainer};
    use ml::MultiLabelExample;

    fn toy_dataset() -> MultiLabelDataset {
        let mut ds = MultiLabelDataset::new();
        for i in 0..20 {
            let s = 1.0 + (i % 3) as f64 * 0.1;
            ds.push(MultiLabelExample::new(
                SparseVector::from_pairs([(0, s)]),
                [1],
            ));
            ds.push(MultiLabelExample::new(
                SparseVector::from_pairs([(1, s), (4, 0.2)]),
                [2],
            ));
        }
        ds
    }

    #[test]
    fn pace_model_frame_roundtrips() {
        let ds = toy_dataset();
        let model = OneVsAllTrainer::default().train_linear(&ds, &LinearSvmTrainer::default());
        let bytes = encode_pace_model(&model, 0.9375, WeightPrecision::F64);
        assert_eq!(bytes[0], MAGIC);
        assert_eq!(bytes[1], VERSION);
        let (decoded, accuracy) = decode_pace_model(&bytes).unwrap();
        assert_eq!(accuracy, 0.9375);
        for (x, _) in ds.iter() {
            assert_eq!(model.scores(x), decoded.scores(x));
        }
    }

    #[test]
    fn kernel_model_frame_roundtrips() {
        let ds = toy_dataset();
        let model = OneVsAllTrainer::default().train_kernel(&ds, &KernelSvmTrainer::default());
        let bytes = encode_kernel_model(&model, WeightPrecision::F64);
        let decoded = decode_kernel_model(&bytes).unwrap();
        for (x, _) in ds.iter() {
            assert_eq!(model.scores(x), decoded.scores(x));
        }
    }

    #[test]
    fn data_query_and_score_frames_roundtrip() {
        let ds = toy_dataset();
        assert_eq!(decode_dataset(&encode_dataset(&ds)).unwrap(), ds);
        let ex = MultiLabelExample::new(SparseVector::from_pairs([(3, 0.5)]), [7]);
        assert_eq!(decode_example(&encode_example(&ex)).unwrap(), ex);
        let q = SparseVector::from_pairs([(2, 1.0), (9, -0.5)]);
        assert_eq!(decode_query(&encode_query(&q)).unwrap(), q);
        let logistic = |s: f64| 1.0 / (1.0 + (-s).exp());
        let scores = vec![
            TagPrediction {
                tag: 4,
                score: 0.7,
                confidence: logistic(0.7),
            },
            TagPrediction {
                tag: 1,
                score: -0.2,
                confidence: logistic(-0.2),
            },
        ];
        assert_eq!(decode_scores(&encode_scores(&scores)).unwrap(), scores);
    }

    #[test]
    fn frame_validation_rejects_bad_envelopes() {
        let q = SparseVector::from_pairs([(0, 1.0)]);
        let good = encode_query(&q);
        let mut bad_magic = good.clone();
        bad_magic[0] = 0x00;
        assert_eq!(decode_query(&bad_magic), Err(WireError::BadMagic(0)));
        let mut bad_version = good.clone();
        bad_version[1] = 9;
        assert_eq!(decode_query(&bad_version), Err(WireError::BadVersion(9)));
        let mut bad_kind = good.clone();
        bad_kind[2] = 200;
        assert_eq!(decode_query(&bad_kind), Err(WireError::BadKind(200)));
        // A query frame is not a centroid frame.
        assert_eq!(
            decode_centroids(&good),
            Err(WireError::WrongKind {
                expected: PayloadKind::Centroids,
                got: PayloadKind::Query,
            })
        );
        // Trailing garbage is rejected.
        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(decode_query(&trailing), Err(WireError::TrailingBytes));
        // Truncation is rejected.
        assert!(decode_query(&good[..good.len() - 1]).is_err());
    }

    #[test]
    fn lossless_default_config() {
        let cfg = WireConfig::default();
        assert_eq!(cfg.cost, WireCost::Measured);
        assert!(cfg.is_lossless());
        assert!(cfg.reliability.is_none());
        assert!(!WireConfig::measured(WeightPrecision::Q8, None).is_lossless());
        assert!(!WireConfig::measured(WeightPrecision::F64, Some(8)).is_lossless());
        assert_eq!(WireConfig::estimated().cost, WireCost::Estimated);
    }

    #[test]
    fn reliable_wrapper_roundtrips_and_catches_corruption() {
        let q = SparseVector::from_pairs([(3, 0.25), (8, -1.5)]);
        let inner = encode_query(&q);
        let wrapped = encode_reliable(42, &inner);
        let (seq, body) = decode_reliable(&wrapped).unwrap();
        assert_eq!(seq, 42);
        assert_eq!(body, inner);
        assert_eq!(decode_query(&body).unwrap(), q);

        // Flip one bit anywhere in the body: the checksum must catch it even
        // when the flipped byte still decodes structurally (float payloads).
        for byte in 0..wrapped.len() {
            for bit in 0..8 {
                let mut corrupt = wrapped.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(decode_reliable(&corrupt).is_err(), "byte {byte} bit {bit}");
            }
        }
    }

    #[test]
    fn ack_and_digest_frames_roundtrip() {
        assert_eq!(decode_ack(&encode_ack(0)).unwrap(), 0);
        assert_eq!(decode_ack(&encode_ack(u64::MAX)).unwrap(), u64::MAX);
        let entries = vec![(0, 3), (17, 1), (u64::MAX, 0)];
        assert_eq!(decode_digest(&encode_digest(&entries)).unwrap(), entries);
        assert_eq!(decode_digest(&encode_digest(&[])).unwrap(), Vec::new());
    }

    #[test]
    fn digest_count_cannot_size_an_absurd_allocation() {
        let mut buf = vec![MAGIC, VERSION, PayloadKind::Digest as u8];
        codec::put_varint(&mut buf, u64::MAX); // claims ~1.8e19 entries
        assert!(decode_digest(&buf).is_err());
    }

    #[test]
    fn install_envelope_roundtrips_nested_frames() {
        let q = SparseVector::from_pairs([(1, 0.5)]);
        let part_a = encode_query(&q);
        let part_b = encode_ack(9);
        let bytes = encode_install(7, 3, &[&part_a, &part_b]);
        let (source, version, parts) = decode_install(&bytes).unwrap();
        assert_eq!(source, 7);
        assert_eq!(version, 3);
        assert_eq!(parts, vec![part_a.clone(), part_b]);
        // Inner frames survive verbatim (full envelope validation included).
        assert_eq!(decode_query(&parts[0]).unwrap(), q);
        // Empty envelopes are legal (tombstone installs).
        assert_eq!(
            decode_install(&encode_install(0, 1, &[])).unwrap().2,
            Vec::<Vec<u8>>::new()
        );
    }

    #[test]
    fn install_counts_cannot_size_absurd_allocations() {
        let mut buf = vec![MAGIC, VERSION, PayloadKind::Install as u8];
        codec::put_varint(&mut buf, 1); // source
        codec::put_varint(&mut buf, 1); // version
        codec::put_varint(&mut buf, u64::MAX); // claims ~1.8e19 parts
        assert!(decode_install(&buf).is_err());
        let mut buf = vec![MAGIC, VERSION, PayloadKind::Install as u8];
        codec::put_varint(&mut buf, 1);
        codec::put_varint(&mut buf, 1);
        codec::put_varint(&mut buf, 1); // one part…
        codec::put_varint(&mut buf, u64::MAX); // …claiming ~1.8e19 bytes
        assert!(decode_install(&buf).is_err());
    }

    #[test]
    fn correlated_query_frames_roundtrip() {
        let q = SparseVector::from_pairs([(2, 1.0), (5, -0.25)]);
        let bytes = encode_query_request(11, &q);
        assert_eq!(decode_query_request(&bytes).unwrap(), (11, q));
        let scores = vec![TagPrediction {
            tag: 3,
            score: 0.4,
            confidence: 1.0 / (1.0 + (-0.4f64).exp()),
        }];
        let bytes = encode_query_response(11, 5, &scores);
        assert_eq!(decode_query_response(&bytes).unwrap(), (11, 5, scores));
        // Weight 0 responses (empty region) are legal and roundtrip.
        let bytes = encode_query_response(2, 0, &[]);
        assert_eq!(decode_query_response(&bytes).unwrap(), (2, 0, vec![]));
    }
}
