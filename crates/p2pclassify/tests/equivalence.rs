//! Scalar ↔ batched/CSR equivalence at the protocol level.
//!
//! The batched scoring engine (`ml::TagWeightMatrix`, `ml::BatchKernelScorer`),
//! the CSR-native / shared-Gram training engine
//! (`ml::svm::CsrLinearTrainer`, `OneVsAllTrainer::train_kernel_shared`) and
//! the parallel batch-prediction path must be drop-in replacements: for every
//! protocol, the `Batched` scoring backend and the `Csr` training backend must
//! produce *exactly* the same models, `TagPrediction`s and tag sets as the
//! pre-refactor `Scalar` loops — including through `refine()` and
//! `train_incremental` warm starts — and `predict_batch` must equal the
//! sequential per-document `predict` loop.

use ml::{MultiLabelDataset, MultiLabelExample, TagId};
use p2pclassify::{
    Cempar, CemparConfig, Centralized, CentralizedConfig, LocalOnly, LocalOnlyConfig,
    P2PTagClassifier, Pace, PaceConfig, ScoringBackend, TrainingBackend, WireConfig,
};
use p2psim::{P2PNetwork, PeerId, SimConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use textproc::SparseVector;

/// Per-peer datasets over a richer tag universe than the unit tests: five
/// feature-aligned tags plus co-occurring combinations, so ensembles vote
/// over tags they only partially know.
fn peer_data(num_peers: usize, per_peer: usize, seed: u64) -> Vec<MultiLabelDataset> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..num_peers)
        .map(|_| {
            let mut ds = MultiLabelDataset::new();
            for _ in 0..per_peer {
                let which = rng.gen_range(0..5u32);
                let a = 0.7 + rng.gen_range(0.0..0.6);
                let b = 0.7 + rng.gen_range(0.0..0.6);
                let (vector, tags): (SparseVector, Vec<TagId>) = match which {
                    0 => (SparseVector::from_pairs([(0, a)]), vec![1]),
                    1 => (SparseVector::from_pairs([(1, a)]), vec![2]),
                    2 => (SparseVector::from_pairs([(2, a), (0, 0.2)]), vec![3]),
                    3 => (SparseVector::from_pairs([(0, a), (1, b)]), vec![1, 2]),
                    _ => (SparseVector::from_pairs([(2, a), (3, b)]), vec![3, 4]),
                };
                ds.push(MultiLabelExample::new(vector, tags));
            }
            ds
        })
        .collect()
}

fn probes(seed: u64) -> Vec<SparseVector> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..40)
        .map(|_| {
            let nnz = rng.gen_range(1..4usize);
            SparseVector::from_pairs(
                (0..nnz).map(|_| (rng.gen_range(0..5u32), rng.gen_range(0.2..1.4f64))),
            )
        })
        .collect()
}

fn network(num_peers: usize) -> P2PNetwork {
    P2PNetwork::new(SimConfig {
        num_peers,
        horizon_secs: 100_000,
        ..Default::default()
    })
}

/// The two ends being compared: the full pre-refactor reference stack
/// (scalar scoring + scalar training) against the full fast stack (batched
/// scoring + CSR/shared-Gram training). Any divergence anywhere in either
/// engine shows up as a score or prediction mismatch.
const REFERENCE: (ScoringBackend, TrainingBackend) =
    (ScoringBackend::Scalar, TrainingBackend::Scalar);
const FAST: (ScoringBackend, TrainingBackend) = (ScoringBackend::Batched, TrainingBackend::Csr);

/// Trains both stacks of a protocol on identical data/networks and checks
/// that scores and predictions agree exactly on every probe, from every peer.
fn assert_backends_agree<P, F>(num_peers: usize, seed: u64, make: F)
where
    P: P2PTagClassifier,
    F: Fn(ScoringBackend, TrainingBackend) -> P,
{
    let data = peer_data(num_peers, 14, seed);
    let mut net_scalar = network(num_peers);
    let mut net_batched = network(num_peers);
    let mut scalar = make(REFERENCE.0, REFERENCE.1);
    let mut batched = make(FAST.0, FAST.1);
    scalar.train(&mut net_scalar, &data).unwrap();
    batched.train(&mut net_batched, &data).unwrap();

    for (i, probe) in probes(seed ^ 0x55).iter().enumerate() {
        let peer = PeerId((i % num_peers) as u64);
        let s = scalar.scores(&mut net_scalar, peer, probe);
        let b = batched.scores(&mut net_batched, peer, probe);
        assert_eq!(s, b, "scores diverge on probe {i}");
        let sp = scalar.predict(&mut net_scalar, peer, probe);
        let bp = batched.predict(&mut net_batched, peer, probe);
        assert_eq!(sp, bp, "predictions diverge on probe {i}");
    }
}

/// The training-backend axis alone: identical (batched) scoring over models
/// trained by the scalar reference vs the CSR/shared-Gram engine.
fn assert_training_backends_agree<P, F>(num_peers: usize, seed: u64, make: F)
where
    P: P2PTagClassifier,
    F: Fn(ScoringBackend, TrainingBackend) -> P,
{
    let data = peer_data(num_peers, 14, seed);
    let mut net_a = network(num_peers);
    let mut net_b = network(num_peers);
    let mut scalar_trained = make(ScoringBackend::Batched, TrainingBackend::Scalar);
    let mut csr_trained = make(ScoringBackend::Batched, TrainingBackend::Csr);
    scalar_trained.train(&mut net_a, &data).unwrap();
    csr_trained.train(&mut net_b, &data).unwrap();
    for (i, probe) in probes(seed ^ 0x33).iter().enumerate() {
        let peer = PeerId((i % num_peers) as u64);
        assert_eq!(
            scalar_trained.scores(&mut net_a, peer, probe),
            csr_trained.scores(&mut net_b, peer, probe),
            "scores diverge on probe {i}"
        );
    }
    // Trained models must also ship identically (same wire accounting).
    assert_eq!(
        net_a.stats().total_bytes(),
        net_b.stats().total_bytes(),
        "training backends propagate byte-identical models"
    );
}

/// Checks `predict_batch` against the sequential per-request `predict` loop
/// on a fresh identically-trained instance.
fn assert_batch_equals_sequential<P, F>(num_peers: usize, seed: u64, make: F)
where
    P: P2PTagClassifier,
    F: Fn() -> P,
{
    let data = peer_data(num_peers, 14, seed);
    let probes = probes(seed ^ 0xAA);
    let requests: Vec<(PeerId, &SparseVector)> = probes
        .iter()
        .enumerate()
        .map(|(i, p)| (PeerId((i % num_peers) as u64), p))
        .collect();

    let mut net_seq = network(num_peers);
    let mut seq = make();
    seq.train(&mut net_seq, &data).unwrap();
    let sequential: Vec<_> = requests
        .iter()
        .map(|&(peer, x)| seq.predict(&mut net_seq, peer, x))
        .collect();

    let mut net_batch = network(num_peers);
    let mut batch = make();
    batch.train(&mut net_batch, &data).unwrap();
    let batched = batch.predict_batch(&mut net_batch, &requests);

    assert_eq!(sequential, batched);
    // Communication-for-communication: the batch path must account exactly
    // the same traffic as the sequential loop.
    assert_eq!(
        net_seq.stats().total_messages(),
        net_batch.stats().total_messages()
    );
    assert_eq!(
        net_seq.stats().total_bytes(),
        net_batch.stats().total_bytes()
    );
}

fn pace_with(backend: ScoringBackend, train_backend: TrainingBackend) -> Pace {
    Pace::new(PaceConfig {
        backend,
        train_backend,
        ..PaceConfig::default()
    })
}

fn cempar_with(regions: usize) -> impl Fn(ScoringBackend, TrainingBackend) -> Cempar {
    move |backend, train_backend| {
        Cempar::new(CemparConfig {
            backend,
            train_backend,
            regions,
            ..CemparConfig::default()
        })
    }
}

fn centralized_with(backend: ScoringBackend, train_backend: TrainingBackend) -> Centralized {
    Centralized::new(CentralizedConfig {
        backend,
        train_backend,
        ..CentralizedConfig::default()
    })
}

fn local_with(backend: ScoringBackend, train_backend: TrainingBackend) -> LocalOnly {
    LocalOnly::new(LocalOnlyConfig {
        backend,
        train_backend,
        ..LocalOnlyConfig::default()
    })
}

#[test]
fn pace_backends_agree() {
    assert_backends_agree(12, 71, pace_with);
}

#[test]
fn pace_backends_agree_without_lsh() {
    assert_backends_agree(10, 72, |backend, train_backend| {
        Pace::new(PaceConfig {
            backend,
            train_backend,
            use_lsh: false,
            ..PaceConfig::default()
        })
    });
}

#[test]
fn cempar_backends_agree() {
    assert_backends_agree(16, 73, cempar_with(4));
}

#[test]
fn centralized_backends_agree() {
    assert_backends_agree(8, 74, centralized_with);
}

#[test]
fn local_only_backends_agree() {
    assert_backends_agree(6, 75, local_with);
}

#[test]
fn pace_training_backends_agree() {
    assert_training_backends_agree(12, 76, pace_with);
}

#[test]
fn cempar_training_backends_agree() {
    assert_training_backends_agree(16, 77, cempar_with(4));
}

#[test]
fn centralized_training_backends_agree() {
    assert_training_backends_agree(8, 78, centralized_with);
}

#[test]
fn local_only_training_backends_agree() {
    assert_training_backends_agree(6, 79, local_with);
}

#[test]
fn pace_predict_batch_equals_sequential() {
    assert_batch_equals_sequential(12, 81, || Pace::new(PaceConfig::default()));
}

#[test]
fn local_only_predict_batch_equals_sequential() {
    assert_batch_equals_sequential(6, 82, || LocalOnly::new(LocalOnlyConfig::default()));
}

#[test]
fn cempar_default_predict_batch_equals_sequential() {
    assert_batch_equals_sequential(16, 83, || {
        Cempar::new(CemparConfig {
            regions: 4,
            ..CemparConfig::default()
        })
    });
}

#[test]
fn centralized_default_predict_batch_equals_sequential() {
    assert_batch_equals_sequential(8, 84, || Centralized::new(CentralizedConfig::default()));
}

/// Trains both stacks, drives them through an identical sequence of
/// `refine()` calls followed by a `train_incremental` round, and checks
/// bit-identity of scores and predictions after *each* mutation — not just
/// after initial training. This pins the invariant that every model-rebuild
/// path (refinement retrain + re-propagation, warm-start incremental
/// training — both cold *and* warm CSR fits) keeps the fast structures in
/// lockstep with the scalar reference.
fn assert_backends_agree_through_refine_and_incremental<P, F>(num_peers: usize, seed: u64, make: F)
where
    P: P2PTagClassifier,
    F: Fn(ScoringBackend, TrainingBackend) -> P,
{
    let data = peer_data(num_peers, 14, seed);
    let mut net_s = network(num_peers);
    let mut net_b = network(num_peers);
    let mut scalar = make(REFERENCE.0, REFERENCE.1);
    let mut batched = make(FAST.0, FAST.1);
    scalar.train(&mut net_s, &data).unwrap();
    batched.train(&mut net_b, &data).unwrap();

    let assert_agree =
        |scalar: &P, batched: &P, net_s: &mut P2PNetwork, net_b: &mut P2PNetwork, stage: &str| {
            for (i, probe) in probes(seed ^ 0x77).iter().enumerate().take(12) {
                let peer = PeerId((i % num_peers) as u64);
                assert_eq!(
                    scalar.scores(net_s, peer, probe),
                    batched.scores(net_b, peer, probe),
                    "scores diverge after {stage} on probe {i}"
                );
                assert_eq!(
                    scalar.predict(net_s, peer, probe),
                    batched.predict(net_b, peer, probe),
                    "predictions diverge after {stage} on probe {i}"
                );
            }
        };

    // A sequence of refinements teaching a new tag plus corrections of an
    // existing one, spread over two peers.
    for i in 0..6 {
        let (v, tags): (SparseVector, Vec<TagId>) = if i % 2 == 0 {
            (
                SparseVector::from_pairs([(4, 1.0 + 0.1 * i as f64)]),
                vec![9],
            )
        } else {
            (SparseVector::from_pairs([(0, 0.9), (2, 0.5)]), vec![1, 3])
        };
        let ex = MultiLabelExample::new(v, tags);
        let peer = PeerId((i % 2 + 1) as u64);
        scalar.refine(&mut net_s, peer, &ex).unwrap();
        batched.refine(&mut net_b, peer, &ex).unwrap();
        assert_agree(
            &scalar,
            &batched,
            &mut net_s,
            &mut net_b,
            &format!("refine {i}"),
        );
    }

    // An incremental training round: two peers receive new arrivals, one of
    // them carrying a tag the ensemble has never seen. The touched peers'
    // datasets are large enough that the warm SGD path (not only the small-n
    // cold delegation) is exercised on the linear protocols.
    let mut new_data = vec![MultiLabelDataset::new(); num_peers];
    for i in 0..8 {
        new_data[0].push(MultiLabelExample::new(
            SparseVector::from_pairs([(3, 0.8 + 0.05 * i as f64)]),
            [4],
        ));
        new_data[num_peers - 1].push(MultiLabelExample::new(
            SparseVector::from_pairs([(5, 1.0 + 0.05 * i as f64)]),
            [11],
        ));
    }
    scalar.train_incremental(&mut net_s, &new_data).unwrap();
    batched.train_incremental(&mut net_b, &new_data).unwrap();
    assert_agree(
        &scalar,
        &batched,
        &mut net_s,
        &mut net_b,
        "train_incremental",
    );
    assert_eq!(
        net_s.stats().total_messages(),
        net_b.stats().total_messages(),
        "both backends account identical traffic"
    );
}

#[test]
fn pace_backends_agree_through_refine_and_incremental() {
    assert_backends_agree_through_refine_and_incremental(8, 91, pace_with);
}

#[test]
fn cempar_backends_agree_through_refine_and_incremental() {
    assert_backends_agree_through_refine_and_incremental(12, 92, cempar_with(3));
}

#[test]
fn local_only_backends_agree_through_refine_and_incremental() {
    assert_backends_agree_through_refine_and_incremental(6, 93, local_with);
}

#[test]
fn centralized_backends_agree_through_refine_and_incremental() {
    assert_backends_agree_through_refine_and_incremental(6, 94, centralized_with);
}

/// The wire-cost axis: the legacy `wire_size()` estimator against the real
/// measured codec at its lossless defaults. Lossless frames round-trip every
/// propagated model, query and response **bit-identically**, so switching the
/// accounting backend must change *no* score or prediction anywhere — through
/// initial training, refinements and incremental rounds. Only the byte
/// totals differ (that divergence is exactly what the codec makes
/// measurable); for the protocols that propagate models or data during
/// training, the measured training bytes must come in **below** the legacy
/// estimate (the delta-varint codec compresses, never inflates).
fn assert_wire_costs_agree<P, F>(num_peers: usize, seed: u64, charges_train_bytes: bool, make: F)
where
    P: P2PTagClassifier,
    F: Fn(WireConfig) -> P,
{
    let data = peer_data(num_peers, 14, seed);
    let mut net_e = network(num_peers);
    let mut net_m = network(num_peers);
    let mut estimated = make(WireConfig::estimated());
    let mut measured = make(WireConfig::default());
    estimated.train(&mut net_e, &data).unwrap();
    measured.train(&mut net_m, &data).unwrap();
    assert_eq!(
        net_e.stats().total_messages(),
        net_m.stats().total_messages(),
        "both wire backends send the same messages"
    );
    if charges_train_bytes {
        let est = net_e.stats().total_bytes();
        let meas = net_m.stats().total_bytes();
        assert!(
            meas < est,
            "measured training bytes ({meas}) must undercut the estimate ({est})"
        );
    }

    let assert_agree = |estimated: &P,
                        measured: &P,
                        net_e: &mut P2PNetwork,
                        net_m: &mut P2PNetwork,
                        stage: &str| {
        for (i, probe) in probes(seed ^ 0x5A).iter().enumerate().take(16) {
            let peer = PeerId((i % num_peers) as u64);
            assert_eq!(
                estimated.scores(net_e, peer, probe),
                measured.scores(net_m, peer, probe),
                "scores diverge after {stage} on probe {i}"
            );
            assert_eq!(
                estimated.predict(net_e, peer, probe),
                measured.predict(net_m, peer, probe),
                "predictions diverge after {stage} on probe {i}"
            );
        }
    };
    assert_agree(&estimated, &measured, &mut net_e, &mut net_m, "train");

    for i in 0..4 {
        let ex = MultiLabelExample::new(
            SparseVector::from_pairs([(4, 1.0 + 0.1 * i as f64)]),
            vec![9],
        );
        let peer = PeerId((i % 2 + 1) as u64);
        estimated.refine(&mut net_e, peer, &ex).unwrap();
        measured.refine(&mut net_m, peer, &ex).unwrap();
    }
    assert_agree(&estimated, &measured, &mut net_e, &mut net_m, "refine");

    let mut new_data = vec![MultiLabelDataset::new(); num_peers];
    for i in 0..6 {
        new_data[0].push(MultiLabelExample::new(
            SparseVector::from_pairs([(3, 0.8 + 0.05 * i as f64)]),
            [4],
        ));
    }
    estimated.train_incremental(&mut net_e, &new_data).unwrap();
    measured.train_incremental(&mut net_m, &new_data).unwrap();
    assert_agree(
        &estimated,
        &measured,
        &mut net_e,
        &mut net_m,
        "train_incremental",
    );
}

#[test]
fn pace_wire_costs_agree() {
    assert_wire_costs_agree(10, 101, true, |wire| {
        Pace::new(PaceConfig {
            wire,
            ..PaceConfig::default()
        })
    });
}

#[test]
fn cempar_wire_costs_agree() {
    assert_wire_costs_agree(16, 102, true, |wire| {
        Cempar::new(CemparConfig {
            wire,
            regions: 4,
            ..CemparConfig::default()
        })
    });
}

#[test]
fn centralized_wire_costs_agree() {
    assert_wire_costs_agree(8, 103, true, |wire| {
        Centralized::new(CentralizedConfig {
            wire,
            ..CentralizedConfig::default()
        })
    });
}

#[test]
fn local_only_wire_costs_agree() {
    assert_wire_costs_agree(6, 104, false, |wire| {
        LocalOnly::new(LocalOnlyConfig {
            wire,
            ..LocalOnlyConfig::default()
        })
    });
}

/// A large single-peer dataset forces the Centralized pooled warm refit onto
/// the real warm-SGD path (n ≥ warm_min_examples), pinning CSR warm-start
/// equivalence where it matters most.
#[test]
fn centralized_warm_sgd_training_backends_agree_at_scale() {
    let num_peers = 6;
    let data = peer_data(num_peers, 20, 95);
    let mut net_a = network(num_peers);
    let mut net_b = network(num_peers);
    let mut a = centralized_with(ScoringBackend::Batched, TrainingBackend::Scalar);
    let mut b = centralized_with(ScoringBackend::Batched, TrainingBackend::Csr);
    a.train(&mut net_a, &data).unwrap();
    b.train(&mut net_b, &data).unwrap();
    // Pool is now ~120 examples (> warm_min_examples = 64): this round warm
    // refits with real SGD passes on both backends.
    let mut new_data = vec![MultiLabelDataset::new(); num_peers];
    for i in 0..10 {
        new_data[2].push(MultiLabelExample::new(
            SparseVector::from_pairs([(6, 1.0 + 0.03 * i as f64)]),
            [13],
        ));
    }
    a.train_incremental(&mut net_a, &new_data).unwrap();
    b.train_incremental(&mut net_b, &new_data).unwrap();
    for (i, probe) in probes(96).iter().enumerate() {
        let peer = PeerId((i % num_peers) as u64);
        assert_eq!(
            a.scores(&mut net_a, peer, probe),
            b.scores(&mut net_b, peer, probe),
            "warm-SGD-trained scores diverge on probe {i}"
        );
    }
}
