//! Delivery-order properties of the sans-io cores (satellite of the sans-io
//! PR): installs must be **idempotent** and **version-monotonic** no matter
//! how the network mangles delivery.
//!
//! The pool of genuine install envelopes (two trained versions per source)
//! is delivered to a fresh core under a proptest-chosen schedule — a random
//! permutation plus random duplicates — and the final state must equal the
//! canonical in-order, exactly-once delivery:
//!
//! 1. the installed `(source, version)` set is identical (order-independent,
//!    duplicate-proof, stale-version-proof);
//! 2. `Installed` effects per source carry strictly increasing versions
//!    (a stale or duplicate delivery never re-announces);
//! 3. for PACE, the resulting ensemble *scores identically* — state
//!    equivalence all the way to the predictions.
//!
//! This is exactly the degree of freedom a real socket driver adds over the
//! deterministic simulator, which is why the sim-vs-socket equivalence suite
//! in `crates/peerd` can demand bit-identical results.

use ml::{MultiLabelDataset, MultiLabelExample, TagId};
use p2pclassify::sansio::{
    CemparCore, CentralizedCore, LocalEffect, Output, PaceCore, ProtocolCore,
};
use p2pclassify::{CemparConfig, CentralizedConfig, PaceConfig};
use p2psim::PeerId;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::OnceLock;
use textproc::SparseVector;

fn dataset(feature: u32, tag: TagId, scale: f64) -> MultiLabelDataset {
    MultiLabelDataset::from_examples(
        (0..6)
            .map(|i| {
                MultiLabelExample::new(
                    SparseVector::from_pairs([(feature, scale + 0.05 * i as f64)]),
                    [tag],
                )
            })
            .collect(),
    )
}

/// Every `Emit` frame from a batch of outputs, regardless of target: the
/// observer core under test plays "the whole network".
fn emitted_frames(outputs: &[Output]) -> Vec<Vec<u8>> {
    outputs
        .iter()
        .filter_map(|o| match o {
            Output::Emit { frame, .. } => Some(frame.clone()),
            _ => None,
        })
        .collect()
}

/// The envelope pools, built once per protocol (training dominates cost):
/// three producers, each trained twice (so v1 *and* v2 envelopes coexist in
/// the pool — random schedules will deliver stale versions late).
fn pace_pool() -> &'static Vec<Vec<u8>> {
    static POOL: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
    POOL.get_or_init(|| {
        let peers: Vec<PeerId> = (0..4).map(PeerId).collect();
        let mut pool = Vec::new();
        for i in 1..4u64 {
            let mut producer = PaceCore::new(PeerId(i), peers.clone(), PaceConfig::default());
            let out = producer.train(0, &dataset(i as u32, i as TagId, 0.8));
            pool.push(emitted_frames(&out).remove(0));
            let out = producer.train(0, &dataset(i as u32 + 1, i as TagId + 1, 1.1));
            pool.push(emitted_frames(&out).remove(0));
        }
        pool
    })
}

fn cempar_pool() -> &'static Vec<Vec<u8>> {
    static POOL: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
    POOL.get_or_init(|| {
        let peers: Vec<PeerId> = (0..6).map(PeerId).collect();
        // Two regions over this ring: peer 3 super-peers region 0, peer 1
        // region 1. Producers 2, 4 and 5 are *not* their own super-peers,
        // so every train emits a routable install envelope.
        let config = CemparConfig {
            regions: 2,
            ..CemparConfig::default()
        };
        let mut pool = Vec::new();
        for i in [2u64, 4, 5] {
            let mut producer = CemparCore::new(PeerId(i), peers.clone(), config.clone());
            for (round, scale) in [(0u32, 0.8f64), (1, 1.1)] {
                let out = producer.train(0, &dataset(i as u32 + round, i as TagId, scale));
                let frames = emitted_frames(&out);
                assert_eq!(
                    frames.len(),
                    1,
                    "producer {i} should emit to its super-peer"
                );
                pool.extend(frames);
            }
        }
        pool
    })
}

fn centralized_pool() -> &'static Vec<Vec<u8>> {
    static POOL: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
    POOL.get_or_init(|| {
        let mut pool = Vec::new();
        for i in 1..4u64 {
            let mut producer = CentralizedCore::new(PeerId(i), CentralizedConfig::default());
            for (round, scale) in [(0u32, 0.8f64), (1, 1.1)] {
                let out = producer.train(0, &dataset(i as u32 + round, i as TagId, scale));
                pool.extend(emitted_frames(&out));
            }
        }
        pool
    })
}

/// Delivers `pool[schedule[..]]` into `core`, checking effect monotonicity
/// along the way; returns the final installed set.
fn deliver<C: ProtocolCore + ?Sized>(
    core: &mut C,
    pool: &[Vec<u8>],
    schedule: &[usize],
) -> Vec<(u64, u64)> {
    let mut last_version: std::collections::BTreeMap<u64, u64> = Default::default();
    for (step, &idx) in schedule.iter().enumerate() {
        // Modulo guards pools smaller than the schedule's index space while
        // still covering every entry (a permutation of 0..n hits every
        // residue class of a smaller pool).
        let outputs = core.ingest(step as u64, PeerId(99), &pool[idx % pool.len()]);
        for output in outputs {
            if let Output::Effect(LocalEffect::Installed { source, version }) = output {
                let prev = last_version.insert(source, version);
                assert!(
                    prev.map_or(true, |p| p < version),
                    "non-monotonic install announcement for source {source}: \
                     {prev:?} then {version}"
                );
            }
        }
    }
    last_version.into_iter().collect()
}

/// A delivery schedule over `n` pool entries: a full random permutation
/// (everything arrives at least once) plus duplicated stale re-deliveries.
fn schedules(n: usize) -> impl Strategy<Value = Vec<usize>> {
    (any::<u64>(), prop::collection::vec(0..n, 0..2 * n)).prop_map(move |(seed, dups)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        order.extend(dups);
        // The tail duplicates arrive in a second shuffled wave.
        order[n..].shuffle(&mut rng);
        order
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pace_installs_are_order_independent(schedule in schedules(6)) {
        let pool = pace_pool();
        let peers: Vec<PeerId> = (0..4).map(PeerId).collect();
        let canonical: Vec<usize> = (0..pool.len()).collect();
        let mut reference = PaceCore::new(PeerId(0), peers.clone(), PaceConfig::default());
        let expected = deliver(&mut reference, pool, &canonical);
        let mut shuffled = PaceCore::new(PeerId(0), peers, PaceConfig::default());
        let got = deliver(&mut shuffled, pool, &schedule);
        prop_assert_eq!(&got, &expected);
        prop_assert_eq!(reference.installed_versions(), shuffled.installed_versions());
        // State equivalence reaches the predictions: identical ensembles
        // score identically.
        for feature in 0..5u32 {
            let x = SparseVector::from_pairs([(feature, 1.0)]);
            let (_, a) = reference.predict(0, &x);
            let (_, b) = shuffled.predict(0, &x);
            let scores = |out: Vec<Output>| match out.into_iter().next() {
                Some(Output::Effect(LocalEffect::Prediction { scores, .. })) => scores,
                other => panic!("expected immediate prediction, got {other:?}"),
            };
            prop_assert_eq!(scores(a), scores(b));
        }
    }

    #[test]
    fn cempar_installs_are_order_independent(schedule in schedules(6)) {
        let pool = cempar_pool();
        prop_assert!(!pool.is_empty());
        let peers: Vec<PeerId> = (0..6).map(PeerId).collect();
        let config = CemparConfig { regions: 2, ..CemparConfig::default() };
        let canonical: Vec<usize> = (0..pool.len()).collect();
        let mut reference = CemparCore::new(PeerId(0), peers.clone(), config.clone());
        let expected = deliver(&mut reference, pool, &canonical);
        let mut shuffled = CemparCore::new(PeerId(0), peers, config);
        let got = deliver(&mut shuffled, pool, &schedule);
        prop_assert_eq!(&got, &expected);
        prop_assert_eq!(reference.installed_versions(), shuffled.installed_versions());
    }

    #[test]
    fn centralized_uploads_are_order_independent(schedule in schedules(6)) {
        let pool = centralized_pool();
        prop_assert!(!pool.is_empty());
        let canonical: Vec<usize> = (0..pool.len()).collect();
        let mut reference = CentralizedCore::new(PeerId(0), CentralizedConfig::default());
        let expected = deliver(&mut reference, pool, &canonical);
        let mut shuffled = CentralizedCore::new(PeerId(0), CentralizedConfig::default());
        let got = deliver(&mut shuffled, pool, &schedule);
        prop_assert_eq!(&got, &expected);
        prop_assert_eq!(reference.installed_versions(), shuffled.installed_versions());
    }
}
