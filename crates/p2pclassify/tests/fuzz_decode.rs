//! Adversarial decode fuzzing for the wire layer (satellite of the fault
//! tolerance PR): every `p2pclassify::wire` and `ml::codec` decoder must
//! treat attacker- or corruption-shaped bytes as data, never as a crash.
//!
//! Three properties, each over every decoder:
//!
//! 1. **Arbitrary bytes** — decoding any byte soup returns `Ok` or `Err`,
//!    never panics.
//! 2. **Bit-flipped valid frames** — a single flipped bit in a genuinely
//!    encoded frame (exactly what [`CorruptionFaults`] injects in the
//!    simulator) must decode cleanly or fail cleanly.
//! 3. **Absurd length/count prefixes** — a corrupt varint claiming millions
//!    of entries must be rejected *before* it sizes an allocation; decoding
//!    stays cheap no matter what the prefix says.
//!
//! [`CorruptionFaults`]: p2psim::faults::CorruptionFaults

use std::sync::OnceLock;

use ml::codec::{self, ByteReader, WeightPrecision};
use ml::multilabel::{OneVsAllTrainer, TagPrediction};
use ml::svm::{KernelSvmTrainer, LinearSvmTrainer};
use ml::{MultiLabelDataset, MultiLabelExample};
use p2pclassify::wire;
use proptest::prelude::*;
use textproc::SparseVector;

fn toy_dataset() -> MultiLabelDataset {
    let mut ds = MultiLabelDataset::new();
    for i in 0..20 {
        let s = 1.0 + (i % 3) as f64 * 0.1;
        ds.push(MultiLabelExample::new(
            SparseVector::from_pairs([(0, s)]),
            [1],
        ));
        ds.push(MultiLabelExample::new(
            SparseVector::from_pairs([(1, s), (4, 0.2)]),
            [2],
        ));
    }
    ds
}

/// One genuinely encoded frame per wire encoder, built once (training the
/// models dominates the cost) and shared across all proptest cases.
fn valid_frames() -> &'static Vec<(&'static str, Vec<u8>)> {
    static FRAMES: OnceLock<Vec<(&'static str, Vec<u8>)>> = OnceLock::new();
    FRAMES.get_or_init(|| {
        let ds = toy_dataset();
        let linear = OneVsAllTrainer::default().train_linear(&ds, &LinearSvmTrainer::default());
        let kernel = OneVsAllTrainer::default().train_kernel(&ds, &KernelSvmTrainer::default());
        let centroids = vec![
            SparseVector::from_pairs([(0, 1.0), (3, 0.5)]),
            SparseVector::from_pairs([(1, 0.9)]),
        ];
        let ex = MultiLabelExample::new(SparseVector::from_pairs([(3, 0.5), (7, -1.0)]), [7, 2]);
        let query = SparseVector::from_pairs([(2, 1.0), (9, -0.5)]);
        let logistic = |s: f64| 1.0 / (1.0 + (-s).exp());
        let scores = vec![
            TagPrediction {
                tag: 4,
                score: 0.7,
                confidence: logistic(0.7),
            },
            TagPrediction {
                tag: 1,
                score: -0.2,
                confidence: logistic(-0.2),
            },
        ];
        let inner = wire::encode_query(&query);
        vec![
            (
                "pace_model",
                wire::encode_pace_model(&linear, 0.9375, WeightPrecision::F64),
            ),
            ("centroids", wire::encode_centroids(&centroids)),
            (
                "kernel_model",
                wire::encode_kernel_model(&kernel, WeightPrecision::F64),
            ),
            ("dataset", wire::encode_dataset(&ds)),
            ("example", wire::encode_example(&ex)),
            ("query", wire::encode_query(&query)),
            ("scores", wire::encode_scores(&scores)),
            ("reliable", wire::encode_reliable(41, &inner)),
            ("ack", wire::encode_ack(7)),
            ("digest", wire::encode_digest(&[(0, 3), (5, 1), (9, 12)])),
        ]
    })
}

/// Runs every `p2pclassify::wire` decoder over the bytes. The return value
/// is the number that decoded successfully — the property tests only require
/// that this returns at all (no panic, no abort on allocation).
fn run_wire_decoders(bytes: &[u8]) -> usize {
    let mut ok = 0;
    ok += wire::decode_pace_model(bytes).is_ok() as usize;
    ok += wire::decode_centroids(bytes).is_ok() as usize;
    ok += wire::decode_kernel_model(bytes).is_ok() as usize;
    ok += wire::decode_dataset(bytes).is_ok() as usize;
    ok += wire::decode_example(bytes).is_ok() as usize;
    ok += wire::decode_query(bytes).is_ok() as usize;
    ok += wire::decode_scores(bytes).is_ok() as usize;
    ok += wire::decode_reliable(bytes).is_ok() as usize;
    ok += wire::decode_ack(bytes).is_ok() as usize;
    ok += wire::decode_digest(bytes).is_ok() as usize;
    ok
}

/// Runs every `ml::codec` decoder over the raw bytes (no frame envelope —
/// these are the payload-body parsers the wire layer builds on).
fn run_codec_decoders(bytes: &[u8]) -> usize {
    let mut ok = 0;
    ok += codec::decode_vector(&mut ByteReader::new(bytes)).is_ok() as usize;
    ok += codec::decode_vectors(&mut ByteReader::new(bytes)).is_ok() as usize;
    ok += codec::decode_linear_svm(&mut ByteReader::new(bytes)).is_ok() as usize;
    ok += codec::decode_kernel_svm(&mut ByteReader::new(bytes)).is_ok() as usize;
    ok += codec::decode_linear_ova(&mut ByteReader::new(bytes)).is_ok() as usize;
    ok += codec::decode_kernel_ova(&mut ByteReader::new(bytes)).is_ok() as usize;
    ok += codec::decode_example(&mut ByteReader::new(bytes)).is_ok() as usize;
    ok += codec::decode_dataset(&mut ByteReader::new(bytes)).is_ok() as usize;
    ok += codec::decode_predictions(&mut ByteReader::new(bytes)).is_ok() as usize;
    ok
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pure byte soup: no decoder may panic, whatever it is fed.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        run_wire_decoders(&bytes);
        run_codec_decoders(&bytes);
    }

    /// Byte soup behind a *valid* envelope (magic, version, known kind):
    /// exercises the payload-body parsers past the header checks that
    /// short-circuit most purely random inputs.
    #[test]
    fn framed_garbage_never_panics(
        kind in 1u8..11,
        body in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut frame = vec![wire::MAGIC, wire::VERSION, kind];
        frame.extend_from_slice(&body);
        run_wire_decoders(&frame);
    }

    /// A single flipped bit in a genuinely encoded frame — the simulator's
    /// corruption fault — must decode cleanly or fail cleanly in every
    /// decoder, not just the one matching the frame's kind.
    #[test]
    fn bit_flipped_valid_frames_never_panic(
        which in any::<usize>(),
        bit in any::<usize>(),
    ) {
        let frames = valid_frames();
        let (_, frame) = &frames[which % frames.len()];
        let bit = bit % (frame.len() * 8);
        let mut flipped = frame.clone();
        flipped[bit / 8] ^= 1 << (bit % 8);
        run_wire_decoders(&flipped);
        run_codec_decoders(&flipped);
    }

    /// Truncation at an arbitrary byte boundary (the simulator's other
    /// corruption mode) must also decode or fail cleanly.
    #[test]
    fn truncated_valid_frames_never_panic(
        which in any::<usize>(),
        keep in any::<usize>(),
    ) {
        let frames = valid_frames();
        let (_, frame) = &frames[which % frames.len()];
        let keep = keep % (frame.len() + 1);
        run_wire_decoders(&frame[..keep]);
        run_codec_decoders(&frame[..keep]);
    }
}

/// Every valid frame still decodes under the fuzz harness (guards against a
/// harness that "passes" because the decoders reject everything).
#[test]
fn valid_frames_decode_under_harness() {
    for (name, frame) in valid_frames() {
        assert!(
            run_wire_decoders(frame) >= 1,
            "{name}: no wire decoder accepted its own valid frame"
        );
    }
}

/// A corrupt count/length prefix claiming far more entries than the frame
/// physically carries must be rejected up front — quickly and without the
/// prefix sizing an allocation. u64::MAX entries would be hundreds of
/// exabytes; if any decoder trusted the prefix this test would abort the
/// process instead of failing an assertion.
#[test]
fn absurd_count_prefixes_are_rejected_without_allocation() {
    // Wire frames: header + a huge varint where each body expects its count.
    for kind in [4u8, 2, 7, 10] {
        let mut frame = vec![wire::MAGIC, wire::VERSION, kind];
        codec::put_varint(&mut frame, u64::MAX);
        assert_eq!(run_wire_decoders(&frame), 0, "kind {kind}");
    }
    // A reliable frame whose length prefix exceeds the physical remainder.
    let mut frame = vec![wire::MAGIC, wire::VERSION, 8];
    codec::put_varint(&mut frame, 1); // seq
    frame.extend_from_slice(&0u64.to_le_bytes()); // bogus checksum
    codec::put_varint(&mut frame, u64::MAX); // claimed body length
    frame.extend_from_slice(&[0xAB; 16]); // 16 actual bytes
    assert!(wire::decode_reliable(&frame).is_err());
    // A linear SVM whose dimension prefix exceeds the decode cap.
    let mut body = Vec::new();
    codec::put_varint(&mut body, u64::MAX);
    assert!(codec::decode_linear_svm(&mut ByteReader::new(&body)).is_err());
    // Raw codec bodies led by a huge count.
    let mut body = Vec::new();
    codec::put_varint(&mut body, u64::MAX);
    assert_eq!(run_codec_decoders(&body), 0);
}
