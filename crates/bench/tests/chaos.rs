//! Tier-1 robustness regressions for the chaos regime grid.
//!
//! Two orderings are pinned, both straight from the paper's robustness
//! story: (a) collaborative tagging keeps its quality edge over isolated
//! per-peer learning when the network drops 10–20 % of frames (the reliable
//! link pays retransmissions to keep knowledge flowing), and (b) after a
//! partition heals, digest-based anti-entropy closes the quality gap — the
//! partitioned session's final macro-F1 lands within a small delta of the
//! same session without the partition.
//!
//! Constants are deliberately small (Small scale, few peers, seeded) so the
//! suite stays inside the tier-1 budget.

use bench::chaos::{fault_plan, measure_regime, standard_regimes, ChaosRegime, ChaosRow};
use bench::workload::Scale;

const PEERS: usize = 8;
const EPOCHS: usize = 3;
const SEED: u64 = 2010;

fn run(regime: &ChaosRegime) -> ChaosRow {
    measure_regime(regime, PEERS, Scale::Small, EPOCHS, SEED)
}

fn lossy(name: &'static str, loss: f64, partition: bool) -> ChaosRegime {
    ChaosRegime {
        name,
        description: "tier-1 regression regime",
        loss,
        partition,
        crashes: false,
        reliable: true,
    }
}

/// The best collaborative cell of a row (PACE or CEMPaR, whichever held up
/// better — the paper's claim is about collaboration, not one protocol).
fn collaborative_macro(row: &ChaosRow) -> f64 {
    row.cell("pace")
        .unwrap()
        .macro_f1
        .max(row.cell("cempar").unwrap().macro_f1)
}

#[test]
fn collaborative_beats_local_only_at_10_and_20_percent_loss() {
    for loss in [0.10, 0.20] {
        let row = run(&lossy("loss", loss, false));
        let collaborative = collaborative_macro(&row);
        let local = row.cell("local-only").unwrap().macro_f1;
        assert!(
            collaborative > local,
            "at {:.0} % loss collaborative macro-F1 {collaborative:.3} \
             does not beat local-only {local:.3}",
            loss * 100.0
        );
        // The edge was earned under real fault pressure, not a dead plan.
        let pace = row.cell("pace").unwrap();
        assert!(
            pace.faults.total_fault_drops() + pace.faults.corrupted > 0,
            "fault plan never fired at {:.0} % loss",
            loss * 100.0
        );
        assert!(
            pace.faults.retransmits > 0,
            "reliable link never retransmitted at {:.0} % loss",
            loss * 100.0
        );
    }
}

#[test]
fn macro_f1_recovers_after_partition_heals() {
    // Same session with and without a mid-session overlay bisection; both
    // share the 5 % loss floor so the partition is the only variable.
    let partitioned = run(&lossy("partition", 0.05, true));
    let reference = run(&lossy("no-partition", 0.05, false));
    for protocol in ["pace", "cempar", "centralized"] {
        let part = partitioned.cell(protocol).unwrap();
        let refr = reference.cell(protocol).unwrap();
        // Anti-entropy must close the gap: the healed session's final
        // quality lands within a small delta of the never-partitioned run.
        assert!(
            part.macro_f1 >= refr.macro_f1 - 0.1,
            "{protocol}: partitioned final macro-F1 {:.3} fell more than 0.1 \
             below the unpartitioned {:.3}",
            part.macro_f1,
            refr.macro_f1
        );
    }
    // The partition really severed traffic for the collaborative protocols.
    assert!(
        partitioned
            .cell("pace")
            .unwrap()
            .faults
            .partition_drops
            .max(partitioned.cell("cempar").unwrap().faults.partition_drops)
            > 0,
        "no partition drops recorded — the window never cut the overlay"
    );
}

#[test]
fn standard_grid_covers_loss_partition_and_crash_axes() {
    let regimes = standard_regimes();
    assert!(regimes
        .iter()
        .any(|r| !fault_plan(r, EPOCHS, 600.0, PEERS).is_active()));
    assert!(regimes.iter().any(|r| r.loss >= 0.10 && r.loss <= 0.20));
    assert!(regimes.iter().any(|r| r.partition));
    assert!(regimes.iter().any(|r| r.crashes));
    assert!(regimes.iter().any(|r| r.partition && r.crashes));
}

#[test]
fn crash_restart_regime_recovers_state() {
    let row = run(&ChaosRegime {
        name: "crash",
        description: "tier-1 crash regime",
        loss: 0.05,
        partition: false,
        crashes: true,
        reliable: true,
    });
    for cell in &row.cells {
        assert!(
            cell.macro_f1 > 0.1,
            "{} collapsed to {:.3} under crash-restarts",
            cell.protocol,
            cell.macro_f1
        );
    }
    // Crashes were scheduled and executed.
    assert!(
        row.cells.iter().any(|c| c.faults.crashes > 0),
        "no crash-restart events executed"
    );
}
