//! Allocation metering for the benchmark binaries.
//!
//! Behind the `alloc-count` feature this module installs a counting
//! [`std::alloc::GlobalAlloc`] wrapper around the system allocator, so the throughput
//! harness can report **allocations per document** and **peak live bytes**
//! alongside docs/sec. Memory traffic is what the shared-storage/CSR training
//! refactor attacks, so regressions must be visible in the perf trajectory,
//! not just as second-order timing noise.
//!
//! Without the feature the probes return `None` and the JSON rows carry
//! `null`s — the binaries behave identically either way. Counting costs a few
//! relaxed atomics per allocation; it is enabled for recorded benchmark runs
//! (`cargo run --release -p bench --features alloc-count --bin throughput`)
//! and the JSON marks whether it was on, so numbers are compared
//! like-for-like.

/// A snapshot of allocator activity since the last [`reset`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AllocStats {
    /// Number of allocation calls (`alloc` + `realloc`).
    pub allocs: u64,
    /// Total bytes requested by those calls.
    pub allocated_bytes: u64,
    /// Peak live (allocated minus freed) bytes observed.
    pub peak_bytes: u64,
}

impl AllocStats {
    /// Allocation calls per document for a stage that processed `docs`.
    pub fn allocs_per_doc(&self, docs: usize) -> f64 {
        self.allocs as f64 / docs.max(1) as f64
    }
}

#[cfg(feature = "alloc-count")]
mod imp {
    use super::AllocStats;
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static ALLOCATED: AtomicU64 = AtomicU64::new(0);
    static LIVE: AtomicU64 = AtomicU64::new(0);
    static PEAK: AtomicU64 = AtomicU64::new(0);

    /// Counts every allocation through the system allocator. All counters
    /// are relaxed: they feed a report, not synchronization.
    pub struct CountingAllocator;

    fn on_alloc(size: u64) {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED.fetch_add(size, Ordering::Relaxed);
        let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
        PEAK.fetch_max(live, Ordering::Relaxed);
    }

    fn on_dealloc(size: u64) {
        // Saturating: a reset between an alloc and its dealloc could
        // otherwise underflow the live counter.
        let _ = LIVE.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(size))
        });
    }

    // SAFETY: delegates every operation to `System`; the counter updates have
    // no effect on the returned memory.
    unsafe impl GlobalAlloc for CountingAllocator {
        // SAFETY: forwards `layout` unchanged to `System.alloc`, which
        // upholds the GlobalAlloc contract; the counters never touch the
        // returned block.
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc(layout);
            if !p.is_null() {
                on_alloc(layout.size() as u64);
            }
            p
        }

        // SAFETY: the caller passes the same `(ptr, layout)` pair `alloc`
        // returned (GlobalAlloc contract), and we hand both to
        // `System.dealloc` unchanged — counting happens after the free and
        // only reads `layout.size()`.
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            on_dealloc(layout.size() as u64);
        }

        // SAFETY: delegates to `System.realloc` with the caller's
        // `(ptr, layout, new_size)` untouched; counters are updated only
        // when the reallocation succeeded, from sizes alone.
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = System.realloc(ptr, layout, new_size);
            if !p.is_null() {
                // Release the old size before counting the new one: an
                // in-place growth never has both blocks live, so counting
                // new-then-old would inflate the live peak by the pre-growth
                // size of every doubling realloc.
                on_dealloc(layout.size() as u64);
                on_alloc(new_size as u64);
            }
            p
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAllocator = CountingAllocator;

    pub fn reset() {
        ALLOCS.store(0, Ordering::Relaxed);
        ALLOCATED.store(0, Ordering::Relaxed);
        PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    pub fn snapshot() -> Option<AllocStats> {
        Some(AllocStats {
            allocs: ALLOCS.load(Ordering::Relaxed),
            allocated_bytes: ALLOCATED.load(Ordering::Relaxed),
            peak_bytes: PEAK.load(Ordering::Relaxed),
        })
    }
}

#[cfg(not(feature = "alloc-count"))]
mod imp {
    use super::AllocStats;

    pub fn reset() {}

    pub fn snapshot() -> Option<AllocStats> {
        None
    }
}

/// Whether allocation counting is compiled in.
pub fn enabled() -> bool {
    cfg!(feature = "alloc-count")
}

/// Zeroes the counters (peak restarts from the current live size).
pub fn reset() {
    imp::reset();
}

/// The counters since the last [`reset`], or `None` without `alloc-count`.
pub fn snapshot() -> Option<AllocStats> {
    imp::snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_matches_feature_flag() {
        reset();
        let snap = snapshot();
        assert_eq!(snap.is_some(), enabled());
        if enabled() {
            // Allocate something measurable and confirm the counters move.
            let v: Vec<u64> = (0..1024).collect();
            let snap = snapshot().unwrap();
            assert!(snap.allocs >= 1, "{snap:?}");
            assert!(snap.allocated_bytes >= 8 * 1024, "{snap:?}");
            assert!(snap.peak_bytes > 0);
            drop(v);
        }
    }

    #[test]
    fn allocs_per_doc_guards_division() {
        let s = AllocStats {
            allocs: 10,
            allocated_bytes: 100,
            peak_bytes: 100,
        };
        assert_eq!(s.allocs_per_doc(0), 10.0);
        assert_eq!(s.allocs_per_doc(5), 2.0);
    }
}
