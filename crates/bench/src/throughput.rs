//! End-to-end throughput of the batched scoring engine vs the scalar path.
//!
//! Measures docs/sec for the three pipeline stages — **ingest** (corpus
//! vectorization), **train** (the full distributed learning phase, plus an
//! apples-to-apples microbenchmark of borrow-once vs clone-per-tag one-vs-all
//! training), and **auto-tag** (batch prediction of the whole test set) — at
//! several network sizes, with PACE as the protocol under test.
//!
//! The scalar auto-tag numbers run the *same build* with
//! [`ScoringBackend::Scalar`], which preserves the pre-refactor per-(tag,
//! classifier) loops, so the reported auto-tag speedup isolates the batched
//! engine rather than compiler or workload drift; the one-vs-all row
//! likewise re-executes the pre-refactor clone-per-tag training loop against
//! the CSR-native shared-context path. Ingest and the full learning phase
//! are scoring-backend-independent code, so they are reported as plain rates
//! with no before/after claim. The equivalence tests guarantee both backends
//! produce identical predictions (and the training backends bit-identical
//! models), so every comparison is work-for-work.
//!
//! With the `alloc-count` feature the rows also carry allocations/doc and
//! peak live bytes per stage (see [`crate::alloc`]), making memory-traffic
//! regressions visible alongside docs/sec.
//!
//! The workload is tag-heavy (48 tags, Zipf popularity, interest locality):
//! Golder & Huberman show collaborative tag vocabularies grow into the
//! thousands, so per-tag scoring cost is exactly what dominates at the
//! ROADMAP's scale target. The binary writes `BENCH_throughput.json` at the
//! repository root; `EXPERIMENTS.md` records a captured run.

use crate::alloc::{self, AllocStats};
use dataset::{CorpusGenerator, CorpusSpec, TrainTestSplit};
use doctagger::{DocTaggerConfig, P2PDocTagger, ProtocolKind};
use ml::multilabel::OneVsAllTrainer;
use ml::svm::{accuracy_on, LinearSvm, LinearSvmTrainer};
use ml::{MultiLabelDataset, OneVsAllModel};
use p2pclassify::{PaceConfig, ScoringBackend};
use std::collections::BTreeMap;
use std::time::Instant;

/// One pipeline stage measured under both backends.
#[derive(Debug, Clone, Copy)]
pub struct StagePair {
    /// Documents processed by the stage.
    pub docs: usize,
    /// Wall-clock seconds on the scalar (pre-refactor reference) path.
    pub scalar_secs: f64,
    /// Wall-clock seconds on the batched path.
    pub batched_secs: f64,
    /// Allocator activity of the scalar run (with `alloc-count`).
    pub scalar_mem: Option<AllocStats>,
    /// Allocator activity of the batched run (with `alloc-count`).
    pub batched_mem: Option<AllocStats>,
}

impl StagePair {
    /// Documents per second on the scalar path.
    pub fn scalar_docs_per_sec(&self) -> f64 {
        self.docs as f64 / self.scalar_secs.max(1e-9)
    }

    /// Documents per second on the batched path.
    pub fn batched_docs_per_sec(&self) -> f64 {
        self.docs as f64 / self.batched_secs.max(1e-9)
    }

    /// Batched-over-scalar throughput ratio.
    pub fn speedup(&self) -> f64 {
        self.scalar_secs / self.batched_secs.max(1e-9)
    }
}

/// A stage whose code does not depend on the scoring backend: only a
/// docs/sec rate is reported (comparing two runs of identical code would
/// present warm-up noise as a speedup).
#[derive(Debug, Clone, Copy)]
pub struct StageRate {
    /// Documents processed by the stage.
    pub docs: usize,
    /// Wall-clock seconds.
    pub secs: f64,
    /// Allocator activity of the stage (with `alloc-count`).
    pub mem: Option<AllocStats>,
}

impl StageRate {
    /// Documents per second.
    pub fn docs_per_sec(&self) -> f64 {
        self.docs as f64 / self.secs.max(1e-9)
    }
}

/// Throughput measurements for one network size.
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// Number of peers (= users) in the simulated network.
    pub peers: usize,
    /// Corpus size in documents.
    pub documents: usize,
    /// Distinct tags in the corpus.
    pub tags: usize,
    /// Fitted lexicon size.
    pub lexicon: usize,
    /// Corpus vectorization rate. The `ScoringBackend` switch does not touch
    /// ingest, so there is no scalar-vs-batched comparison here (on one core
    /// the parallel vectorizer degenerates to the sequential path).
    pub ingest: StageRate,
    /// Full distributed learning phase (training + propagation + indexing).
    /// Also backend-independent — the honest training before/after is the
    /// [`Self::one_vs_all`] microbenchmark.
    pub train: StageRate,
    /// One-vs-all training microbenchmark: pre-refactor clone-per-tag +
    /// per-tag accuracy pass vs borrow-once label-mask training, on the same
    /// pooled dataset.
    pub one_vs_all: StagePair,
    /// Auto-tagging the whole held-out test set — the scalar-vs-batched
    /// comparison the scoring engine is about.
    pub auto_tag: StagePair,
    /// Micro-F1 of the batched run (sanity: quality is unchanged).
    pub micro_f1: f64,
}

/// One overlay architecture's end-to-end numbers at scale.
///
/// Unlike the scalar-vs-batched [`StagePair`]s of the full rows, scale
/// columns run the batched engine only: the pre-refactor reference paths
/// (clone-per-tag one-vs-all, per-classifier scoring) are exactly the code
/// the scale work retires, and re-running them at 10k peers would dominate
/// the harness for a comparison the 50/200-peer rows already pin.
#[derive(Debug, Clone)]
pub struct OverlayColumn {
    /// Overlay architecture label: `"chord-dht"` (PACE's flat DHT ensemble)
    /// or `"super-peer"` (CEMPaR's regional super-peer cascade).
    pub overlay: &'static str,
    /// Protocol under test on that overlay.
    pub protocol: String,
    /// Full distributed learning phase.
    pub train: StageRate,
    /// Auto-tagging the whole held-out test set (batched backend).
    pub auto_tag: StageRate,
    /// Total bytes exchanged over the run.
    pub total_bytes: u64,
    /// Largest number of bytes received by any single peer (hotspot load).
    pub hotspot_bytes: u64,
    /// Mean DHT lookup hops observed (0 for protocols that never route).
    pub mean_hops: f64,
    /// Micro-F1 on the held-out test set (sanity: quality holds at scale).
    pub micro_f1: f64,
}

/// Scale measurements for one network size: the shared corpus stages plus
/// one column per overlay architecture.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Number of peers (= users) in the simulated network.
    pub peers: usize,
    /// Corpus size in documents.
    pub documents: usize,
    /// Distinct tags in the corpus.
    pub tags: usize,
    /// Corpus vectorization rate (shared by both overlay columns — the
    /// chord column's ingest is reported; the corpus itself is `Arc`-shared).
    pub ingest: StageRate,
    /// One column per overlay architecture.
    pub columns: Vec<OverlayColumn>,
}

/// Runs the scale experiment for one network size: the same tag-heavy
/// per-peer corpus shape as [`measure`], batched backend only, once per
/// overlay architecture. The corpus is generated once and `Arc`-shared.
pub fn measure_scale(num_users: usize, seed: u64) -> ScaleRow {
    use p2pclassify::CemparConfig;
    use p2psim::churn::ChurnModel;
    use p2psim::config::SimConfig;
    use std::sync::Arc;

    let corpus = Arc::new(CorpusGenerator::new(throughput_spec(num_users, seed)).generate());
    let split = throughput_split(&corpus, seed);
    let num_peers = corpus.num_users().max(1);
    let setups: Vec<(&'static str, ProtocolKind)> = vec![
        ("chord-dht", pace_with(ScoringBackend::Batched)),
        (
            "super-peer",
            ProtocolKind::Cempar(CemparConfig::for_network(num_peers)),
        ),
    ];

    let mut ingest_rate = None;
    let mut columns = Vec::new();
    for (overlay, protocol) in setups {
        let name = protocol.name().to_string();
        let mut system = P2PDocTagger::new(DocTaggerConfig {
            protocol,
            network: Some(SimConfig {
                num_peers,
                churn: ChurnModel::None,
                seed,
                ..SimConfig::default()
            }),
            seed,
            ..DocTaggerConfig::default()
        });
        let t0 = Instant::now();
        system.ingest_shared(corpus.clone());
        let ingest_secs = t0.elapsed().as_secs_f64();
        alloc::reset();
        let t1 = Instant::now();
        system.learn(&split).expect("learning succeeds");
        let train_secs = t1.elapsed().as_secs_f64();
        let train_mem = alloc::snapshot();
        alloc::reset();
        let t2 = Instant::now();
        let outcome = system.auto_tag_all().expect("tagging succeeds");
        let auto_secs = t2.elapsed().as_secs_f64();
        let auto_mem = alloc::snapshot();
        let stats = system.network_stats();
        if ingest_rate.is_none() {
            ingest_rate = Some(StageRate {
                docs: corpus.len(),
                secs: ingest_secs,
                mem: None,
            });
        }
        columns.push(OverlayColumn {
            overlay,
            protocol: name,
            train: StageRate {
                docs: split.train.len(),
                secs: train_secs,
                mem: train_mem,
            },
            auto_tag: StageRate {
                docs: split.test.len(),
                secs: auto_secs,
                mem: auto_mem,
            },
            total_bytes: stats.total_bytes(),
            hotspot_bytes: stats.max_bytes_received_by_any_peer(),
            mean_hops: stats.mean_lookup_hops(),
            micro_f1: outcome.metrics.micro_f1(),
        });
    }

    ScaleRow {
        peers: num_peers,
        documents: corpus.len(),
        tags: corpus.num_tags(),
        ingest: ingest_rate.expect("at least one overlay column ran"),
        columns,
    }
}

/// The tag-heavy throughput workload for `num_users` peers.
pub fn throughput_spec(num_users: usize, seed: u64) -> CorpusSpec {
    CorpusSpec {
        num_tags: 48,
        num_users,
        min_docs_per_user: 12,
        max_docs_per_user: 20,
        words_per_doc: 40,
        words_per_tag: 25,
        background_vocab: 300,
        interests_per_user: 6,
        seed,
        ..CorpusSpec::default()
    }
}

/// The held-out split of the throughput workload (20 % test, split seed
/// derived from the workload seed). Shared with the kernel microbenchmarks
/// (`crate::kernels`) so both harnesses decompose the identical workload.
pub fn throughput_split(corpus: &dataset::Corpus, seed: u64) -> TrainTestSplit {
    TrainTestSplit::stratified_by_user(corpus, 0.2, seed ^ 0xABCD)
}

/// The pooled (all-peers) training dataset of a split — the
/// centralized-baseline shape the one-vs-all microbenchmark and the kernel
/// microbenchmarks train on.
pub fn pooled_training_set(
    vectorized: &dataset::VectorizedCorpus,
    split: &TrainTestSplit,
) -> MultiLabelDataset {
    split
        .train
        .iter()
        .map(|&doc| vectorized.example(doc))
        .collect()
}

fn pace_with(backend: ScoringBackend) -> ProtocolKind {
    ProtocolKind::Pace(PaceConfig {
        backend,
        ..PaceConfig::default()
    })
}

/// Replicates the pre-refactor one-vs-all training loop: the full
/// feature-vector set is cloned per tag
/// (`MultiLabelDataset::one_vs_all_cloned`), tags are trained sequentially
/// with each fit re-deriving the problem dimension, DCD diagonal and shuffle
/// orders from scratch, and the per-tag training accuracies are computed
/// with another clone-per-tag pass of per-(tag, document) dot products —
/// exactly what `OneVsAllTrainer::train_with` and PACE's `train_local` did
/// before the borrow-once and CSR refactors.
fn legacy_train_peer(
    data: &MultiLabelDataset,
    trainer: &LinearSvmTrainer,
) -> Option<(OneVsAllModel<LinearSvm>, f64)> {
    if data.is_empty() {
        return None;
    }
    let mut classifiers = BTreeMap::new();
    for tag in data.tag_universe() {
        if data.tag_count(tag) < 1 {
            continue;
        }
        let (xs, ys) = data.one_vs_all_cloned(tag);
        classifiers.insert(tag, trainer.train(&xs, &ys));
    }
    if classifiers.is_empty() {
        return None;
    }
    let model = OneVsAllModel::from_classifiers(classifiers, 0.0, 1);
    let mut acc_sum = 0.0;
    let mut acc_n = 0usize;
    for (tag, clf) in model.iter() {
        let (xs, ys) = data.one_vs_all_cloned(tag);
        acc_sum += accuracy_on(clf, &xs, &ys);
        acc_n += 1;
    }
    let accuracy = acc_sum / acc_n.max(1) as f64;
    Some((model, accuracy))
}

/// The CSR-native equivalent of [`legacy_train_peer`]: the dataset is
/// materialized once as a row-major CSR arena whose shared training context
/// (diagonal, shuffle orders, solver scratch) serves every per-tag fit, and
/// the accuracy pass scores the whole tag universe in one
/// `TagWeightMatrix` pass per document — no per-tag corpus view anywhere.
/// Models and accuracies are bit-identical to the legacy loop's.
fn current_train_peer(
    data: &MultiLabelDataset,
    trainer: &LinearSvmTrainer,
) -> Option<(OneVsAllModel<LinearSvm>, f64)> {
    if data.is_empty() {
        return None;
    }
    let model = OneVsAllTrainer::default().train_linear_csr(data, trainer);
    if model.num_tags() == 0 {
        return None;
    }
    // Batched accuracy pass: per-tag correct counts from one matrix pass per
    // document (matrix decisions are bit-identical to per-classifier ones).
    let matrix = model.weight_matrix();
    let mut correct = vec![0usize; matrix.num_tags()];
    let mut decisions = Vec::new();
    for (x, tags) in data.iter() {
        matrix.decisions_into(x, &mut decisions);
        for (slot, &tag) in matrix.tags().iter().enumerate() {
            if (decisions[slot] >= 0.0) == tags.contains(&tag) {
                correct[slot] += 1;
            }
        }
    }
    let mut acc_sum = 0.0;
    for &c in &correct {
        acc_sum += c as f64 / data.len() as f64;
    }
    Some((model, acc_sum / matrix.num_tags().max(1) as f64))
}

/// Runs the throughput experiment for one network size.
pub fn measure(num_users: usize, seed: u64) -> ThroughputRow {
    let corpus = CorpusGenerator::new(throughput_spec(num_users, seed)).generate();
    let split = throughput_split(&corpus, seed);

    let run = |backend: ScoringBackend| {
        let mut system = P2PDocTagger::new(DocTaggerConfig {
            protocol: pace_with(backend),
            seed,
            ..DocTaggerConfig::default()
        });
        let t0 = Instant::now();
        system.ingest(&corpus);
        let ingest_secs = t0.elapsed().as_secs_f64();
        alloc::reset();
        let t1 = Instant::now();
        system.learn(&split).expect("learning succeeds");
        let train_secs = t1.elapsed().as_secs_f64();
        let train_mem = alloc::snapshot();
        alloc::reset();
        let t2 = Instant::now();
        let outcome = system.auto_tag_all().expect("tagging succeeds");
        let auto_secs = t2.elapsed().as_secs_f64();
        let auto_mem = alloc::snapshot();
        (
            ingest_secs,
            train_secs,
            auto_secs,
            train_mem,
            auto_mem,
            outcome,
        )
    };

    let (
        _scalar_ingest,
        _scalar_train,
        scalar_auto,
        _scalar_train_mem,
        scalar_auto_mem,
        scalar_outcome,
    ) = run(ScoringBackend::Scalar);
    let (
        batched_ingest,
        batched_train,
        batched_auto,
        batched_train_mem,
        batched_auto_mem,
        batched_outcome,
    ) = run(ScoringBackend::Batched);
    assert_eq!(
        scalar_outcome.metrics.micro_f1(),
        batched_outcome.metrics.micro_f1(),
        "backends must produce identical tagging quality"
    );

    // One-vs-all microbenchmark on the pooled training set (the
    // centralized-baseline shape): this is where the pre-refactor
    // clone-per-tag view's O(tags × corpus) allocation churn is worst.
    let vectorized = dataset::VectorizedCorpus::build(&corpus);
    let num_peers = corpus.num_users().max(1);
    let pooled = pooled_training_set(&vectorized, &split);
    let trainer = LinearSvmTrainer::default();
    // Interleaved best-of-3: both paths run alternately and keep their
    // fastest time, so a scheduler hiccup during either path's window cannot
    // masquerade as (or hide) a speedup — the treatment is symmetric. The
    // fits are deterministic, so every repetition does identical work; the
    // allocator counters are captured on the first repetition.
    let mut legacy_secs = f64::INFINITY;
    let mut current_secs = f64::INFINITY;
    let mut legacy_mem = None;
    let mut current_mem = None;
    let mut legacy = None;
    let mut current = None;
    for rep in 0..3 {
        alloc::reset();
        let t = Instant::now();
        legacy = Some(legacy_train_peer(&pooled, &trainer).expect("pooled data trains"));
        legacy_secs = legacy_secs.min(t.elapsed().as_secs_f64());
        if rep == 0 {
            legacy_mem = alloc::snapshot();
        }
        alloc::reset();
        let t = Instant::now();
        current = Some(current_train_peer(&pooled, &trainer).expect("pooled data trains"));
        current_secs = current_secs.min(t.elapsed().as_secs_f64());
        if rep == 0 {
            current_mem = alloc::snapshot();
        }
    }
    let legacy = legacy.expect("three repetitions ran");
    let current = current.expect("three repetitions ran");
    assert_eq!(legacy.1, current.1, "training accuracies must agree");
    assert_eq!(legacy.0.num_tags(), current.0.num_tags());

    ThroughputRow {
        peers: num_peers,
        documents: corpus.len(),
        tags: corpus.num_tags(),
        lexicon: vectorized.lexicon_size(),
        ingest: StageRate {
            docs: corpus.len(),
            secs: batched_ingest,
            mem: None,
        },
        train: StageRate {
            docs: split.train.len(),
            secs: batched_train,
            mem: batched_train_mem,
        },
        one_vs_all: StagePair {
            docs: split.train.len(),
            scalar_secs: legacy_secs,
            batched_secs: current_secs,
            scalar_mem: legacy_mem,
            batched_mem: current_mem,
        },
        auto_tag: StagePair {
            docs: split.test.len(),
            scalar_secs: scalar_auto,
            batched_secs: batched_auto,
            scalar_mem: scalar_auto_mem,
            batched_mem: batched_auto_mem,
        },
        micro_f1: batched_outcome.metrics.micro_f1(),
    }
}

/// Renders the rows as the `BENCH_throughput.json` document.
pub fn to_json(rows: &[ThroughputRow], scale_rows: &[ScaleRow], seed: u64) -> String {
    let mem_fields = |prefix: &str, mem: &Option<AllocStats>, docs: usize| match mem {
        Some(m) => format!(
            ", \"{prefix}allocs_per_doc\": {:.1}, \"{prefix}peak_bytes\": {}",
            m.allocs_per_doc(docs),
            m.peak_bytes,
        ),
        None => String::new(),
    };
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"throughput\",\n");
    out.push_str("  \"protocol\": \"pace\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"alloc_counting\": {},\n", alloc::enabled()));
    out.push_str(&format!(
        "  \"threads\": {},\n",
        parallel::effective_threads(usize::MAX)
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"peers\": {},\n", r.peers));
        out.push_str(&format!("      \"documents\": {},\n", r.documents));
        out.push_str(&format!("      \"tags\": {},\n", r.tags));
        out.push_str(&format!("      \"lexicon\": {},\n", r.lexicon));
        out.push_str(&format!("      \"micro_f1\": {:.4},\n", r.micro_f1));
        let rate = |name: &str, s: &StageRate| {
            format!(
                "      \"{name}\": {{\"docs\": {}, \"docs_per_sec\": {:.1}{}}},\n",
                s.docs,
                s.docs_per_sec(),
                mem_fields("", &s.mem, s.docs),
            )
        };
        let stage = |name: &str, s: &StagePair, trailing: bool| {
            format!(
                "      \"{name}\": {{\"docs\": {}, \"scalar_docs_per_sec\": {:.1}, \"batched_docs_per_sec\": {:.1}, \"speedup\": {:.2}{}{}}}{}\n",
                s.docs,
                s.scalar_docs_per_sec(),
                s.batched_docs_per_sec(),
                s.speedup(),
                mem_fields("scalar_", &s.scalar_mem, s.docs),
                mem_fields("batched_", &s.batched_mem, s.docs),
                if trailing { "," } else { "" },
            )
        };
        out.push_str(&rate("ingest", &r.ingest));
        out.push_str(&rate("train", &r.train));
        out.push_str(&stage("one_vs_all_train", &r.one_vs_all, true));
        out.push_str(&stage("auto_tag", &r.auto_tag, false));
        out.push_str(if i + 1 < rows.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"scale_rows\": [\n");
    for (i, r) in scale_rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"peers\": {},\n", r.peers));
        out.push_str(&format!("      \"documents\": {},\n", r.documents));
        out.push_str(&format!("      \"tags\": {},\n", r.tags));
        out.push_str(&format!(
            "      \"ingest\": {{\"docs\": {}, \"docs_per_sec\": {:.1}}},\n",
            r.ingest.docs,
            r.ingest.docs_per_sec(),
        ));
        out.push_str("      \"overlays\": [\n");
        for (j, c) in r.columns.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"overlay\": \"{}\", \"protocol\": \"{}\", \"micro_f1\": {:.4}, \"total_bytes\": {}, \"hotspot_bytes\": {}, \"mean_hops\": {:.2},\n",
                c.overlay, c.protocol, c.micro_f1, c.total_bytes, c.hotspot_bytes, c.mean_hops,
            ));
            out.push_str(&format!(
                "         \"train\": {{\"docs\": {}, \"docs_per_sec\": {:.1}{}}},\n",
                c.train.docs,
                c.train.docs_per_sec(),
                mem_fields("", &c.train.mem, c.train.docs),
            ));
            out.push_str(&format!(
                "         \"auto_tag\": {{\"docs\": {}, \"docs_per_sec\": {:.1}{}}}}}{}\n",
                c.auto_tag.docs,
                c.auto_tag.docs_per_sec(),
                mem_fields("", &c.auto_tag.mem, c.auto_tag.docs),
                if j + 1 < r.columns.len() { "," } else { "" },
            ));
        }
        out.push_str("      ]\n");
        out.push_str(if i + 1 < scale_rows.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_runs_and_reports_consistent_shapes() {
        let row = measure(6, 42);
        assert_eq!(row.peers, 6);
        assert!(row.documents > 0);
        assert!(row.auto_tag.docs > 0);
        assert!(row.auto_tag.scalar_secs > 0.0 && row.auto_tag.batched_secs > 0.0);
        assert!(row.micro_f1 > 0.0);
        let json = to_json(&[row], &[], 42);
        assert!(json.contains("\"auto_tag\""));
        assert!(json.contains("\"speedup\""));
        crate::scenarios::validate_json(&json).unwrap();
    }

    #[test]
    fn measure_scale_reports_both_overlay_columns() {
        let row = measure_scale(8, 42);
        assert_eq!(row.peers, 8);
        assert_eq!(row.columns.len(), 2);
        assert_eq!(row.columns[0].overlay, "chord-dht");
        assert_eq!(row.columns[0].protocol, "pace");
        assert_eq!(row.columns[1].overlay, "super-peer");
        assert_eq!(row.columns[1].protocol, "cempar");
        for c in &row.columns {
            assert!(c.micro_f1 > 0.0, "{} produced no quality", c.overlay);
            assert!(c.total_bytes > 0, "{} moved no bytes", c.overlay);
            assert!(c.train.secs > 0.0 && c.auto_tag.secs > 0.0);
        }
        let json = to_json(&[], &[row], 42);
        crate::scenarios::validate_json(&json).unwrap();
        assert!(json.contains("\"scale_rows\""));
        assert!(json.contains("\"chord-dht\""));
        assert!(json.contains("\"super-peer\""));
    }

    #[test]
    fn legacy_and_current_training_agree() {
        let corpus = CorpusGenerator::new(throughput_spec(4, 7)).generate();
        let split = TrainTestSplit::stratified_by_user(&corpus, 0.3, 7);
        let vectorized = dataset::VectorizedCorpus::build(&corpus);
        let data: MultiLabelDataset = split.train.iter().map(|&d| vectorized.example(d)).collect();
        let trainer = LinearSvmTrainer::default();
        let (legacy_model, legacy_acc) = legacy_train_peer(&data, &trainer).unwrap();
        let (current_model, current_acc) = current_train_peer(&data, &trainer).unwrap();
        assert_eq!(legacy_acc, current_acc);
        assert_eq!(legacy_model.num_tags(), current_model.num_tags());
        let probe = vectorized.vector(split.test[0]);
        assert_eq!(legacy_model.scores(probe), current_model.scores(probe));
    }
}
