//! The experiment suite (E1–E9, A1–A2 in `DESIGN.md`).
//!
//! The original paper is a demonstration paper without numeric result tables;
//! each experiment here reproduces either a scenario the demo varies (§3) or a
//! quantitative claim made in §1–2, and prints a table whose *shape* (who
//! wins, by roughly how much, where the trends go) is the reproduction target.
//! `EXPERIMENTS.md` records one captured run of every table.

use crate::workload::{corpus_spec, run_system, standard_protocols, Scale, Workload};
use dataset::{CorpusGenerator, TrainTestSplit, VectorizedCorpus};
use doctagger::library::TagSource;
use doctagger::{DocTaggerConfig, P2PDocTagger, ProtocolKind, TagCloud};
use ml::MultiLabelDataset;
use p2pclassify::{Cempar, CemparConfig, P2PTagClassifier, Pace, PaceConfig, ProtocolError};
use p2psim::churn::ChurnModel;
use p2psim::datadist::{ClassDistribution, DataDistributor, SizeDistribution};
use p2psim::message::MessageKind;
use p2psim::peer::content_key;
use p2psim::{OverlayKind, P2PNetwork, PeerId, SimConfig, SimTime};
use std::collections::BTreeSet;

/// A printable experiment table.
pub struct Table {
    /// Experiment identifier ("E1", "A2", …).
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = format!("## {} — {}\n", self.id, self.title);
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

fn f(x: f64) -> String {
    format!("{x:.3}")
}

/// E1 — tagging accuracy of CEMPaR/PACE vs the centralized and local-only
/// baselines under the demo protocol (20 % training).
pub fn e1_accuracy(num_users: usize, seed: u64) -> Table {
    let workload = Workload::generate(num_users, Scale::Demo, seed);
    let mut rows = Vec::new();
    for protocol in standard_protocols(num_users) {
        let r = run_system(&workload, protocol, None, seed);
        rows.push(vec![
            r.protocol.clone(),
            f(r.outcome.metrics.micro_f1()),
            f(r.outcome.metrics.macro_f1()),
            f(r.outcome.metrics.micro_precision()),
            f(r.outcome.metrics.micro_recall()),
            f(r.outcome.metrics.hamming_loss()),
            f(r.outcome.metrics.subset_accuracy()),
        ]);
    }
    Table {
        id: "E1",
        title: "tagging accuracy vs baselines (20% train, no churn)",
        header: [
            "protocol",
            "micro-F1",
            "macro-F1",
            "precision",
            "recall",
            "hamming",
            "subset-acc",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    }
}

/// E2 — scalability with the number of peers: accuracy and per-peer
/// communication as the network grows (demo: "more than 500 peers").
pub fn e2_scalability(peer_counts: &[usize], seed: u64) -> Table {
    let mut rows = Vec::new();
    for &n in peer_counts {
        let workload = Workload::generate(n, Scale::Small, seed);
        for protocol in [
            ProtocolKind::Cempar(CemparConfig::for_network(n)),
            ProtocolKind::pace(),
            ProtocolKind::centralized(),
        ] {
            let r = run_system(&workload, protocol, None, seed);
            rows.push(vec![
                n.to_string(),
                r.protocol.clone(),
                f(r.outcome.metrics.micro_f1()),
                format!("{:.0}", r.bytes_per_peer),
                r.hotspot_bytes.to_string(),
                format!("{:.2}", r.mean_hops),
            ]);
        }
    }
    Table {
        id: "E2",
        title: "scalability with network size",
        header: [
            "peers",
            "protocol",
            "micro-F1",
            "bytes/peer",
            "hotspot bytes",
            "mean hops",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    }
}

/// E3 — communication cost breakdown by protocol phase.
pub fn e3_communication(num_users: usize, seed: u64) -> Table {
    let workload = Workload::generate(num_users, Scale::Demo, seed);
    let mut rows = Vec::new();
    for protocol in standard_protocols(num_users) {
        let name = protocol.name().to_string();
        let num_peers = workload.corpus.num_users().max(1);
        let mut system = P2PDocTagger::new(DocTaggerConfig {
            protocol,
            seed,
            ..DocTaggerConfig::default()
        });
        system.ingest(&workload.corpus);
        system.learn(&workload.split).expect("learning succeeds");
        system.auto_tag_all().expect("tagging succeeds");
        let stats = system.network_stats();
        // Sent view (delivered + dropped), consistent with the total/peer
        // column: the sender paid for every byte it put on the wire.
        let by = |k: MessageKind| stats.kind(k).bytes_sent().to_string();
        rows.push(vec![
            name,
            by(MessageKind::TrainingData),
            by(MessageKind::ModelPropagation),
            by(MessageKind::CentroidPropagation),
            by(MessageKind::DhtLookup),
            by(MessageKind::PredictionQuery),
            by(MessageKind::PredictionResponse),
            format!("{:.0}", stats.total_bytes() as f64 / num_peers as f64),
        ]);
    }
    Table {
        id: "E3",
        title: "communication cost by phase (bytes, whole run)",
        header: [
            "protocol",
            "raw data",
            "models",
            "centroids",
            "dht",
            "queries",
            "responses",
            "total/peer",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    }
}

/// E4 — churn resilience: requests issued by online peers that could not be
/// served, while the mean session length shrinks.
pub fn e4_churn(num_users: usize, seed: u64) -> Table {
    let mut rows = Vec::new();
    for &mean_session in &[4_000.0f64, 2_000.0, 1_000.0, 500.0] {
        let workload = Workload::generate(num_users, Scale::Small, seed);
        for protocol in [
            ProtocolKind::pace(),
            ProtocolKind::Cempar(CemparConfig::for_network(num_users)),
            ProtocolKind::centralized(),
        ] {
            let name = protocol.name().to_string();
            let mut system = P2PDocTagger::new(DocTaggerConfig {
                protocol,
                network: Some(SimConfig {
                    num_peers: workload.corpus.num_users(),
                    churn: ChurnModel::Exponential {
                        mean_session_secs: mean_session,
                        mean_offline_secs: mean_session / 2.0,
                    },
                    horizon_secs: 2_000_000,
                    seed,
                    ..SimConfig::default()
                }),
                seed,
                ..DocTaggerConfig::default()
            });
            system.ingest(&workload.corpus);
            system.learn(&workload.split).expect("learning succeeds");
            // Spread the tagging requests over time so churn matters.
            let mut served = 0usize;
            let mut unserved = 0usize;
            let mut correct_f1 = Vec::new();
            for (i, &doc) in workload.split.test.iter().enumerate() {
                if i % 5 == 0 {
                    system.advance_time(SimTime::from_secs(1_000));
                }
                match system.auto_tag(doc) {
                    Ok(tags) => {
                        served += 1;
                        let truth = &workload.corpus.document(doc).unwrap().tags;
                        let inter = tags.intersection(truth).count() as f64;
                        let denom = (tags.len() + truth.len()) as f64;
                        correct_f1.push(if denom > 0.0 {
                            2.0 * inter / denom
                        } else {
                            1.0
                        });
                    }
                    Err(ProtocolError::PeerOffline) => {}
                    Err(_) => unserved += 1,
                }
            }
            let failure = unserved as f64 / (served + unserved).max(1) as f64;
            let mean_f1 = correct_f1.iter().sum::<f64>() / correct_f1.len().max(1) as f64;
            rows.push(vec![
                format!("{mean_session:.0}"),
                name,
                format!("{:.1}%", failure * 100.0),
                f(mean_f1),
            ]);
        }
    }
    Table {
        id: "E4",
        title: "churn resilience (exponential churn, requests spread over time)",
        header: [
            "mean session (s)",
            "protocol",
            "unserved requests",
            "example-F1 (served)",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    }
}

/// E5 — overlay topology: structured DHT routing vs unstructured flooding.
pub fn e5_topology(num_peers: usize, lookups: usize, seed: u64) -> Table {
    let mut rows = Vec::new();
    let configs = [
        ("chord-dht", OverlayKind::Chord),
        (
            "flood-ttl4",
            OverlayKind::Unstructured { degree: 6, ttl: 4 },
        ),
        (
            "flood-ttl6",
            OverlayKind::Unstructured { degree: 6, ttl: 6 },
        ),
    ];
    for (name, overlay) in configs {
        let mut net = P2PNetwork::new(SimConfig {
            num_peers,
            overlay,
            seed,
            ..SimConfig::default()
        });
        let mut found = 0usize;
        for i in 0..lookups {
            let key = content_key(&(i as u64 + seed).to_le_bytes());
            let from = PeerId((i % num_peers) as u64);
            if net.dht_lookup(from, key).is_ok() {
                found += 1;
            }
        }
        let stats = net.stats();
        rows.push(vec![
            name.to_string(),
            num_peers.to_string(),
            format!("{:.1}%", 100.0 * found as f64 / lookups as f64),
            format!("{:.2}", stats.mean_lookup_hops()),
            format!(
                "{:.1}",
                stats.kind(MessageKind::DhtLookup).messages as f64 / lookups as f64
            ),
        ]);
    }
    Table {
        id: "E5",
        title: "overlay topology: routing success, hops and messages per lookup",
        header: [
            "overlay",
            "peers",
            "success",
            "mean hops",
            "messages/lookup",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    }
}

/// E6 — per-peer data distribution: accuracy when the same corpus is spread
/// over peers with uniform vs Zipf sizes and IID vs label-skewed classes.
pub fn e6_data_distribution(num_peers: usize, seed: u64) -> Table {
    let spec = corpus_spec(16, Scale::Small, seed);
    let corpus = CorpusGenerator::new(spec).generate();
    let split = TrainTestSplit::demo_protocol(&corpus, seed);
    let vectorized = VectorizedCorpus::build(&corpus);
    let labels: Vec<u64> = split
        .train
        .iter()
        .map(|&d| corpus.tag_ids_of(d).into_iter().next().unwrap_or_default() as u64)
        .collect();

    let scenarios = [
        (
            "uniform / iid",
            SizeDistribution::Uniform,
            ClassDistribution::Iid,
        ),
        (
            "zipf / iid",
            SizeDistribution::Zipf { exponent: 1.2 },
            ClassDistribution::Iid,
        ),
        (
            "uniform / label-skew",
            SizeDistribution::Uniform,
            ClassDistribution::LabelSkewed {
                concentration: 0.8,
                home_peers: 2,
            },
        ),
        (
            "zipf / label-skew",
            SizeDistribution::Zipf { exponent: 1.2 },
            ClassDistribution::LabelSkewed {
                concentration: 0.8,
                home_peers: 2,
            },
        ),
    ];
    let mut rows = Vec::new();
    for (name, size, class) in scenarios {
        let assignment = DataDistributor { size, class, seed }.distribute(&labels, num_peers);
        let gini = p2psim::datadist::size_gini(&assignment);
        let entropy = p2psim::datadist::label_entropy_ratio(&assignment, &labels);
        let mut peer_data: Vec<MultiLabelDataset> = vec![MultiLabelDataset::new(); num_peers];
        for (peer, items) in assignment.iter().enumerate() {
            for &i in items {
                peer_data[peer].push(vectorized.example(split.train[i]));
            }
        }
        for (proto_name, result) in run_protocols_on_peer_data(
            &peer_data,
            &vectorized,
            &split.test,
            &corpus,
            num_peers,
            seed,
        ) {
            rows.push(vec![
                name.to_string(),
                format!("{gini:.2}"),
                format!("{entropy:.2}"),
                proto_name,
                f(result),
            ]);
        }
    }
    Table {
        id: "E6",
        title: "per-peer size and class distribution (micro-F1)",
        header: [
            "distribution",
            "size gini",
            "label entropy",
            "protocol",
            "micro-F1",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    }
}

/// Helper for E6: trains CEMPaR and PACE directly on per-peer datasets and
/// evaluates micro-F1 on the test documents (queries from their owners'
/// peers modulo the network size).
fn run_protocols_on_peer_data(
    peer_data: &[MultiLabelDataset],
    vectorized: &VectorizedCorpus,
    test_docs: &[usize],
    corpus: &dataset::Corpus,
    num_peers: usize,
    seed: u64,
) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let universe: BTreeSet<u32> = (0..corpus.num_tags() as u32).collect();
    let protos: Vec<(String, Box<dyn P2PTagClassifier>)> = vec![
        (
            "cempar".to_string(),
            Box::new(Cempar::new(CemparConfig::for_network(num_peers))),
        ),
        (
            "pace".to_string(),
            Box::new(Pace::new(PaceConfig::default())),
        ),
    ];
    for (name, mut proto) in protos {
        let mut net = P2PNetwork::new(SimConfig {
            num_peers,
            seed,
            ..SimConfig::default()
        });
        proto
            .train(&mut net, &peer_data.to_vec())
            .expect("training succeeds");
        let mut predictions = Vec::new();
        let mut truths = Vec::new();
        for &doc in test_docs {
            let peer = PeerId((corpus.document(doc).unwrap().user % num_peers) as u64);
            let pred = proto
                .predict(&mut net, peer, vectorized.vector(doc))
                .unwrap_or_default();
            predictions.push(pred);
            truths.push(corpus.tag_ids_of(doc));
        }
        let metrics = ml::MultiLabelMetrics::evaluate(&predictions, &truths, &universe);
        out.push((name, metrics.micro_f1()));
    }
    out
}

/// E7 — accuracy as a function of the manually-tagged (training) fraction.
pub fn e7_training_fraction(num_users: usize, seed: u64) -> Table {
    let mut rows = Vec::new();
    for &fraction in &[0.05f64, 0.1, 0.2, 0.3, 0.4] {
        let workload = Workload::generate_with_fraction(num_users, Scale::Small, seed, fraction);
        for protocol in [
            ProtocolKind::pace(),
            ProtocolKind::Cempar(CemparConfig::for_network(num_users)),
            ProtocolKind::local_only(),
        ] {
            let r = run_system(&workload, protocol, None, seed);
            rows.push(vec![
                format!("{:.0}%", fraction * 100.0),
                r.protocol.clone(),
                f(r.outcome.metrics.micro_f1()),
                f(r.outcome.metrics.macro_f1()),
            ]);
        }
    }
    Table {
        id: "E7",
        title: "accuracy vs manually-tagged fraction",
        header: ["train fraction", "protocol", "micro-F1", "macro-F1"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    }
}

/// E8 — tag refinement: accuracy on the untouched documents before and after
/// rounds of user corrections.
pub fn e8_refinement(num_users: usize, seed: u64) -> Table {
    let workload = Workload::generate_with_fraction(num_users, Scale::Small, seed, 0.1);
    let mut system = P2PDocTagger::new(DocTaggerConfig {
        protocol: ProtocolKind::pace(),
        seed,
        ..DocTaggerConfig::default()
    });
    system.ingest(&workload.corpus);
    system.learn(&workload.split).expect("learning succeeds");
    let mut rows = Vec::new();
    let rounds = 4usize;
    let per_round = 20usize;
    let holdout: Vec<usize> = workload
        .split
        .test
        .iter()
        .copied()
        .skip(rounds * per_round)
        .collect();
    let evaluate = |system: &mut P2PDocTagger| -> f64 {
        let universe: BTreeSet<u32> = (0..workload.corpus.num_tags() as u32).collect();
        let mut predictions = Vec::new();
        let mut truths = Vec::new();
        for &doc in &holdout {
            let tags = system.auto_tag(doc).unwrap_or_default();
            predictions.push(
                tags.iter()
                    .filter_map(|t| workload.corpus.tag_id(t))
                    .collect(),
            );
            truths.push(workload.corpus.tag_ids_of(doc));
        }
        ml::MultiLabelMetrics::evaluate(&predictions, &truths, &universe).micro_f1()
    };
    rows.push(vec![
        "0".to_string(),
        "0".to_string(),
        f(evaluate(&mut system)),
    ]);
    for round in 1..=rounds {
        let start = (round - 1) * per_round;
        for &doc in workload.split.test.iter().skip(start).take(per_round) {
            let truth = workload.corpus.document(doc).unwrap().tags.clone();
            system.refine(doc, truth).expect("refinement succeeds");
        }
        rows.push(vec![
            round.to_string(),
            (round * per_round).to_string(),
            f(evaluate(&mut system)),
        ]);
    }
    Table {
        id: "E8",
        title:
            "tag refinement: held-out micro-F1 after rounds of user corrections (PACE, 10% train)",
        header: ["round", "total corrections", "micro-F1"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    }
}

/// E9 — tag-cloud structure (Figure 4): co-occurrence graph, clusters, bridges.
pub fn e9_tag_cloud(num_users: usize, seed: u64) -> Table {
    let workload = Workload::generate(num_users, Scale::Small, seed);
    let mut system = P2PDocTagger::new(DocTaggerConfig {
        seed,
        ..DocTaggerConfig::default()
    });
    system.ingest(&workload.corpus);
    system.learn(&workload.split).expect("learning succeeds");
    system.auto_tag_all().expect("tagging succeeds");
    let cloud: TagCloud = system.tag_cloud();
    let manual = system
        .library()
        .iter()
        .filter(|e| e.source == TagSource::Manual)
        .count();
    let mut rows = vec![
        vec![
            "documents in library".to_string(),
            system.library().len().to_string(),
        ],
        vec!["manually tagged".to_string(), manual.to_string()],
        vec![
            "automatically tagged".to_string(),
            system.library().auto_tagged_count().to_string(),
        ],
        vec!["distinct tags".to_string(), cloud.num_tags().to_string()],
        vec![
            "co-occurrence edges".to_string(),
            cloud.num_edges().to_string(),
        ],
    ];
    for min_weight in [1usize, 3, 6] {
        let clusters = cloud.clusters(min_weight);
        let bridges = cloud.bridge_tags(min_weight);
        rows.push(vec![
            format!("clusters (edge weight >= {min_weight})"),
            format!("{} (bridges: {})", clusters.len(), bridges.join(", ")),
        ]);
    }
    Table {
        id: "E9",
        title: "tag cloud and co-occurrence structure",
        header: ["statistic", "value"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    }
}

/// A1 — PACE ablation: number of consulted models (top-k) and the LSH index.
pub fn a1_pace_ablation(num_users: usize, seed: u64) -> Table {
    let workload = Workload::generate(num_users, Scale::Small, seed);
    let mut rows = Vec::new();
    for &top_k in &[1usize, 3, 7, 15] {
        for &use_lsh in &[true, false] {
            let protocol = ProtocolKind::Pace(PaceConfig {
                top_k,
                use_lsh,
                ..PaceConfig::default()
            });
            let r = run_system(&workload, protocol, None, seed);
            rows.push(vec![
                top_k.to_string(),
                if use_lsh { "lsh" } else { "exact" }.to_string(),
                f(r.outcome.metrics.micro_f1()),
                f(r.outcome.metrics.macro_f1()),
            ]);
        }
    }
    Table {
        id: "A1",
        title: "PACE ablation: top-k consulted models and LSH index",
        header: ["top-k", "model ranking", "micro-F1", "macro-F1"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    }
}

/// A2 — CEMPaR ablation: number of super-peer regions and cascade retraining.
pub fn a2_cempar_ablation(num_users: usize, seed: u64) -> Table {
    let workload = Workload::generate(num_users, Scale::Small, seed);
    let mut rows = Vec::new();
    for &regions in &[1usize, 2, 4, 8, 16] {
        for &retrain in &[true, false] {
            let mut config = CemparConfig::for_network(num_users);
            config.regions = regions;
            config.cascade.retrain = retrain;
            let protocol = ProtocolKind::Cempar(config);
            let r = run_system(&workload, protocol, None, seed);
            rows.push(vec![
                regions.to_string(),
                if retrain { "retrain" } else { "pool-only" }.to_string(),
                f(r.outcome.metrics.micro_f1()),
                format!("{:.0}", r.bytes_per_peer),
                r.hotspot_bytes.to_string(),
            ]);
        }
    }
    Table {
        id: "A2",
        title: "CEMPaR ablation: super-peer regions and cascade retraining",
        header: [
            "regions",
            "cascade",
            "micro-F1",
            "bytes/peer",
            "hotspot bytes",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_produces_one_row_per_protocol() {
        let t = e1_accuracy(6, 3);
        assert_eq!(t.rows.len(), 4);
        assert!(t.render().contains("micro-F1"));
    }

    #[test]
    fn e5_runs_all_overlays() {
        let t = e5_topology(64, 30, 3);
        assert_eq!(t.rows.len(), 3);
        // Chord must have 100% success.
        assert!(t.rows[0][2].starts_with("100"));
    }

    #[test]
    fn e9_reports_cloud_statistics() {
        let t = e9_tag_cloud(6, 3);
        assert!(t.rows.len() >= 7);
    }

    #[test]
    fn table_rendering_is_aligned() {
        let t = Table {
            id: "X",
            title: "test",
            header: vec!["a".into(), "b".into()],
            rows: vec![vec!["1".into(), "22".into()]],
        };
        let s = t.render();
        assert!(s.contains("## X — test"));
        assert!(s.lines().count() >= 4);
    }
}
