//! Kernel-level microbenchmarks of the sparse linear-algebra hot paths.
//!
//! The end-to-end throughput harness (`throughput.rs`) measures pipeline
//! stages; this module times the individual kernels those stages are built
//! from, on the same tag-heavy workload, so a perf regression can be located
//! without bisecting the whole pipeline:
//!
//! * `sparse_dot` — sorted merge-join `SparseVector::dot` (kernel SVM rows,
//!   LSH distances);
//! * `dot_dense` — `SparseVector::dot_dense` vs the bounds-check-free
//!   [`textproc::CsrMatrix::row_dot_dense`] (the SVM solvers' inner product);
//! * `tag_matrix_scoring` — per-tag scalar decisions vs one
//!   [`ml::batch::TagWeightMatrix`] pass over the document nonzeros;
//! * `dcd_cold_train` — one cold one-vs-all DCD fit, `&[SparseVector]` vs the
//!   shared-context CSR path;
//! * `sgd_warm_epochs` — the warm-start SGD refit (pure SGD epochs), slice vs
//!   CSR.
//!
//! The binary writes `BENCH_kernels.json`; `EXPERIMENTS.md` §K1 records a
//! captured run. Both sides of every comparison compute bit-identical
//! results (pinned by the `ml` equivalence tests), so the ratios are
//! work-for-work.

use crate::throughput::{pooled_training_set, throughput_spec, throughput_split};
use dataset::CorpusGenerator;
use ml::multilabel::OneVsAllTrainer;
use ml::svm::{BinaryClassifier, CsrLinearTrainer, LinearSvmTrainer};
use ml::MultiLabelDataset;
use std::hint::black_box;
use std::time::Instant;

/// One microbenchmark row: a kernel timed on the scalar reference and (when
/// a shared-storage variant exists) on the fast path.
#[derive(Debug, Clone)]
pub struct KernelRow {
    /// Kernel name (stable identifier for the JSON).
    pub op: &'static str,
    /// Number of operations timed (dots, documents, or fits).
    pub ops: usize,
    /// Nanoseconds per operation on the scalar reference path.
    pub scalar_ns_per_op: f64,
    /// Nanoseconds per operation on the CSR/batched path, if one exists.
    pub fast_ns_per_op: Option<f64>,
}

impl KernelRow {
    /// Scalar-over-fast ratio (`None` for characterization-only rows).
    pub fn speedup(&self) -> Option<f64> {
        self.fast_ns_per_op
            .map(|f| self.scalar_ns_per_op / f.max(1e-9))
    }
}

/// The pooled training dataset of the throughput workload at `num_users` —
/// built through the same corpus/split/pooling helpers `throughput::measure`
/// uses, so the kernel rows decompose exactly the workload the end-to-end
/// rows measure.
fn pooled_dataset(num_users: usize, seed: u64) -> MultiLabelDataset {
    let corpus = CorpusGenerator::new(throughput_spec(num_users, seed)).generate();
    let split = throughput_split(&corpus, seed);
    let vectorized = dataset::VectorizedCorpus::build(&corpus);
    pooled_training_set(&vectorized, &split)
}

fn time<F: FnMut() -> f64>(mut f: F) -> f64 {
    let t = Instant::now();
    black_box(f());
    t.elapsed().as_secs_f64()
}

/// Runs every kernel microbenchmark on the `num_users` workload.
pub fn measure(num_users: usize, seed: u64) -> (Vec<KernelRow>, usize, f64) {
    let data = pooled_dataset(num_users, seed);
    let xs = data.vectors();
    let n = xs.len();
    let csr = data.to_csr();
    let avg_nnz = csr.nnz() as f64 / n.max(1) as f64;
    let dim = csr.dim();
    let w: Vec<f64> = (0..dim + 1).map(|j| (j as f64 * 0.37).sin()).collect();
    let mut rows = Vec::new();
    let reps = 200usize;

    // sparse_dot: every consecutive row pair, merge-join.
    let ops = reps * n.saturating_sub(1);
    let secs = time(|| {
        let mut acc = 0.0;
        for _ in 0..reps {
            for i in 1..n {
                acc += xs[i - 1].dot(&xs[i]);
            }
        }
        acc
    });
    rows.push(KernelRow {
        op: "sparse_dot",
        ops,
        scalar_ns_per_op: secs * 1e9 / ops.max(1) as f64,
        fast_ns_per_op: None,
    });

    // dot_dense: slice path vs CSR row kernel, identical accumulation order.
    let ops = reps * n;
    let scalar_secs = time(|| {
        let mut acc = 0.0;
        for _ in 0..reps {
            for x in xs {
                acc += x.dot_dense(&w);
            }
        }
        acc
    });
    let csr_secs = time(|| {
        let mut acc = 0.0;
        for _ in 0..reps {
            for i in 0..n {
                acc += csr.row_dot_dense(i, &w);
            }
        }
        acc
    });
    rows.push(KernelRow {
        op: "dot_dense",
        ops,
        scalar_ns_per_op: scalar_secs * 1e9 / ops.max(1) as f64,
        fast_ns_per_op: Some(csr_secs * 1e9 / ops.max(1) as f64),
    });

    // tag_matrix_scoring: per-tag scalar decisions vs one CSR pass per doc.
    let trainer = LinearSvmTrainer::default();
    let ova = OneVsAllTrainer::default();
    let model = ova.train_linear_csr(&data, &trainer);
    let matrix = model.weight_matrix();
    let score_reps = 20usize;
    let ops = score_reps * n;
    let scalar_secs = time(|| {
        let mut acc = 0.0;
        for _ in 0..score_reps {
            for x in xs {
                for (_, clf) in model.iter() {
                    acc += clf.decision(x);
                }
            }
        }
        acc
    });
    let batched_secs = time(|| {
        let mut acc = 0.0;
        let mut scratch = Vec::new();
        for _ in 0..score_reps {
            for x in xs {
                matrix.decisions_into(x, &mut scratch);
                acc += scratch.iter().sum::<f64>();
            }
        }
        acc
    });
    rows.push(KernelRow {
        op: "tag_matrix_scoring",
        ops,
        scalar_ns_per_op: scalar_secs * 1e9 / ops.max(1) as f64,
        fast_ns_per_op: Some(batched_secs * 1e9 / ops.max(1) as f64),
    });

    // dcd_cold_train: one full one-vs-all fit (every eligible tag).
    let tags: Vec<_> = data.tag_universe().into_iter().collect();
    let scalar_secs = time(|| {
        let mut acc = 0.0;
        for &tag in &tags {
            let ys = data.label_mask(tag);
            acc += trainer.train(xs, &ys).bias();
        }
        acc
    });
    let csr_secs = time(|| {
        let mut acc = 0.0;
        let mut ctx = CsrLinearTrainer::new(&trainer, &csr);
        let mut mask = Vec::new();
        for &tag in &tags {
            data.label_mask_into(tag, &mut mask);
            acc += ctx.train(&mask).bias();
        }
        acc
    });
    rows.push(KernelRow {
        op: "dcd_cold_train",
        ops: tags.len(),
        scalar_ns_per_op: scalar_secs * 1e9 / tags.len().max(1) as f64,
        fast_ns_per_op: Some(csr_secs * 1e9 / tags.len().max(1) as f64),
    });

    // sgd_warm_epochs: warm refit = warm_passes pure SGD epochs per tag.
    let warm_models: Vec<_> = tags
        .iter()
        .map(|&tag| {
            let ys = data.label_mask(tag);
            trainer.train(xs, &ys)
        })
        .collect();
    let scalar_secs = time(|| {
        let mut acc = 0.0;
        for (&tag, warm) in tags.iter().zip(&warm_models) {
            let ys = data.label_mask(tag);
            acc += trainer.train_warm(xs, &ys, warm).bias();
        }
        acc
    });
    let csr_secs = time(|| {
        let mut acc = 0.0;
        let mut ctx = CsrLinearTrainer::new(&trainer, &csr);
        let mut mask = Vec::new();
        for (&tag, warm) in tags.iter().zip(&warm_models) {
            data.label_mask_into(tag, &mut mask);
            acc += ctx.train_warm(&mask, warm).bias();
        }
        acc
    });
    rows.push(KernelRow {
        op: "sgd_warm_epochs",
        ops: tags.len(),
        scalar_ns_per_op: scalar_secs * 1e9 / tags.len().max(1) as f64,
        fast_ns_per_op: Some(csr_secs * 1e9 / tags.len().max(1) as f64),
    });

    (rows, n, avg_nnz)
}

/// Renders the rows as the `BENCH_kernels.json` document.
pub fn to_json(
    rows: &[KernelRow],
    docs: usize,
    avg_nnz: f64,
    num_users: usize,
    seed: u64,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"kernels\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"peers\": {num_users},\n"));
    out.push_str(&format!("  \"docs\": {docs},\n"));
    out.push_str(&format!("  \"avg_nnz_per_doc\": {avg_nnz:.1},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let fast = r
            .fast_ns_per_op
            .map_or("null".to_string(), |f| format!("{f:.1}"));
        let speedup = r
            .speedup()
            .map_or("null".to_string(), |s| format!("{s:.2}"));
        out.push_str(&format!(
            "    {{\"op\": \"{}\", \"ops\": {}, \"scalar_ns_per_op\": {:.1}, \"csr_ns_per_op\": {}, \"speedup\": {}}}{}\n",
            r.op,
            r.ops,
            r.scalar_ns_per_op,
            fast,
            speedup,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_every_kernel_with_positive_times() {
        let (rows, docs, avg_nnz) = measure(4, 7);
        assert_eq!(rows.len(), 5);
        assert!(docs > 0);
        assert!(avg_nnz > 0.0);
        for r in &rows {
            assert!(r.scalar_ns_per_op > 0.0, "{}", r.op);
            if let Some(f) = r.fast_ns_per_op {
                assert!(f > 0.0, "{}", r.op);
                assert!(r.speedup().unwrap() > 0.0);
            }
        }
        assert!(rows[0].speedup().is_none());
        let json = to_json(&rows, docs, avg_nnz, 4, 7);
        assert!(json.contains("\"dcd_cold_train\""));
        assert!(json.contains("\"sgd_warm_epochs\""));
    }
}
