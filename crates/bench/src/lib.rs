//! Experiment harness for the P2PDocTagger reproduction.
//!
//! Every scenario the demonstration section (§3) varies — and every
//! quantitative claim of §1–2 — has a function here that builds the workload,
//! runs the protocols over the simulated P2P environment, and returns the rows
//! of the corresponding table. The `experiments` binary prints them; the
//! Criterion benches in `benches/` time the hot paths of the same code.
//! `DESIGN.md` (experiment index) maps experiment ids to paper anchors.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod session;
pub mod throughput;
pub mod workload;

pub use experiments::*;
pub use workload::*;
