//! Experiment harness for the P2PDocTagger reproduction.
//!
//! Every scenario the demonstration section (§3) varies — and every
//! quantitative claim of §1–2 — has a function here that builds the workload,
//! runs the protocols over the simulated P2P environment, and returns the rows
//! of the corresponding table. The `experiments` binary prints them; the
//! Criterion benches in `benches/` time the hot paths of the same code.
//! `DESIGN.md` (experiment index) maps experiment ids to paper anchors.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alloc;
pub mod chaos;
pub mod experiments;
pub mod kernels;
pub mod scale;
pub mod scenarios;
pub mod session;
pub mod throughput;
pub mod wire;
pub mod workload;

pub use experiments::*;
pub use workload::*;

/// The directory the benchmark binaries write their `BENCH_*.json` files to:
/// the workspace root (identified by `CHANGES.md`, walking up from
/// `CARGO_MANIFEST_DIR`), falling back to the current directory when run
/// outside the workspace.
pub fn workspace_root() -> std::path::PathBuf {
    std::env::var("CARGO_MANIFEST_DIR")
        .ok()
        .and_then(|d| {
            std::path::Path::new(&d)
                .ancestors()
                .find(|p| p.join("CHANGES.md").exists())
                .map(std::path::Path::to_path_buf)
        })
        .unwrap_or_else(|| std::path::PathBuf::from("."))
}
