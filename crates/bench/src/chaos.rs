//! Chaos regime grid: the four protocols replayed under deterministic fault
//! injection (loss × partition × crash-restart).
//!
//! Each cell streams a session through [`doctagger::SessionDriver`] with a
//! [`FaultPlan`] installed in the simulated network and the reliability layer
//! (sequence-numbered ack/retransmit sends plus digest-based anti-entropy)
//! switched on for the faulty regimes. The grid answers the robustness
//! questions the fault layer exists to ask:
//!
//! - does collaborative tagging keep its edge over isolated per-peer learning
//!   when 10–20 % of frames are dropped or damaged in transit?
//! - does quality recover after a partition heals (anti-entropy re-sync)?
//! - do crash-restarted peers rebuild their in-memory state?
//!
//! The `baseline` regime runs with a fully disabled plan and reliability off:
//! it is byte-identical to a run on a build without the fault layer and is
//! the reference column the faulty cells are compared against.
//!
//! The binary writes `BENCH_chaos.json` at the repository root;
//! `EXPERIMENTS.md` records a captured run.

use crate::workload::{corpus_spec, standard_protocols, Scale};
use dataset::CorpusGenerator;
use doctagger::{SessionConfig, SessionDriver};
use p2pclassify::{LinkStats, ReliabilityConfig};
use p2psim::churn::ChurnModel;
use p2psim::faults::{FaultPlan, PartitionScope, PartitionWindow};
use p2psim::stats::FaultStats;
use std::time::Instant;

/// One point of the loss × partition × crash grid.
#[derive(Debug, Clone)]
pub struct ChaosRegime {
    /// Row label.
    pub name: &'static str,
    /// What the regime stresses.
    pub description: &'static str,
    /// Independent per-send loss probability (the burst channel and frame
    /// corruption scale with it, see [`FaultPlan::chaos`]).
    pub loss: f64,
    /// Whether a partition window bisects the overlay mid-session.
    pub partition: bool,
    /// Whether peers crash-restart (losing in-memory protocol state).
    pub crashes: bool,
    /// Whether the protocols send over the reliable link.
    pub reliable: bool,
}

/// The standard grid: a fault-free reference, the two loss rates the paper
/// claim is pinned at, a mid-session partition, crash-restarts, and the
/// all-hazards combination.
pub fn standard_regimes() -> Vec<ChaosRegime> {
    vec![
        ChaosRegime {
            name: "baseline",
            description: "no faults, reliability off — the pre-fault-layer reference",
            loss: 0.0,
            partition: false,
            crashes: false,
            reliable: false,
        },
        ChaosRegime {
            name: "loss-10",
            description: "10 % frame loss with bursts and corruption",
            loss: 0.10,
            partition: false,
            crashes: false,
            reliable: true,
        },
        ChaosRegime {
            name: "loss-20",
            description: "20 % frame loss with bursts and corruption",
            loss: 0.20,
            partition: false,
            crashes: false,
            reliable: true,
        },
        ChaosRegime {
            name: "partition",
            description: "5 % loss plus a mid-session overlay bisection",
            loss: 0.05,
            partition: true,
            crashes: false,
            reliable: true,
        },
        ChaosRegime {
            name: "crash",
            description: "5 % loss plus scheduled crash-restarts",
            loss: 0.05,
            partition: false,
            crashes: true,
            reliable: true,
        },
        ChaosRegime {
            name: "chaos-full",
            description: "15 % loss, partition and crash-restarts together",
            loss: 0.15,
            partition: true,
            crashes: true,
            reliable: true,
        },
    ]
}

/// The regime's fault plan for a session of `epochs` × `epoch_secs` over
/// `num_peers` peers. Session traffic flows at epoch boundaries (multiples
/// of `epoch_secs`), so the partition window is centered on the *middle*
/// boundary — one epoch's exchanges run bisected, the window heals before
/// the next boundary, and the remaining epochs measure anti-entropy
/// recovery. A regime with every knob off returns the inactive default
/// plan, which draws no randomness at all.
pub fn fault_plan(
    regime: &ChaosRegime,
    epochs: usize,
    epoch_secs: f64,
    num_peers: usize,
) -> FaultPlan {
    if regime.loss <= 0.0 && !regime.partition && !regime.crashes {
        return FaultPlan::default();
    }
    let partition = regime.partition.then(|| {
        let mid = (epochs / 2) as f64 * epoch_secs;
        PartitionWindow {
            start_secs: (mid - epoch_secs * 0.5).max(0.0) as u64,
            end_secs: (mid + epoch_secs * 0.5) as u64,
            scope: PartitionScope::Index {
                pivot: num_peers / 2,
            },
        }
    });
    FaultPlan::chaos(regime.loss, partition, regime.crashes)
}

/// One protocol's outcome under one regime.
#[derive(Debug, Clone)]
pub struct ChaosCell {
    /// Protocol name.
    pub protocol: String,
    /// Final micro-averaged F1.
    pub micro_f1: f64,
    /// Final macro-averaged F1 (the acceptance metric).
    pub macro_f1: f64,
    /// Per-epoch macro-F1 trajectory — the recovery curve: under the
    /// partition regimes the mid-session dip must close again by the final
    /// epoch.
    pub epoch_macro_f1: Vec<f64>,
    /// Auto-tag requests that failed over the whole session.
    pub auto_failed: usize,
    /// Total bytes exchanged (retransmissions and anti-entropy included —
    /// reliability is paid for in measured wire bytes).
    pub bytes: u64,
    /// The network's fault counters (drops, corruption, crashes, ...).
    pub faults: FaultStats,
    /// The protocol's reliable-link counters (retransmits, give-ups,
    /// re-syncs, corrupted frames rejected).
    pub link: LinkStats,
    /// Wall-clock seconds for the session replay.
    pub secs: f64,
}

/// One regime's row: the regime plus one cell per protocol.
#[derive(Debug, Clone)]
pub struct ChaosRow {
    /// The regime replayed.
    pub regime: ChaosRegime,
    /// Corpus size in documents.
    pub documents: usize,
    /// Number of peers (= users).
    pub peers: usize,
    /// One cell per protocol, in [`standard_protocols`] order.
    pub cells: Vec<ChaosCell>,
}

impl ChaosRow {
    /// The cell of a protocol by name, if present.
    pub fn cell(&self, protocol: &str) -> Option<&ChaosCell> {
        self.cells.iter().find(|c| c.protocol == protocol)
    }
}

/// Replays one regime with every standard protocol and returns its row.
pub fn measure_regime(
    regime: &ChaosRegime,
    num_users: usize,
    scale: Scale,
    epochs: usize,
    seed: u64,
) -> ChaosRow {
    let corpus = CorpusGenerator::new(corpus_spec(num_users, scale, seed)).generate();
    let epoch_secs = 600.0;
    let plan = fault_plan(regime, epochs, epoch_secs, corpus.num_users());
    let reliability = regime.reliable.then(ReliabilityConfig::default);
    let cells = standard_protocols(corpus.num_users())
        .into_iter()
        .map(|protocol| {
            let name = protocol.name().to_string();
            let config = SessionConfig {
                epochs,
                epoch_secs,
                churn: ChurnModel::None,
                faults: plan.clone(),
                incremental: true,
                seed,
                ..SessionConfig::default()
            };
            let mut driver =
                SessionDriver::new(protocol.with_reliability(reliability), config, &corpus);
            let t = Instant::now();
            let outcome = driver.run().expect("chaos session completes");
            let secs = t.elapsed().as_secs_f64();
            let stats = driver.system().network_stats();
            ChaosCell {
                micro_f1: outcome.final_micro_f1(),
                macro_f1: outcome.final_macro_f1(),
                epoch_macro_f1: outcome.epochs.iter().map(|e| e.macro_f1).collect(),
                auto_failed: outcome.epochs.iter().map(|e| e.auto_failed).sum(),
                bytes: stats.total_bytes(),
                faults: stats.faults,
                link: driver.system().protocol_link_stats(),
                secs,
                protocol: name,
            }
        })
        .collect();
    ChaosRow {
        regime: regime.clone(),
        documents: corpus.len(),
        peers: corpus.num_users(),
        cells,
    }
}

/// Runs a list of regimes (all four protocols each) and returns the grid.
pub fn measure(
    regimes: &[ChaosRegime],
    num_users: usize,
    scale: Scale,
    epochs: usize,
    seed: u64,
) -> Vec<ChaosRow> {
    regimes
        .iter()
        .map(|r| measure_regime(r, num_users, scale, epochs, seed))
        .collect()
}

/// Renders the grid as the `BENCH_chaos.json` document.
pub fn to_json(rows: &[ChaosRow], epochs: usize, seed: u64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"chaos\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"epochs\": {epochs},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"regime\": \"{}\",\n", r.regime.name));
        out.push_str(&format!(
            "      \"description\": \"{}\",\n",
            r.regime.description
        ));
        out.push_str(&format!("      \"loss\": {},\n", r.regime.loss));
        out.push_str(&format!("      \"partition\": {},\n", r.regime.partition));
        out.push_str(&format!("      \"crashes\": {},\n", r.regime.crashes));
        out.push_str(&format!("      \"reliable\": {},\n", r.regime.reliable));
        out.push_str(&format!("      \"documents\": {},\n", r.documents));
        out.push_str(&format!("      \"peers\": {},\n", r.peers));
        out.push_str("      \"protocols\": [\n");
        for (j, c) in r.cells.iter().enumerate() {
            let curve = c
                .epoch_macro_f1
                .iter()
                .map(|f| format!("{f:.4}"))
                .collect::<Vec<_>>()
                .join(", ");
            // Two retransmit/recovery views per cell: the *network's* fault
            // counters (`faults`, what the chaos harness injected) and the
            // *protocol's* own reliable-link ledger (`link_*`, what its
            // ReliableLink observed and repaired).
            out.push_str(&format!(
                "        {{\"protocol\": \"{}\", \"micro_f1\": {:.4}, \"macro_f1\": {:.4}, \"epoch_macro_f1\": [{}], \"auto_failed\": {}, \"bytes\": {}, \"dropped\": {}, \"corrupted\": {}, \"crashes\": {}, \"retransmits\": {}, \"recovered\": {}, \"resyncs\": {}, \"link_retransmits\": {}, \"link_recovered\": {}, \"link_resyncs\": {}, \"gave_up\": {}, \"secs\": {:.3}}}{}\n",
                c.protocol,
                c.micro_f1,
                c.macro_f1,
                curve,
                c.auto_failed,
                c.bytes,
                c.faults.total_fault_drops(),
                c.faults.corrupted,
                c.faults.crashes,
                c.faults.retransmits,
                c.faults.recovered,
                c.faults.resyncs,
                c.link.retransmits,
                c.link.recovered,
                c.link.resyncs,
                c.link.gave_up,
                c.secs,
                if j + 1 < r.cells.len() { "," } else { "" },
            ));
        }
        out.push_str("      ]\n");
        out.push_str(if i + 1 < rows.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::validate_json;

    #[test]
    fn baseline_regime_has_an_inactive_plan() {
        let regimes = standard_regimes();
        let baseline = &regimes[0];
        assert_eq!(baseline.name, "baseline");
        assert!(!fault_plan(baseline, 4, 600.0, 8).is_active());
        for r in &regimes[1..] {
            assert!(fault_plan(r, 4, 600.0, 8).is_active(), "{}", r.name);
        }
    }

    #[test]
    fn lossy_regime_fills_cells_and_reports_fault_activity() {
        let regime = ChaosRegime {
            name: "loss-10",
            description: "test",
            loss: 0.10,
            partition: false,
            crashes: false,
            reliable: true,
        };
        let row = measure_regime(&regime, 6, Scale::Small, 2, 7);
        assert_eq!(row.cells.len(), 4);
        for cell in &row.cells {
            assert!(cell.micro_f1 > 0.0, "{} collapsed", cell.protocol);
            assert_eq!(cell.epoch_macro_f1.len(), 2);
        }
        // The lossy network really dropped frames, and the reliable link of
        // at least one collaborative protocol really retransmitted.
        let pace = row.cell("pace").unwrap();
        assert!(pace.faults.total_fault_drops() + pace.faults.corrupted > 0);
        assert!(pace.link.sends > 0);
        // Local-only never sends: its link ledger stays empty.
        let local = row.cell("local-only").unwrap();
        assert_eq!(local.link, LinkStats::default());
        assert_eq!(local.bytes, 0);
        let json = to_json(&[row], 2, 7);
        validate_json(&json).unwrap();
        assert!(json.contains("\"retransmits\""));
        assert!(json.contains("\"link_retransmits\""));
        assert!(json.contains("\"link_recovered\""));
        assert!(json.contains("\"link_resyncs\""));
        assert!(json.contains("\"epoch_macro_f1\""));
    }

    #[test]
    fn baseline_regime_matches_fault_free_run_exactly() {
        // The whole point of the disabled plan: a session under the baseline
        // regime is bit-identical (stats and quality) to one that never heard
        // of the fault layer.
        let regime = &standard_regimes()[0];
        let row = measure_regime(regime, 5, Scale::Small, 2, 13);
        let corpus = dataset::CorpusGenerator::new(corpus_spec(5, Scale::Small, 13)).generate();
        for cell in &row.cells {
            let protocol = standard_protocols(corpus.num_users())
                .into_iter()
                .find(|p| p.name() == cell.protocol)
                .unwrap();
            let config = SessionConfig {
                epochs: 2,
                epoch_secs: 600.0,
                churn: ChurnModel::None,
                incremental: true,
                seed: 13,
                ..SessionConfig::default()
            };
            let mut driver = SessionDriver::new(protocol, config, &corpus);
            let outcome = driver.run().unwrap();
            assert_eq!(cell.micro_f1, outcome.final_micro_f1(), "{}", cell.protocol);
            assert_eq!(cell.macro_f1, outcome.final_macro_f1(), "{}", cell.protocol);
            assert_eq!(
                format!("{:?}", cell.faults),
                format!("{:?}", driver.system().network_stats().faults),
                "{}",
                cell.protocol
            );
            assert_eq!(cell.bytes, driver.system().network_stats().total_bytes());
        }
    }
}
