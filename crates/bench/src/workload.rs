//! Workload construction shared by the experiments and the Criterion benches.

use dataset::{
    BurstSpec, CommunitySpec, Corpus, CorpusGenerator, CorpusSpec, TrainTestSplit, VectorizedCorpus,
};
use doctagger::{AutoTagOutcome, DocTaggerConfig, P2PDocTagger, ProtocolKind, SessionConfig};
use p2pclassify::CemparConfig;
use p2psim::churn::ChurnModel;
use p2psim::SimConfig;
use std::sync::Arc;

/// Scale of a generated workload. Experiments default to [`Scale::Demo`];
/// benches use [`Scale::Small`] to keep iteration times reasonable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// A few hundred documents — unit-test sized.
    Small,
    /// A couple of thousand documents, tens of peers — the default experiment
    /// scale (a scaled-down analogue of the filtered del.icio.us crawl).
    Demo,
}

/// Builds the corpus spec for a workload of `num_users` users at a scale.
pub fn corpus_spec(num_users: usize, scale: Scale, seed: u64) -> CorpusSpec {
    match scale {
        Scale::Small => CorpusSpec {
            num_tags: 8,
            num_users,
            min_docs_per_user: 12,
            max_docs_per_user: 20,
            words_per_doc: 40,
            words_per_tag: 25,
            background_vocab: 200,
            interests_per_user: 4,
            seed,
            ..CorpusSpec::default()
        },
        Scale::Demo => CorpusSpec {
            num_tags: 12,
            num_users,
            // The demo filters users with 50–199 bookmarks; we keep the same
            // shape but cap at 90 so a full sweep finishes in minutes.
            min_docs_per_user: 50,
            max_docs_per_user: 90,
            words_per_doc: 60,
            words_per_tag: 30,
            background_vocab: 400,
            interests_per_user: 5,
            seed,
            ..CorpusSpec::default()
        },
    }
}

/// A named adversarial-workload scenario: a bundle of skew knobs layered on
/// the standard corpus shape of a [`Scale`]. The matrix isolates each skew
/// mechanism (tag-popularity exponent, interest communities, re-tagging
/// imitation, flash-crowd bursts) and then combines them, so regressions can
/// be attributed to a single generator feature.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (the key in `BENCH_scenarios.json`).
    pub name: &'static str,
    /// One-line description for reports.
    pub description: &'static str,
    /// Tag-popularity Zipf exponent (1.0 = the benign default).
    pub tag_zipf_exponent: f64,
    /// User interest communities (`None` = independent users).
    pub communities: Option<CommunitySpec>,
    /// Golder–Huberman re-tagging/imitation strength in `[0, 1]`.
    pub imitation: f64,
    /// Flash-crowd bursts layered on the arrival timeline (`None` = smooth
    /// Poisson arrivals).
    pub bursts: Option<BurstSpec>,
    /// Peer churn applied over the session replay (`None` = fully available
    /// network; the overlay-churn regime turns this on so the routing
    /// architectures — chord-dht vs super-peer — are separated by it).
    pub churn: ChurnModel,
}

impl ScenarioSpec {
    /// The benign baseline: every skew knob disabled. Generates bit-identically
    /// to the pre-scenario workloads.
    pub fn benign() -> Self {
        Self {
            name: "benign",
            description: "smooth Poisson arrivals, independent users, Zipf(1.0) tags",
            tag_zipf_exponent: 1.0,
            communities: None,
            imitation: 0.0,
            bursts: None,
            churn: ChurnModel::None,
        }
    }

    /// The full scenario matrix the `scenarios` bin sweeps.
    pub fn matrix() -> Vec<Self> {
        vec![
            Self::benign(),
            Self {
                name: "zipf-heavy",
                description: "heavy-tailed tag popularity, Zipf exponent 1.7",
                tag_zipf_exponent: 1.7,
                ..Self::benign()
            },
            Self {
                name: "communities",
                description: "4 interest communities, 25% tag overlap, 10% cross-community",
                communities: Some(CommunitySpec {
                    num_communities: 4,
                    tag_overlap: 0.25,
                    cross_community_ratio: 0.1,
                }),
                ..Self::benign()
            },
            Self {
                name: "imitation",
                description: "Golder-Huberman re-tagging imitation at strength 0.7",
                imitation: 0.7,
                ..Self::benign()
            },
            Self {
                name: "flash-crowd",
                description: "3 self-exciting arrival bursts, width 180s, attraction 0.85",
                bursts: Some(BurstSpec {
                    num_bursts: 3,
                    width_secs: 180.0,
                    attraction: 0.85,
                }),
                ..Self::benign()
            },
            Self {
                name: "combined",
                description: "Zipf 1.5 + communities + imitation 0.5 + bursts together",
                tag_zipf_exponent: 1.5,
                communities: Some(CommunitySpec {
                    num_communities: 4,
                    tag_overlap: 0.25,
                    cross_community_ratio: 0.1,
                }),
                imitation: 0.5,
                bursts: Some(BurstSpec {
                    num_bursts: 2,
                    width_secs: 180.0,
                    attraction: 0.8,
                }),
                ..Self::benign()
            },
            Self {
                name: "overlay-churn",
                description: "exponential churn (600s/120s): chord-dht vs super-peer routing under membership flux",
                churn: ChurnModel::Exponential {
                    mean_session_secs: 600.0,
                    mean_offline_secs: 120.0,
                },
                ..Self::benign()
            },
        ]
    }

    /// Looks up a scenario from the matrix by name.
    pub fn named(name: &str) -> Option<Self> {
        Self::matrix().into_iter().find(|s| s.name == name)
    }

    /// `true` when the scenario skews tag popularity beyond the benign
    /// baseline — the regime where the head/tail split separates protocols.
    pub fn is_skewed(&self) -> bool {
        self.tag_zipf_exponent > 1.0 || self.imitation > 0.0
    }

    /// The corpus spec for this scenario at a network size and scale: the
    /// standard [`corpus_spec`] shape with this scenario's skew knobs applied.
    pub fn corpus_spec(&self, num_users: usize, scale: Scale, seed: u64) -> CorpusSpec {
        CorpusSpec {
            tag_zipf_exponent: self.tag_zipf_exponent,
            communities: self.communities.clone(),
            imitation: self.imitation,
            ..corpus_spec(num_users, scale, seed)
        }
    }

    /// The session configuration for this scenario: a streaming replay with
    /// this scenario's burst layer on the arrival timeline and its churn
    /// model (churn-free except in the overlay-churn regime, where routing
    /// architecture under membership flux is the variable under test).
    pub fn session_config(&self, epochs: usize, seed: u64) -> SessionConfig {
        SessionConfig {
            epochs,
            bursts: self.bursts.clone(),
            churn: self.churn,
            incremental: true,
            seed,
            ..SessionConfig::default()
        }
    }
}

/// A generated workload: corpus + 20/80 split (or a custom fraction).
///
/// The corpus is behind an [`Arc`] so systems can share it without a deep
/// copy — at 10k peers the raw documents are by far the largest allocation.
pub struct Workload {
    /// The generated corpus (shared, never cloned per system).
    pub corpus: Arc<Corpus>,
    /// The train/test split.
    pub split: TrainTestSplit,
}

impl Workload {
    /// Generates the standard workload (20 % training, per the demo protocol).
    pub fn generate(num_users: usize, scale: Scale, seed: u64) -> Self {
        Self::generate_with_fraction(num_users, scale, seed, 0.2)
    }

    /// Generates a workload with a custom training fraction.
    pub fn generate_with_fraction(
        num_users: usize,
        scale: Scale,
        seed: u64,
        train_fraction: f64,
    ) -> Self {
        let corpus = Arc::new(CorpusGenerator::new(corpus_spec(num_users, scale, seed)).generate());
        let split = TrainTestSplit::stratified_by_user(&corpus, train_fraction, seed ^ 0xABCD);
        Self { corpus, split }
    }

    /// The vectorized form of the corpus (TF-IDF over the shared lexicon).
    pub fn vectorize(&self) -> VectorizedCorpus {
        VectorizedCorpus::build(&self.corpus)
    }
}

/// The protocols compared throughout the evaluation, with configurations
/// scaled to the network size.
pub fn standard_protocols(num_peers: usize) -> Vec<ProtocolKind> {
    vec![
        ProtocolKind::Cempar(CemparConfig::for_network(num_peers)),
        ProtocolKind::pace(),
        ProtocolKind::centralized(),
        ProtocolKind::local_only(),
    ]
}

/// Result of one end-to-end system run.
pub struct RunResult {
    /// Protocol name.
    pub protocol: String,
    /// Auto-tagging outcome (metrics + failure counts).
    pub outcome: AutoTagOutcome,
    /// Bytes exchanged during the learning phase only.
    pub train_bytes: u64,
    /// Bytes exchanged in total (learning + tagging).
    pub total_bytes: u64,
    /// Mean bytes sent per peer over the whole run.
    pub bytes_per_peer: f64,
    /// Largest number of bytes received by any single peer (hotspot load).
    pub hotspot_bytes: u64,
    /// Mean DHT lookup hops observed (0 for protocols that never route).
    pub mean_hops: f64,
}

/// Runs one protocol end to end on a workload, optionally under churn, and
/// returns quality + communication numbers.
pub fn run_system(
    workload: &Workload,
    protocol: ProtocolKind,
    churn: Option<ChurnModel>,
    seed: u64,
) -> RunResult {
    let name = protocol.name().to_string();
    let num_peers = workload.corpus.num_users().max(1);
    let network = churn.map(|churn| SimConfig {
        num_peers,
        churn,
        horizon_secs: 2_000_000,
        seed,
        ..SimConfig::default()
    });
    let mut system = P2PDocTagger::new(DocTaggerConfig {
        protocol,
        network,
        seed,
        ..DocTaggerConfig::default()
    });
    system.ingest_shared(workload.corpus.clone());
    system.learn(&workload.split).expect("learning succeeds");
    let train_bytes = system.network_stats().total_bytes();
    let outcome = system.auto_tag_all().expect("auto tagging runs");
    let stats = system.network_stats();
    RunResult {
        protocol: name,
        outcome,
        train_bytes,
        total_bytes: stats.total_bytes(),
        bytes_per_peer: stats.mean_bytes_sent_per_peer(),
        hotspot_bytes: stats.max_bytes_received_by_any_peer(),
        mean_hops: stats.mean_lookup_hops(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_workload_runs_every_protocol() {
        let workload = Workload::generate(8, Scale::Small, 1);
        for protocol in standard_protocols(8) {
            let result = run_system(&workload, protocol, None, 1);
            assert!(
                result.outcome.metrics.micro_f1() > 0.3,
                "{}",
                result.protocol
            );
            assert_eq!(result.outcome.failed, 0);
        }
    }

    #[test]
    fn scenario_matrix_names_are_unique_and_resolvable() {
        let matrix = ScenarioSpec::matrix();
        assert_eq!(matrix.len(), 7);
        let mut names: Vec<_> = matrix.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
        for s in &matrix {
            assert_eq!(ScenarioSpec::named(s.name).as_ref(), Some(s));
            // Every scenario yields a valid corpus spec at both scales.
            s.corpus_spec(6, Scale::Small, 7).validate().unwrap();
            s.corpus_spec(6, Scale::Demo, 7).validate().unwrap();
        }
        assert_eq!(ScenarioSpec::named("no-such-scenario"), None);
    }

    #[test]
    fn benign_scenario_reproduces_the_standard_workload() {
        let benign = ScenarioSpec::benign();
        assert!(!benign.is_skewed());
        assert_eq!(
            benign.corpus_spec(8, Scale::Small, 3),
            corpus_spec(8, Scale::Small, 3)
        );
        assert!(ScenarioSpec::named("zipf-heavy").unwrap().is_skewed());
        assert!(ScenarioSpec::named("imitation").unwrap().is_skewed());
    }

    #[test]
    fn custom_fraction_changes_the_split() {
        let a = Workload::generate_with_fraction(6, Scale::Small, 2, 0.1);
        let b = Workload::generate_with_fraction(6, Scale::Small, 2, 0.4);
        assert!(a.split.train.len() < b.split.train.len());
    }
}
