//! Wire-codec benchmark: measured frame bytes vs the legacy `wire_size()`
//! estimates, encode/decode throughput, and the accuracy cost of the lossy
//! modes.
//!
//! Two views of the same question — *what does model propagation actually
//! cost?*:
//!
//! * **Payload rows** — every payload class the four protocols put on the
//!   simulated network (PACE linear models, centroids, CEMPaR kernel models,
//!   raw training uploads, prediction queries and responses) is really
//!   encoded with `p2pclassify::wire`, giving bytes/payload, the compression
//!   ratio against the legacy estimator, and encode/decode ns. Every payload
//!   is also decoded back and verified against the original (round-trip
//!   identity) — the binary fails if any frame does not survive.
//! * **Mode rows** — PACE runs end to end (learn + auto-tag the held-out
//!   split) under each wire mode: the legacy estimator, the lossless codec,
//!   `f32` weights, `q8` weights, and accuracy-guarded top-k pruning. Each
//!   row reports the model-propagation bytes the statistics actually
//!   recorded and the resulting macro-F1, so the bytes↔accuracy trade-off is
//!   measured, not asserted. With the lossless codec the macro-F1 must equal
//!   the estimator run's exactly (bit-identical round-trips).
//!
//! The binary writes `BENCH_wire.json`; `EXPERIMENTS.md` §W1 records a
//! captured run and the E3 tables are re-derived from measured bytes.

use crate::throughput::{throughput_spec, throughput_split};
use crate::workload::Workload;
use dataset::{CorpusGenerator, VectorizedCorpus};
use doctagger::{DocTaggerConfig, P2PDocTagger, ProtocolKind};
use ml::codec::WeightPrecision;
use ml::kmeans::KMeans;
use ml::multilabel::{OneVsAllModel, OneVsAllTrainer};
use ml::svm::{BinaryClassifier, KernelSvm, KernelSvmTrainer, LinearSvm, LinearSvmTrainer};
use ml::{MultiLabelDataset, TagPrediction};
use p2pclassify::{wire, CemparConfig, PaceConfig, WireConfig};
use p2psim::message::MessageKind;
use std::hint::black_box;
use std::time::Instant;
use textproc::SparseVector;

/// One payload class: legacy estimate vs measured frame bytes + codec speed.
#[derive(Debug, Clone)]
pub struct PayloadRow {
    /// Payload class name (stable identifier for the JSON).
    pub payload: &'static str,
    /// Number of payloads measured.
    pub count: usize,
    /// Total bytes the legacy `wire_size()` estimators would charge.
    pub estimated_bytes: u64,
    /// Total bytes of the real lossless frames.
    pub measured_bytes: u64,
    /// Encode time per payload.
    pub encode_ns: f64,
    /// Decode time per payload.
    pub decode_ns: f64,
}

impl PayloadRow {
    /// Legacy-estimate-over-measured compression ratio (> 1 means the codec
    /// beats the estimator).
    pub fn ratio(&self) -> f64 {
        self.estimated_bytes as f64 / self.measured_bytes.max(1) as f64
    }
}

/// One end-to-end PACE run under a wire mode.
#[derive(Debug, Clone)]
pub struct ModeRow {
    /// Mode name (stable identifier for the JSON).
    pub mode: &'static str,
    /// Model-propagation bytes put on the wire over the whole run.
    pub model_bytes: u64,
    /// Total bytes put on the wire over the whole run.
    pub total_bytes: u64,
    /// Macro-F1 on the held-out split.
    pub macro_f1: f64,
}

/// The full wire benchmark result.
#[derive(Debug, Clone)]
pub struct WireReport {
    /// Number of peers in the workload.
    pub peers: usize,
    /// Corpus size in documents.
    pub docs: usize,
    /// Per-payload-class byte + speed rows.
    pub payloads: Vec<PayloadRow>,
    /// Per-wire-mode end-to-end rows (first row is the legacy estimator).
    pub modes: Vec<ModeRow>,
    /// Whether every encoded payload decoded back identical to the original.
    pub round_trip_ok: bool,
}

impl WireReport {
    /// The headline compression claim: estimate-over-measured ratio of the
    /// PACE model-propagation payloads under the lossless codec.
    pub fn lossless_model_ratio(&self) -> f64 {
        self.payloads
            .iter()
            .find(|r| r.payload == "pace-model")
            .map(PayloadRow::ratio)
            .unwrap_or(0.0)
    }

    /// Macro-F1 delta of a mode row against the legacy-estimator reference.
    pub fn f1_delta(&self, mode: &str) -> Option<f64> {
        let base = self.modes.first()?.macro_f1;
        self.modes
            .iter()
            .find(|m| m.mode == mode)
            .map(|m| m.macro_f1 - base)
    }
}

fn time_per<F: FnMut() -> usize>(reps: usize, mut f: F) -> f64 {
    let t = Instant::now();
    let mut count = 0usize;
    for _ in 0..reps {
        count += black_box(f());
    }
    t.elapsed().as_secs_f64() * 1e9 / count.max(1) as f64
}

fn models_equal<C: PartialEq + BinaryClassifier>(
    a: &OneVsAllModel<C>,
    b: &OneVsAllModel<C>,
) -> bool {
    a.num_tags() == b.num_tags()
        && a.threshold() == b.threshold()
        && a.min_tags() == b.min_tags()
        && a.iter()
            .zip(b.iter())
            .all(|((ta, ca), (tb, cb))| ta == tb && ca == cb)
}

/// Per-peer training datasets of the throughput workload (one peer per user,
/// training docs only) — the data the protocols really train and propagate
/// from.
fn per_peer_training_sets(
    corpus: &dataset::Corpus,
    vectorized: &VectorizedCorpus,
    split: &dataset::TrainTestSplit,
) -> Vec<MultiLabelDataset> {
    let train: std::collections::BTreeSet<_> = split.train.iter().copied().collect();
    corpus
        .documents_by_user()
        .into_iter()
        .map(|docs| {
            docs.into_iter()
                .filter(|d| train.contains(d))
                .map(|d| vectorized.example(d))
                .collect()
        })
        .collect()
}

/// Runs the payload-class measurements and the end-to-end mode sweep on the
/// `num_users` throughput workload.
pub fn measure(num_users: usize, seed: u64) -> WireReport {
    let corpus = CorpusGenerator::new(throughput_spec(num_users, seed)).generate();
    let split = throughput_split(&corpus, seed);
    let vectorized = VectorizedCorpus::build(&corpus);
    let peer_data = per_peer_training_sets(&corpus, &vectorized, &split);
    let docs = corpus.len();

    let mut round_trip_ok = true;
    let mut payloads = Vec::new();

    // --- PACE linear models (+ their accuracy field) ---------------------
    let linear_trainer = LinearSvmTrainer::default();
    let ova = OneVsAllTrainer::default();
    let linear_models: Vec<(OneVsAllModel<LinearSvm>, f64)> = peer_data
        .iter()
        .filter(|d| !d.is_empty())
        .map(|d| {
            let m = ova.train_linear_csr(d, &linear_trainer);
            let acc = ml::codec::ensemble_accuracy(&m, d);
            (m, acc)
        })
        .filter(|(m, _)| m.num_tags() > 0)
        .collect();
    let estimated: u64 = linear_models
        .iter()
        .map(|(m, _)| (m.wire_size() + 8) as u64)
        .sum();
    let frames: Vec<Vec<u8>> = linear_models
        .iter()
        .map(|(m, acc)| wire::encode_pace_model(m, *acc, WeightPrecision::F64))
        .collect();
    for ((m, acc), f) in linear_models.iter().zip(&frames) {
        let (dm, dacc) = wire::decode_pace_model(f).expect("pace model frame decodes");
        round_trip_ok &= models_equal(m, &dm) && dacc == *acc;
    }
    let encode_ns = time_per(8, || {
        linear_models.iter().fold(0usize, |n, (m, acc)| {
            black_box(wire::encode_pace_model(m, *acc, WeightPrecision::F64));
            n + 1
        })
    });
    let decode_ns = time_per(8, || {
        frames.iter().fold(0usize, |n, f| {
            black_box(wire::decode_pace_model(f).unwrap());
            n + 1
        })
    });
    payloads.push(PayloadRow {
        payload: "pace-model",
        count: linear_models.len(),
        estimated_bytes: estimated,
        measured_bytes: frames.iter().map(|f| f.len() as u64).sum(),
        encode_ns,
        decode_ns,
    });

    // --- PACE centroids ---------------------------------------------------
    let kmeans_cfg = PaceConfig::default().kmeans;
    let centroid_sets: Vec<Vec<SparseVector>> = peer_data
        .iter()
        .filter(|d| !d.is_empty())
        .map(|d| KMeans::fit(d.vectors(), &kmeans_cfg).centroids().to_vec())
        .collect();
    let estimated: u64 = centroid_sets
        .iter()
        .map(|cs| cs.iter().map(SparseVector::wire_size).sum::<usize>() as u64)
        .sum();
    let frames: Vec<Vec<u8>> = centroid_sets
        .iter()
        .map(|cs| wire::encode_centroids(cs))
        .collect();
    for (cs, f) in centroid_sets.iter().zip(&frames) {
        round_trip_ok &= wire::decode_centroids(f).expect("centroid frame decodes") == *cs;
    }
    let encode_ns = time_per(8, || {
        centroid_sets.iter().fold(0usize, |n, cs| {
            black_box(wire::encode_centroids(cs));
            n + 1
        })
    });
    let decode_ns = time_per(8, || {
        frames.iter().fold(0usize, |n, f| {
            black_box(wire::decode_centroids(f).unwrap());
            n + 1
        })
    });
    payloads.push(PayloadRow {
        payload: "pace-centroids",
        count: centroid_sets.len(),
        estimated_bytes: estimated,
        measured_bytes: frames.iter().map(|f| f.len() as u64).sum(),
        encode_ns,
        decode_ns,
    });

    // --- CEMPaR kernel models --------------------------------------------
    let kernel_trainer: KernelSvmTrainer = CemparConfig::default().svm;
    let kernel_models: Vec<OneVsAllModel<KernelSvm>> = peer_data
        .iter()
        .filter(|d| !d.is_empty())
        .map(|d| ova.train_kernel_shared(d, &kernel_trainer))
        .filter(|m| m.num_tags() > 0)
        .collect();
    let estimated: u64 = kernel_models.iter().map(|m| m.wire_size() as u64).sum();
    let frames: Vec<Vec<u8>> = kernel_models
        .iter()
        .map(|m| wire::encode_kernel_model(m, WeightPrecision::F64))
        .collect();
    for (m, f) in kernel_models.iter().zip(&frames) {
        let dm = wire::decode_kernel_model(f).expect("kernel model frame decodes");
        round_trip_ok &= models_equal(m, &dm);
    }
    let encode_ns = time_per(4, || {
        kernel_models.iter().fold(0usize, |n, m| {
            black_box(wire::encode_kernel_model(m, WeightPrecision::F64));
            n + 1
        })
    });
    let decode_ns = time_per(4, || {
        frames.iter().fold(0usize, |n, f| {
            black_box(wire::decode_kernel_model(f).unwrap());
            n + 1
        })
    });
    payloads.push(PayloadRow {
        payload: "cempar-model",
        count: kernel_models.len(),
        estimated_bytes: estimated,
        measured_bytes: frames.iter().map(|f| f.len() as u64).sum(),
        encode_ns,
        decode_ns,
    });

    // --- Raw training uploads (Centralized) -------------------------------
    let uploads: Vec<&MultiLabelDataset> = peer_data.iter().filter(|d| !d.is_empty()).collect();
    let estimated: u64 = uploads.iter().map(|d| d.wire_size() as u64).sum();
    let frames: Vec<Vec<u8>> = uploads.iter().map(|d| wire::encode_dataset(d)).collect();
    for (d, f) in uploads.iter().zip(&frames) {
        round_trip_ok &= wire::decode_dataset(f).expect("dataset frame decodes") == **d;
    }
    let encode_ns = time_per(4, || {
        uploads.iter().fold(0usize, |n, d| {
            black_box(wire::encode_dataset(d));
            n + 1
        })
    });
    let decode_ns = time_per(4, || {
        frames.iter().fold(0usize, |n, f| {
            black_box(wire::decode_dataset(f).unwrap());
            n + 1
        })
    });
    payloads.push(PayloadRow {
        payload: "training-data",
        count: uploads.len(),
        estimated_bytes: estimated,
        measured_bytes: frames.iter().map(|f| f.len() as u64).sum(),
        encode_ns,
        decode_ns,
    });

    // --- Prediction queries + responses -----------------------------------
    let queries: Vec<SparseVector> = split
        .test
        .iter()
        .take(200)
        .map(|&d| vectorized.example(d).vector)
        .collect();
    let estimated: u64 = queries.iter().map(|q| q.wire_size() as u64).sum();
    let frames: Vec<Vec<u8>> = queries.iter().map(wire::encode_query).collect();
    for (q, f) in queries.iter().zip(&frames) {
        round_trip_ok &= wire::decode_query(f).expect("query frame decodes") == *q;
    }
    let encode_ns = time_per(8, || {
        queries.iter().fold(0usize, |n, q| {
            black_box(wire::encode_query(q));
            n + 1
        })
    });
    let decode_ns = time_per(8, || {
        frames.iter().fold(0usize, |n, f| {
            black_box(wire::decode_query(f).unwrap());
            n + 1
        })
    });
    payloads.push(PayloadRow {
        payload: "query",
        count: queries.len(),
        estimated_bytes: estimated,
        measured_bytes: frames.iter().map(|f| f.len() as u64).sum(),
        encode_ns,
        decode_ns,
    });

    // Responses: the pooled model's score lists for the query sample, the
    // shape CEMPaR/Centralized super-peers send back.
    let pooled: MultiLabelDataset = crate::throughput::pooled_training_set(&vectorized, &split);
    let pooled_model = ova.train_linear_csr(&pooled, &linear_trainer);
    let responses: Vec<Vec<TagPrediction>> =
        queries.iter().map(|q| pooled_model.scores(q)).collect();
    let estimated: u64 = responses
        .iter()
        .map(|r| (r.len() * (std::mem::size_of::<u32>() + 8)) as u64)
        .sum();
    let frames: Vec<Vec<u8>> = responses.iter().map(|r| wire::encode_scores(r)).collect();
    for (r, f) in responses.iter().zip(&frames) {
        round_trip_ok &= wire::decode_scores(f).expect("score frame decodes") == *r;
    }
    let encode_ns = time_per(8, || {
        responses.iter().fold(0usize, |n, r| {
            black_box(wire::encode_scores(r));
            n + 1
        })
    });
    let decode_ns = time_per(8, || {
        frames.iter().fold(0usize, |n, f| {
            black_box(wire::decode_scores(f).unwrap());
            n + 1
        })
    });
    payloads.push(PayloadRow {
        payload: "scores",
        count: responses.len(),
        estimated_bytes: estimated,
        measured_bytes: frames.iter().map(|f| f.len() as u64).sum(),
        encode_ns,
        decode_ns,
    });

    // --- End-to-end mode sweep (PACE) --------------------------------------
    let workload = Workload {
        corpus: std::sync::Arc::new(corpus),
        split,
    };
    let modes: Vec<(&'static str, WireConfig)> = vec![
        ("estimated", WireConfig::estimated()),
        ("lossless", WireConfig::default()),
        ("f32", WireConfig::measured(WeightPrecision::F32, None)),
        ("q8", WireConfig::measured(WeightPrecision::Q8, None)),
        (
            "prune-top32",
            WireConfig::measured(WeightPrecision::F64, Some(32)),
        ),
    ];
    let mode_rows = modes
        .into_iter()
        .map(|(name, wire_cfg)| {
            let mut system = P2PDocTagger::new(DocTaggerConfig {
                protocol: ProtocolKind::Pace(PaceConfig {
                    wire: wire_cfg,
                    ..PaceConfig::default()
                }),
                seed,
                ..DocTaggerConfig::default()
            });
            system.ingest(&workload.corpus);
            system.learn(&workload.split).expect("learning succeeds");
            let outcome = system.auto_tag_all().expect("tagging succeeds");
            let stats = system.network_stats();
            ModeRow {
                mode: name,
                model_bytes: stats.kind(MessageKind::ModelPropagation).bytes_sent()
                    + stats.kind(MessageKind::CentroidPropagation).bytes_sent(),
                total_bytes: stats.total_bytes(),
                macro_f1: outcome.metrics.macro_f1(),
            }
        })
        .collect();

    WireReport {
        peers: num_users,
        docs,
        payloads,
        modes: mode_rows,
        round_trip_ok,
    }
}

/// Renders the report as the `BENCH_wire.json` document.
pub fn to_json(report: &WireReport, seed: u64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"wire\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"peers\": {},\n", report.peers));
    out.push_str(&format!("  \"docs\": {},\n", report.docs));
    out.push_str(&format!("  \"round_trip_ok\": {},\n", report.round_trip_ok));
    out.push_str(&format!(
        "  \"lossless_model_compression_ratio\": {:.3},\n",
        report.lossless_model_ratio()
    ));
    out.push_str("  \"payloads\": [\n");
    for (i, r) in report.payloads.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"payload\": \"{}\", \"count\": {}, \"estimated_bytes\": {}, \"measured_bytes\": {}, \"ratio\": {:.3}, \"encode_ns\": {:.0}, \"decode_ns\": {:.0}}}{}\n",
            r.payload,
            r.count,
            r.estimated_bytes,
            r.measured_bytes,
            r.ratio(),
            r.encode_ns,
            r.decode_ns,
            if i + 1 < report.payloads.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"modes\": [\n");
    let base_bytes = report.modes.first().map_or(0, |m| m.model_bytes);
    let base_f1 = report.modes.first().map_or(0.0, |m| m.macro_f1);
    for (i, m) in report.modes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"model_bytes\": {}, \"total_bytes\": {}, \"bytes_vs_estimate\": {:.3}, \"macro_f1\": {:.4}, \"f1_delta\": {:.4}}}{}\n",
            m.mode,
            m.model_bytes,
            m.total_bytes,
            m.model_bytes as f64 / base_bytes.max(1) as f64,
            m.macro_f1,
            m.macro_f1 - base_f1,
            if i + 1 < report.modes.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_all_payloads_and_modes() {
        let report = measure(4, 7);
        assert!(report.round_trip_ok);
        assert_eq!(report.payloads.len(), 6);
        for r in &report.payloads {
            assert!(r.count > 0, "{}", r.payload);
            assert!(r.measured_bytes > 0, "{}", r.payload);
            assert!(r.encode_ns > 0.0 && r.decode_ns > 0.0, "{}", r.payload);
        }
        assert_eq!(report.modes.len(), 5);
        // Lossless codec changes nothing about predictions.
        assert_eq!(report.f1_delta("lossless"), Some(0.0));
        // Models compress vs the legacy estimate.
        assert!(report.lossless_model_ratio() > 1.0);
        let json = to_json(&report, 7);
        assert!(json.contains("\"pace-model\""));
        assert!(json.contains("\"prune-top32\""));
    }
}
